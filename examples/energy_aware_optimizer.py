"""Scenario: energy as a first-class metric across the stack.

The paper's thesis is that energy should be "a first-class performance
goal" at every level: plan costing, mid-flight control, and global
scheduling.  This script demonstrates all three extensions on top of
the reproduced mechanisms:

1. plan-level (time, energy) estimates and objective-weighted ranking;
2. mid-flight PVC adaptation under a response-time deadline;
3. fleet-level consolidation with server sleep.

    python examples/energy_aware_optimizer.py [scale_factor]
"""

import sys

import repro
from repro.workloads.tpch.queries import Q5_TABLES


def plan_costing(db: repro.Database) -> None:
    print("1. Energy-aware plan costing")
    sut = repro.default_system()
    coster = repro.PlanCoster(db.profile, sut)
    candidates = {
        "Q5 (6-way join + group by)": repro.q5(),
        "Q6 (selection + sum)": repro.q6(),
        "Q1 (scan + wide aggregate)": repro.q1(),
    }
    print(f"   {'query':28s} {'est time':>9} {'est energy':>11}"
          f" {'est EDP':>10}")
    for name, sql in candidates.items():
        estimate = coster.cost(db.plan(sql))
        print(f"   {name:28s} {estimate.time_s:8.3f}s"
              f" {estimate.energy_j:10.2f}J {estimate.edp:10.3f}")
    plans = [db.plan(sql) for sql in candidates.values()]
    for weights, label in (
        (repro.TIME_OPTIMAL, "time-optimal"),
        (repro.ENERGY_OPTIMAL, "energy-optimal"),
    ):
        ranked = repro.rank_plans(plans, coster, weights)
        cheapest = list(candidates)[plans.index(ranked[0][0])]
        print(f"   {label:>14s} objective ranks first: {cheapest}")
    print()


def midflight(db: repro.Database) -> None:
    print("2. Mid-flight PVC adaptation (deadline-aware)")
    runner = repro.WorkloadRunner(db, repro.default_system())
    queries = repro.q5_paper_workload()
    runner.sut.apply_setting(repro.STOCK_SETTING)
    stock = runner.run_queries(queries)
    controller = repro.AdaptiveController(runner)
    for slack, label in ((1.02, "tight"), (1.5, "loose")):
        outcome = controller.run(
            queries, deadline_s=stock.duration_s * slack
        )
        used = {s.describe() for s in outcome.settings_used}
        print(f"   {label} deadline (x{slack}): "
              f"met={outcome.met_deadline}, "
              f"energy {outcome.cpu_joules / stock.total.cpu_joules - 1:+.1%}"
              f" vs stock, settings used: {sorted(used)}")
    print()


def fleet_level() -> None:
    print("3. Global scheduling: consolidation + server sleep")
    server = repro.server_from_sut(repro.default_system())
    fleet = repro.Fleet([
        repro.ServerSpec(f"node{i}", server.idle_wall_w,
                         server.busy_wall_w, server.sleep_wall_w)
        for i in range(8)
    ])
    print(f"   per-server wall power: idle {server.idle_wall_w:.1f}W, "
          f"busy {server.busy_wall_w:.1f}W, sleep "
          f"{server.sleep_wall_w:.1f}W")
    print(f"   {'load':>6} {'spread W':>9} {'packed W':>9} {'saving':>7}")
    for load in (1.0, 2.0, 4.0, 6.0):
        spread = fleet.wall_power_w(fleet.spread(load))
        packed = fleet.wall_power_w(fleet.consolidate(load))
        saving = fleet.consolidation_saving(load)
        print(f"   {load:6.1f} {spread:9.1f} {packed:9.1f} {saving:7.1%}")


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    db = repro.tpch_database(
        scale_factor, repro.mysql_profile(), tables=Q5_TABLES + ["part"]
    )
    plan_costing(db)
    midflight(db)
    fleet_level()


if __name__ == "__main__":
    main()
