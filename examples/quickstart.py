"""Quickstart: run the paper's two mechanisms end to end.

Loads a small TPC-H instance into the embedded engine, measures the
ten-query Q5 workload across PVC operating points on the simulated
machine, and runs one QED batch-vs-sequential comparison.

    python examples/quickstart.py [scale_factor]
"""

import sys

import repro


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02

    print(f"== ecoDB quickstart (TPC-H scale factor {scale_factor}) ==\n")

    # 1. A DBMS on a simulated machine -----------------------------------
    db = repro.tpch_database(scale_factor, repro.mysql_profile())
    sut = repro.default_system()
    runner = repro.WorkloadRunner(db, sut)

    result = db.execute(repro.q5())
    print("TPC-H Q5 (ASIA, 1994):")
    for nation, revenue in result.rows():
        print(f"  {nation:15s} revenue = {revenue:14.2f}")
    print()

    # 2. PVC: trade energy for performance -------------------------------
    print("PVC sweep over the paper's operating points:")
    curve = repro.PvcSweep(runner, repro.q5_paper_workload()).run()
    print(f"  {'setting':28s} {'energy':>7} {'time':>6} {'EDP':>7}")
    for label, energy, time, edp_delta in curve.rows():
        print(f"  {label:28s} {energy:7.3f} {time:6.3f} {edp_delta:+7.1%}")
    best = curve.best_by_edp()
    print(f"  best EDP: {best.label}\n")

    # 3. QED: trade response time for energy ------------------------------
    executor = repro.QedExecutor(runner)
    workload = repro.selection_workload(35)
    comparison = executor.compare(workload.queries)
    print("QED, batch of 35 selection queries:")
    print(f"  energy per query : {comparison.energy_delta:+.1%}")
    print(f"  avg response time: {comparison.response_delta:+.1%}")
    print(f"  EDP              : {comparison.edp_delta:+.1%}")

    # 4. Beyond one machine ----------------------------------------------
    print("\nnext: serve an arrival stream across a simulated fleet --")
    print("  python -m repro cluster --nodes 8 --arrivals 500 "
          "--policy consolidate")
    print("or a full day of diurnal traffic with dynamic "
          "re-consolidation --")
    print("  python -m repro cluster --profile diurnal --policy dynamic "
          "--fleet examples/hetero_fleet.json")
    print("  python examples/diurnal_consolidation.py")
    print("or inject node crashes, failed wakes, and stragglers and "
          "watch the\nrecovery layer absorb them --")
    print("  python -m repro cluster --policy dynamic --sla 1.0 "
          "--faults examples/fault_plan.json --retry-max 4")
    print("  python examples/faulty_fleet.py")


if __name__ == "__main__":
    main()
