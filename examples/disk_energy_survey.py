"""Scenario: the disk-energy study of Section 3.5 and Figure 5.

Reproduces the access-pattern microbenchmark (sequential vs random reads
at several block sizes, throughput and energy per KB) and the warm/cold
workload comparison, printing rail-level (5 V / 12 V) energy like the
paper's current-probe setup.

    python examples/disk_energy_survey.py [scale_factor]
"""

import sys

import repro
from repro.hardware.disk import Disk
from repro.measurement.meter import InstrumentPanel
from repro.workloads.tpch.queries import Q5_TABLES


def access_pattern_survey() -> None:
    disk = Disk()
    print("Figure 5: reading 1.6 GB with different access patterns")
    print(f"  {'block':>6} {'seq MB/s':>9} {'rand MB/s':>10}"
          f" {'seq mJ/KB':>10} {'rand mJ/KB':>11}")
    for block in (4096, 8192, 16384, 32768):
        seq = disk.throughput_bps(block, sequential=True)
        rand = disk.throughput_bps(block, sequential=False)
        seq_e = disk.energy_per_kb(block, sequential=True) * 1e3
        rand_e = disk.energy_per_kb(block, sequential=False) * 1e3
        print(f"  {block // 1024:4d}KB {seq / 1e6:9.1f} {rand / 1e6:10.3f}"
              f" {seq_e:10.4f} {rand_e:11.2f}")
    print("  -> sequential is flat; random improves sub-proportionally\n")


def warm_cold_survey(scale_factor: float) -> None:
    db = repro.tpch_database(
        scale_factor, repro.commercial_profile(scale_factor),
        tables=Q5_TABLES,
    )
    runner = repro.WorkloadRunner(db, repro.default_system())
    panel = InstrumentPanel()
    queries = repro.q5_paper_workload()

    db.cool()  # the paper reboots before the cold run
    cold = runner.run_queries(queries).total
    warm = runner.run_queries(queries).total

    print(f"Sec 3.5: ten-query Q5 workload (SF {scale_factor})")
    for name, run in (("warm", warm), ("cold", cold)):
        reading = panel.read(run)
        print(f"  {name}: {run.duration_s:6.2f}s  "
              f"CPU {reading.exact_cpu_joules:8.2f}J  "
              f"disk {reading.disk_joules:7.2f}J "
              f"(5V {reading.disk_5v_joules:6.2f}J / "
              f"12V {reading.disk_12v_joules:6.2f}J)")
    print(f"  cold/warm time ratio: "
          f"{cold.duration_s / warm.duration_s:.2f} (paper ~3.2)")
    print(f"  disk/CPU energy: warm "
          f"{warm.disk_joules / warm.cpu_joules:.2f} (paper ~1/6), cold "
          f"{cold.disk_joules / cold.cpu_joules:.2f} (paper >0.5)")


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    access_pattern_survey()
    warm_cold_survey(scale_factor)


if __name__ == "__main__":
    main()
