"""Fault injection over a consolidating fleet: crashes, failed wakes,
stragglers -- and the recovery layer that absorbs them.

The consolidation savings in every other example assume a perfectly
obedient fleet.  This scenario runs the *canonical* fault plan from
:mod:`repro.measurement.perf` -- the same configuration
``benchmarks/bench_fault_recovery.py`` gates and ``BENCH_perf.json``'s
``faults`` record tracks -- against the same Poisson stream in two
fleet modes:

* ``spread``       -- every node awake, round-robin: the traditional
                      baseline, maximally fault-tolerant by
                      overprovisioning;
* ``consolidate``  -- dynamic re-consolidation plus the recovery
                      layer: lost in-flight work requeues with
                      exponential backoff, routers skip crashed and
                      unresponsive nodes, and a replacement is
                      re-woken when a consolidated node dies.

The plan exercises all four fault kinds: a straggler window inflates
the hot node's service times, a crash then kills it mid-batch, the
obvious replacement refuses to wake while the crash is fresh, and a
transient-unavailability window keeps a fourth node out of the pool.
The claim on display: consolidation's energy win *survives* the
faults at an equal SLA-miss budget, and no query is silently lost --
every arrival is served or visibly dead-lettered.

The same plan is available as JSON for the CLI
(``examples/fault_plan.json``, times in reference-SF stream seconds):

    python -m repro cluster --policy dynamic --sla 1.0 \\
        --faults examples/fault_plan.json --retry-max 4

    python examples/faulty_fleet.py [scale_factor]
"""

import sys

from repro.db.profiles import mysql_profile
from repro.measurement.perf import run_fault_ablation
from repro.workloads.tpch.generator import tpch_database


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01

    print(f"== fault injection & recovery (SF {scale_factor}) ==\n")
    db = tpch_database(scale_factor, mysql_profile(), seed=0,
                       tables=["lineitem"])
    ablation = run_fault_ablation(db, scale_factor=scale_factor)
    print(f"{ablation.arrivals} arrivals over {ablation.nodes} nodes; "
          f"retry x{ablation.retry_max}, "
          f"backoff {ablation.retry_backoff_s:g} s, "
          f"SLA {ablation.sla_s:g} s "
          f"(budget {ablation.sla_budget:.0%} of arrivals)\n")

    print(f"{'mode':12s} {'energy J':>9} {'SLA miss':>8} {'served':>6} "
          f"{'shed':>5} {'retries':>7} {'wasted J':>8}")
    for name, stats in ablation.modes.items():
        f = stats["faults"]
        print(f"{name:12s} {stats['wall_joules']:9.1f} "
              f"{stats['sla_misses']:8d} {stats['served']:6d} "
              f"{stats['shed']:5d} {f['retries']:7d} "
              f"{f['wasted_joules']:8.2f}")

    consolidate = ablation.modes["consolidate"]
    f = consolidate["faults"]
    print(f"\nfaults that bit (consolidate mode): {f['crashes']} crash, "
          f"{f['failed_wakes']} failed wakes, {f['requeued']} queries "
          f"requeued off the crashed node, {f['dead_lettered']} "
          f"dead-lettered")
    split = consolidate["sla_split"]
    print(f"SLA attainment: {split['affected_attainment']:.1%} for the "
          f"{split['affected_total']:.0f} fault-affected queries vs "
          f"{split['unaffected_attainment']:.1%} for the "
          f"{split['unaffected_total']:.0f} untouched ones")
    print(f"\nconsolidate + recovery saves "
          f"{ablation.consolidate_vs_spread_saving:.1%} energy vs "
          f"always-awake spread"
          + (" (gate holds)" if ablation.consolidate_beats_spread
             else " -- GATE FAILED"))
    print("conservation: every arrival served exactly once or visibly "
          "dead-lettered"
          + (" (holds)" if ablation.conserved else " -- VIOLATED"))


if __name__ == "__main__":
    main()
