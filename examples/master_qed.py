"""Master-queue QED: fleet-wide batching from the always-on master.

The paper's QED puts the admission queue on the master, not on the
workers: every arrival queues centrally, pending queries are
partitioned by *mergeable template* (same select list + table + plain
selection shape), and each partition dispatches merged batches to the
fleet when its threshold or timeout fires.  Non-mergeable shapes flow
through a pass-through partition as singletons.

This example runs the canonical mixed-template stream (the same
configuration ``benchmarks/bench_ablation_qed.py`` gates and
``BENCH_perf.json``'s ``qed`` record tracks) three ways:

* ``off``    -- no queueing: every arrival runs alone;
* ``node``   -- a private QED queue per node behind a round-robin load
                balancer: batches only merge queries that happened to
                land on the same node, and mixed batches degrade to
                singleton executions;
* ``master`` -- one master queue partitioned by mergeable template:
                batches form fleet-wide, so they are larger, always
                mergeable, and cheaper to serve.

    python examples/master_qed.py [scale_factor]
"""

import os
import sys

os.environ.setdefault("REPRO_BENCH_QED_ARRIVALS", "300")

from repro.cluster import (
    ClusterSimulator,
    LeastLoadedRouter,
    MasterQueue,
    uniform_fleet,
)
from repro.core.qed.policy import BatchPolicy
from repro.db.profiles import mysql_profile
from repro.measurement.perf import (
    QED_NODES,
    QED_REFERENCE_SF,
    QED_THRESHOLD,
    QED_MAX_WAIT_S,
    qed_ablation_stream,
    run_qed_ablation,
)
from repro.workloads.tpch.generator import tpch_database


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01

    print(f"== master-queue QED (SF {scale_factor}) ==\n")
    db = tpch_database(scale_factor, mysql_profile(), seed=0,
                       tables=["lineitem"])
    ablation = run_qed_ablation(db, scale_factor=scale_factor)

    print(f"{ablation.arrivals} arrivals over {ablation.nodes} nodes, "
          f"threshold {ablation.threshold}, "
          f"max wait {ablation.max_wait_s:g} s, "
          f"SLA {ablation.sla_s:g} s\n")
    print(f"{'mode':8s} {'energy J':>9} {'SLA miss':>8} {'batches':>7} "
          f"{'mean':>5} {'fallbacks':>9}")
    baseline_j = ablation.modes["off"]["wall_joules"]
    for name, stats in ablation.modes.items():
        saving = 1.0 - stats["wall_joules"] / baseline_j
        print(f"{name:8s} {stats['wall_joules']:9.1f} "
              f"{stats['sla_misses']:8d} "
              f"{stats.get('qed_batches', 0):7d} "
              f"{stats.get('qed_mean_batch_size', 0.0):5.1f} "
              f"{stats.get('qed_fallback_batches', 0):9d}"
              + (f"   (saves {saving:.1%})" if saving > 1e-6 else ""))

    # The master queue's per-partition view: one partition per
    # mergeable template plus the pass-through singletons.
    stream = qed_ablation_stream(scale_factor)
    max_wait = QED_MAX_WAIT_S * scale_factor / QED_REFERENCE_SF
    sim = ClusterSimulator(
        db, uniform_fleet(QED_NODES), LeastLoadedRouter(),
        master_queue=MasterQueue(
            BatchPolicy(QED_THRESHOLD, max_wait_s=max_wait)
        ),
    )
    m = sim.run(stream)
    print("\nmaster-queue partitions:")
    print(f"  {'partition':46s} {'queries':>7} {'batches':>7} "
          f"{'mean':>5} {'max':>4}")
    for p in m.qed.partitions:
        print(f"  {p.partition[:46]:46s} {p.queries:7d} {p.batches:7d} "
              f"{p.mean_batch_size:5.1f} {p.max_batch:4d}")
    print("\nfleet-wide batching concentrates work: the master queue "
          "merges across\nthe whole arrival stream, so batches are "
          "larger and always mergeable.")


if __name__ == "__main__":
    main()
