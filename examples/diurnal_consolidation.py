"""Diurnal load over a heterogeneous fleet: static vs dynamic policies.

A day of traffic, compressed: a sinusoidal rate schedule ramps a
nonhomogeneous Poisson arrival stream from a nighttime trough up
through a midday peak and back, served by a fleet mixing full-power
"big" nodes with underclocked, GPU-less "eco" nodes.  The scenario and
policies are the *canonical* ones from
:mod:`repro.measurement.perf` -- the same configuration
``benchmarks/bench_ablation_diurnal.py`` gates and
``BENCH_perf.json``'s ``diurnal`` record tracks -- so these numbers
are directly comparable to the committed artifact.  Four policies face
the same stream:

* ``spread``       -- every node awake all day (the traditional
                      baseline; burns idle watts all night);
* ``consolidate``  -- the one-shot packer: wakes nodes for the peak
                      but never re-sleeps them afterwards;
* ``dynamic``      -- re-consolidation: an arrival-rate EWMA sizes the
                      awake set, drained nodes re-sleep when demand
                      drops, and the known rate schedule pre-wakes
                      capacity one wake latency ahead of the peak;
* ``adaptive_pvc`` -- every node awake but walking the PVC ladder on
                      its own backlog: cheap settings at night, stock
                      under the peak.

The paper's fleet-level claim -- energy tracks *load*, not
*provisioning* -- shows up in the phase report: dynamic's awake
node-seconds follow the rate curve.

    python examples/diurnal_consolidation.py [scale_factor]
"""

import sys

from repro.cluster import ClusterSimulator, DynamicConsolidateRouter
from repro.db.profiles import mysql_profile
from repro.measurement.perf import (
    DIURNAL_REFERENCE_SF,
    DIURNAL_SLA_S,
    diurnal_policies,
    diurnal_scenario,
)
from repro.workloads.tpch.generator import tpch_database

WINDOW_S = 30.0


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01

    print(f"== diurnal re-consolidation (SF {scale_factor}) ==\n")
    db = tpch_database(scale_factor, mysql_profile(), seed=0,
                       tables=["lineitem"])
    specs, schedule, stream = diurnal_scenario(scale_factor)
    sla_s = DIURNAL_SLA_S * scale_factor / DIURNAL_REFERENCE_SF
    print(f"{len(stream)} arrivals over {schedule.horizon_s:.0f} s "
          f"(trough {schedule.rate_at(0.0):g}/s, "
          f"crest {schedule.peak_rate:g}/s)\n")

    print(f"{'policy':24s} {'energy J':>9} {'awake n·s':>9} "
          f"{'re-sleep':>8} {'p95 ms':>7} {'SLA miss':>8}")
    baseline_j = None
    dynamic = None
    for name, router in diurnal_policies(schedule, sla_s):
        m = ClusterSimulator(db, specs, router).run(stream)
        if baseline_j is None:
            baseline_j = m.wall_joules
        if isinstance(router, DynamicConsolidateRouter):
            dynamic = m
        saving = 1.0 - m.wall_joules / baseline_j
        print(f"{name:24s} {m.wall_joules:9.1f} {m.awake_node_s:9.1f} "
              f"{m.re_sleeps:8d} {m.p95_response_s * 1e3:7.1f} "
              f"{m.sla_violations(sla_s):8d}"
              + (f"   (saves {saving:.1%})" if saving > 1e-6 else ""))

    print(f"\ndynamic policy, phase by phase ({WINDOW_S:.0f} s windows):")
    print(f"  {'window':>14} {'arrivals':>8} {'modeled J':>10} "
          f"{'awake n·s':>9} {'re-sleep':>8}")
    for w in dynamic.window_report(WINDOW_S):
        print(f"  [{w.start_s:5.0f},{w.end_s:6.0f}) {w.arrivals:8d} "
              f"{w.modeled_joules:10.1f} {w.awake_node_s:9.1f} "
              f"{w.re_sleeps:8d}")
    print("\nawake capacity follows the rate curve: nodes sleep through "
          "the troughs\nand are pre-woken (wake-latency ahead) for each "
          "crest.")


if __name__ == "__main__":
    main()
