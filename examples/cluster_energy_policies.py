"""Cluster energy policies: spread vs consolidate vs power-capped.

Two tenants' Poisson arrival streams merge into one cluster workload
(time-ordered, stable for ties) and are served by a small fleet under
three routing policies:

* ``spread``       -- round-robin, every node awake (the traditional
                      load balancer);
* ``consolidate``  -- pack onto as few nodes as possible, sleep the
                      rest, wake on demand (paying the wake latency);
* ``power cap``    -- keep the fleet's modeled wall power under a cap,
                      delaying queries into headroom.

The energy/latency tension the paper frames for a single machine shows
up fleet-wide: consolidate cuts energy sharply at a response-time cost,
the cap bounds peak power at a (smaller) latency cost.

    python examples/cluster_energy_policies.py [scale_factor]
"""

import sys

from repro.cluster import (
    ClusterSimulator,
    ConsolidateRouter,
    PowerCapRouter,
    RoundRobinRouter,
    uniform_fleet,
)
from repro.db.profiles import mysql_profile
from repro.workloads.arrivals import merge_arrivals, poisson_arrivals
from repro.workloads.selection import selection_workload
from repro.workloads.tpch.generator import tpch_database

NODES = 4
PER_TENANT = 60
MEAN_INTERARRIVAL_S = 0.08
SLA_S = 0.5


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01

    print(f"== cluster energy policies (SF {scale_factor}, "
          f"{NODES} nodes) ==\n")
    db = tpch_database(scale_factor, mysql_profile(), seed=0,
                       tables=["lineitem"])

    # Two tenants with disjoint selection predicates, one merged stream.
    tenant_a = selection_workload(15, start=1).queries
    tenant_b = selection_workload(15, start=21).queries
    stream = merge_arrivals(
        poisson_arrivals(
            [tenant_a[i % 15] for i in range(PER_TENANT)],
            MEAN_INTERARRIVAL_S, seed=1,
        ),
        poisson_arrivals(
            [tenant_b[i % 15] for i in range(PER_TENANT)],
            MEAN_INTERARRIVAL_S, seed=2,
        ),
    )
    print(f"{2 * PER_TENANT} arrivals from 2 tenants over "
          f"{stream[-1].time_s:.1f} s\n")

    policies = [
        ("spread (round-robin)", RoundRobinRouter(), {}),
        ("consolidate + sleep",
         ConsolidateRouter(max_backlog_s=0.75),
         dict(wake_latency_s=5.0)),
        ("power cap 460 W", PowerCapRouter(cap_w=460.0), {}),
    ]

    print(f"{'policy':22s} {'energy J':>9} {'EDP':>10} {'awake':>5} "
          f"{'peak W':>7} {'p95 ms':>7} {'SLA miss':>8}")
    baseline_j = None
    for name, router, fleet_kwargs in policies:
        sim = ClusterSimulator(
            db, uniform_fleet(NODES, **fleet_kwargs), router
        )
        m = sim.run(stream)
        if baseline_j is None:
            baseline_j = m.wall_joules
        saving = 1.0 - m.wall_joules / baseline_j
        print(f"{name:22s} {m.wall_joules:9.1f} {m.edp:10.1f} "
              f"{m.awake_nodes:3d}/{NODES} {m.peak_power_w:7.1f} "
              f"{m.p95_response_s * 1e3:7.1f} "
              f"{m.sla_violations(SLA_S):8d}"
              + (f"   (saves {saving:.1%})" if saving > 1e-6 else ""))

    print("\nconsolidate trades response time for energy; the cap "
          "trades a little latency for bounded peak power.")


if __name__ == "__main__":
    main()
