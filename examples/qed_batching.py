"""Scenario: QED admission control on an arriving query stream.

Simulates the paper's Section 4 deployment: selection queries arrive at
a master node's queue; a batch policy (threshold + timeout) dispatches
them; each dispatched batch is merged into one disjunctive query, run,
and split back per query.  Prints the Figure-6 style tradeoff for the
policy, per-position response degradation, and the analytical model's
SLA guidance.

    python examples/qed_batching.py [scale_factor]
"""

import sys

import numpy as np

import repro


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02

    db = repro.tpch_database(
        scale_factor, repro.mysql_profile(), tables=["lineitem"]
    )
    runner = repro.WorkloadRunner(db, repro.default_system())
    executor = repro.QedExecutor(runner)

    # 1. An arriving stream drains through the admission queue ----------
    policy = repro.BatchPolicy(threshold=40, max_wait_s=120.0)
    queue = repro.QueryQueue(policy)
    rng = np.random.default_rng(7)
    quantities = rng.permutation(np.arange(1, 51))[:45]
    now = 0.0
    dispatched = []
    for quantity in quantities:
        now += float(rng.exponential(2.0))  # ~2 s mean inter-arrival
        batch = queue.submit(repro.selection_query(int(quantity)), now)
        if batch is not None:
            dispatched.append(batch)
    tail = queue.flush(now + policy.max_wait_s)
    if tail is not None:
        dispatched.append(tail)

    print(f"arrivals: {len(quantities)} queries over {now:.0f}s "
          f"-> {len(dispatched)} batches "
          f"({[b.size for b in dispatched]})")
    waits = [w for b in dispatched for w in b.queue_waits()]
    print(f"queue wait (excluded from response accounting): "
          f"mean {sum(waits) / len(waits):.1f}s, max {max(waits):.1f}s\n")

    # 2. Figure-6 style comparison for each dispatched batch -------------
    for batch in dispatched:
        comparison = executor.compare(batch.sqls)
        print(f"batch of {batch.size:2d}: "
              f"energy {comparison.energy_delta:+.1%}, "
              f"response {comparison.response_delta:+.1%}, "
              f"EDP {comparison.edp_delta:+.1%}")
        degradation = comparison.position_degradation()
        print(f"  response degradation: first query x{degradation[0]:.1f}"
              f", median x{degradation[len(degradation) // 2]:.2f}"
              f", last x{degradation[-1]:.2f}")

    # 3. Analytical SLA guidance -----------------------------------------
    model = repro.QedModel()
    print("\nanalytical model: largest batch meeting a first-query SLA")
    for sla_tq in (10.0, 20.0, 30.0, 40.0):
        n = model.max_batch_for_sla(sla_tq)
        print(f"  SLA {sla_tq:4.0f} x t_q  ->  batch <= {n}")


if __name__ == "__main__":
    main()
