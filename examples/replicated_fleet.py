"""Partitioned tables with replica placement, under crash recovery.

Every other example assumes full replication: any node can serve any
query.  This scenario hash-partitions lineitem into replicated shards
chained across the fleet (`repro.cluster.placement`) and runs the
*canonical* replication fault plan from :mod:`repro.measurement.perf`
-- the same configuration ``benchmarks/bench_replication.py`` gates
and ``BENCH_perf.json``'s ``replication`` record tracks -- against the
same Poisson stream in two fleet modes:

* ``spread``       -- every node awake, round-robin over each
                      statement's replica set;
* ``consolidate``  -- dynamic re-consolidation under the quorum
                      constraint: the awake set always covers every
                      shard, and a node is never re-slept while it is
                      the last awake holder of one.

Mid-run, a crash kills node00 -- taking one replica of every shard it
held.  The placement layer re-replicates: a live holder streams each
under-replicated shard to a node not yet holding it, as compiled-trace
copy work billed in joules on *both* endpoints.  The claims on
display: consolidation's energy win survives re-replication at an
equal SLA-miss budget, every shard is back at its replica target by
the end of the run, and no query is silently lost.

The same layout is available as JSON for the CLI
(``examples/placement.json``):

    python -m repro cluster --placement examples/placement.json \\
        --policy dynamic --sla 1.0

    python -m repro cluster --policy least --shards 4 --replicas 2 \\
        --faults examples/fault_plan.json --retry-backoff 0.05

    python examples/replicated_fleet.py [scale_factor]
"""

import sys

from repro.db.profiles import mysql_profile
from repro.measurement.perf import run_replication_ablation
from repro.workloads.tpch.generator import tpch_database


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01

    print(f"== replicated shards & recovery (SF {scale_factor}) ==\n")
    db = tpch_database(scale_factor, mysql_profile(), seed=0,
                       tables=["lineitem"])
    ablation = run_replication_ablation(db, scale_factor=scale_factor)
    print(f"{ablation.arrivals} arrivals over {ablation.nodes} nodes; "
          f"{ablation.shards} shards x {ablation.replicas} replicas "
          f"(quorum {ablation.quorum}), SLA {ablation.sla_s:g} s "
          f"(budget {ablation.sla_budget:.0%} of arrivals)\n")

    print(f"{'mode':12s} {'energy J':>9} {'SLA miss':>8} {'served':>6} "
          f"{'shed':>5} {'copies':>6} {'copy J':>7} {'holders':>7}")
    for name, stats in ablation.modes.items():
        f = stats["faults"]
        print(f"{name:12s} {stats['wall_joules']:9.1f} "
              f"{stats['sla_misses']:8d} {stats['served']:6d} "
              f"{stats['shed']:5d} {f['re_replications']:6d} "
              f"{f['copy_joules']:7.2f} "
              f"{stats['min_live_holders']:7d}")

    consolidate = ablation.modes["consolidate"]
    f = consolidate["faults"]
    print(f"\nthe crash bit the placement: {f['crashes']} crash took a "
          f"replica of every shard node00 held; {f['re_replications']} "
          f"copies restored them ({f['copy_s']:.2f} s of copy work, "
          f"{f['copy_joules']:.1f} J billed on both endpoints)")
    print(f"\nquorum-aware consolidation saves "
          f"{ablation.consolidate_vs_spread_saving:.1%} energy vs "
          f"always-awake spread while re-replication is in flight"
          + (" (gate holds)" if ablation.consolidate_beats_spread
             else " -- GATE FAILED"))
    print("replication restored: every shard back at its replica "
          "target on live nodes"
          + (" (holds)" if ablation.restored else " -- VIOLATED"))
    print("conservation: every arrival served exactly once or visibly "
          "dead-lettered"
          + (" (holds)" if ablation.conserved else " -- VIOLATED"))


if __name__ == "__main__":
    main()
