"""Scenario: SLA-driven operating-point selection for a data center.

The paper's introduction sketches the use case: a data center near peak
must run at the fastest setting, but at typical (low) utilization it can
pick an operating point that saves energy within an SLA.  This script
measures the commercial-DBMS tradeoff curve, then walks a day's load
curve, letting the advisor pick the PVC setting hour by hour and
accounting the energy saved vs always-stock.

    python examples/pvc_sla_advisor.py [scale_factor]
"""

import sys

import repro
from repro.workloads.tpch.queries import Q5_TABLES

#: A stylized 24-hour data-center load curve (fraction of peak).  The
#: paper (citing Fan et al.) notes operating near peak is rare.
HOURLY_LOAD = [
    0.22, 0.18, 0.15, 0.14, 0.15, 0.20,
    0.30, 0.45, 0.62, 0.74, 0.82, 0.88,
    0.90, 0.87, 0.80, 0.72, 0.66, 0.62,
    0.58, 0.52, 0.45, 0.38, 0.31, 0.26,
]


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02

    db = repro.tpch_database(
        scale_factor, repro.commercial_profile(scale_factor),
        tables=Q5_TABLES,
    )
    db.warm()
    runner = repro.WorkloadRunner(db, repro.default_system())

    print("Measuring the PVC tradeoff curve (ten-query TPC-H Q5)...")
    curve = repro.PvcSweep(runner, repro.q5_paper_workload()).run()
    advisor = repro.OperatingPointAdvisor(curve)
    sla = repro.Sla(max_time_increase=0.05)  # tolerate +5% response time

    print(f"\nSLA: response time may degrade at most "
          f"{sla.max_time_increase:.0%}")
    chosen = advisor.choose(sla)
    report = advisor.savings_report(sla)
    print(f"advised point: {chosen.label}")
    print(f"  energy {report['energy_delta']:+.1%}, "
          f"time {report['time_delta']:+.1%}, "
          f"EDP {report['edp_delta']:+.1%}\n")

    print("Hour-by-hour schedule (peak threshold 85%):")
    stock = curve.baseline
    total_stock = 0.0
    total_advised = 0.0
    for hour, load in enumerate(HOURLY_LOAD):
        point = advisor.choose_for_load(load, sla)
        # Energy scales with how busy the hour is; use load as the
        # fraction of the hour spent running the workload.
        stock_j = stock.energy_j * load
        advised_j = point.energy_j * load
        total_stock += stock_j
        total_advised += advised_j
        print(f"  {hour:02d}:00  load {load:4.0%}  -> {point.label:28s}"
              f"  CPU J {advised_j:9.1f} (stock {stock_j:9.1f})")

    saving = 1.0 - total_advised / total_stock
    print(f"\nCPU energy saved over the day vs always-stock: "
          f"{saving:.1%}")


if __name__ == "__main__":
    main()
