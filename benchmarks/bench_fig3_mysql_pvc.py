"""Figure 3: TPC-H Q5 on MySQL (memory engine) -- PVC ratio plane.

The paper runs the same ten-query Q5 workload on MySQL 5.1 with the
MEMORY storage engine "to stress the CPU" (SF 0.125).  EDP deltas from
the text: small -7/-0.4/+9%, medium -16/-8/0%.  Small 15% is the one
setting *worse* than stock EDP.
"""

import pytest

from repro.calibration import targets
from repro.core.pvc.sweep import PvcSweep
from repro.measurement.report import ComparisonTable
from repro.workloads.tpch.queries import q5_paper_workload


def run_figure3(runner):
    return PvcSweep(runner, q5_paper_workload()).run()


def test_fig3_mysql_ratio_plane(benchmark, mysql_runner):
    curve = benchmark.pedantic(
        run_figure3, args=(mysql_runner,), rounds=1, iterations=1
    )
    ratios = {r.label: r for r in curve.ratios()}
    table = ComparisonTable("Figure 3: MySQL (memory engine) PVC ratios")
    for downgrade in ("small", "medium"):
        for pct in (5, 10, 15):
            point = ratios[f"{pct}% underclock / {downgrade}"]
            table.add(
                f"{downgrade:6s} {pct:2d}% energy ratio",
                targets.energy_ratio_target("mysql", downgrade, pct),
                point.energy_ratio,
            )
            table.add(
                f"{downgrade:6s} {pct:2d}% time ratio",
                targets.mysql_time_ratio(pct),
                point.time_ratio,
            )
            table.add(
                f"{downgrade:6s} {pct:2d}% EDP delta",
                targets.EDP_DELTAS[("mysql", downgrade)][pct],
                point.edp_delta,
            )
    table.print()

    # Headline: -20% energy at +6% time (5% underclock, medium).
    headline = ratios["5% underclock / medium"]
    assert headline.energy_ratio == pytest.approx(0.80, abs=0.03)
    assert headline.time_ratio == pytest.approx(1.055, abs=0.01)
    # Small 15% underclock is worse than stock EDP (+9% in the paper).
    assert ratios["15% underclock / small"].edp_delta > 0
    # EDP worsens monotonically beyond 5% underclocking.
    for downgrade in ("small", "medium"):
        series = [
            ratios[f"{pct}% underclock / {downgrade}"].edp_delta
            for pct in (5, 10, 15)
        ]
        assert series == sorted(series)
