"""Measurement-method study: the EPU's 1 Hz GUI sampling.

The paper acknowledges drawbacks of sampling the 6-Engine GUI once per
second and mitigates them by using many-minute workloads and a 5-run
trimmed mean.  This bench quantifies the sampling estimator's error as
workload duration grows, confirming the mitigation works.
"""

from repro.hardware.sensors import EpuSensor
from repro.hardware.system import CPU_BOUND
from repro.hardware.trace import CpuWork, Idle, Trace
from repro.measurement.report import ComparisonTable


def run_sampling_study(sut):
    sensor = EpuSensor()
    errors = {}
    # Irregular bursty work so burst edges do not alias with the 1 Hz
    # sampling grid (real workloads are similarly aperiodic).
    unit = [
        CpuWork(2.4e9, 1.0), Idle(0.45),
        CpuWork(4.1e9, 1.0), Idle(0.23),
        CpuWork(0.9e9, 1.0), Idle(0.61),
        CpuWork(3.3e9, 1.0), Idle(0.17),
    ]
    for repeats in (1, 4, 16, 64):
        run = sut.run(Trace(unit * repeats), CPU_BOUND)
        errors[run.duration_s] = abs(sensor.sampling_error(run))
    return errors


def test_epu_sampling_error_shrinks_with_duration(benchmark,
                                                  mysql_runner):
    errors = benchmark.pedantic(
        run_sampling_study, args=(mysql_runner.sut,),
        rounds=1, iterations=1,
    )
    table = ComparisonTable(
        "EPU 1 Hz sampling: |error| vs workload duration"
    )
    for duration, error in errors.items():
        table.add(f"duration {duration:6.1f}s", None, error)
    table.print()

    durations = sorted(errors)
    # Short bursty runs can be badly misread; many-minute workloads
    # (the paper's setup) are measured to within a few percent.
    assert errors[durations[-1]] < 0.05
    assert errors[durations[-1]] <= errors[durations[0]]
