"""Figure 4: observed EDP vs the theoretical EDP = V^2/F model.

The paper measures average voltage/frequency during the MySQL workload
and shows observed EDP closely tracks ``V^2/F`` (Sec. 3.4).  We run the
workload (observed side) and evaluate the model from the calibrated
effective voltages (theoretical side), for both downgrade settings.
"""

import pytest

from repro.core.pvc.sweep import PvcSweep
from repro.core.theory import theoretical_edp_series
from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.hardware.system import CPU_BOUND
from repro.measurement.report import ComparisonTable
from repro.workloads.tpch.queries import q5_paper_workload


def run_figure4(runner):
    curve = PvcSweep(runner, q5_paper_workload()).run()
    spec = runner.sut.cpu_spec
    table = runner.sut.voltage_tables[CPU_BOUND]
    settings = [
        PvcSetting(pct, dg)
        for dg in (VoltageDowngrade.SMALL, VoltageDowngrade.MEDIUM)
        for pct in (5, 10, 15)
    ]
    theory = {
        point.setting: point.edp_ratio
        for point in theoretical_edp_series(spec, settings, table)
    }
    observed = {
        r.setting: r.edp_ratio for r in curve.ratios()
        if r.setting is not None and not r.setting.is_stock
    }
    return theory, observed


def test_fig4_observed_vs_theoretical_edp(benchmark, mysql_runner):
    theory, observed = benchmark.pedantic(
        run_figure4, args=(mysql_runner,), rounds=1, iterations=1
    )
    table = ComparisonTable(
        "Figure 4: observed EDP ratio vs theoretical V^2/F"
        " (paper column = model)"
    )
    for setting, model_ratio in theory.items():
        table.add(setting.describe(), model_ratio, observed[setting])
    table.print()

    # "The observed EDP closely matches the theoretical model": the
    # static-power term is the only source of divergence (a few %).
    for setting, model_ratio in theory.items():
        assert observed[setting] == pytest.approx(model_ratio, abs=0.04)
    # Both series agree on the ordering of any clearly-separated pair
    # (near-ties within the model's divergence may swap).
    settings = list(theory)
    for i, a in enumerate(settings):
        for b in settings[i + 1:]:
            if abs(theory[a] - theory[b]) > 0.02:
                assert (
                    (theory[a] < theory[b])
                    == (observed[a] < observed[b])
                ), (a, b)
