"""Perf: fleet-scale batched playback vs the per-query replay loop,
and the vectorized event core vs the per-arrival scheduling loop.

A 16-node x 10k-arrival simulation resolves every arrival to a cached
execution and plays each node's whole timeline as one stacked array
operation per distinct PVC setting.  The naive alternative -- one
``run_compiled`` call per scheduled piece, ~10k+ Python-level playback
calls -- must be >= 5x slower on the playback phase while producing
cluster energy totals identical to <= 1e-9 relative.  The scheduler
gate is the same shape one layer up: chunked closed-form FIFO
sequencing over a 100-node fleet must beat the per-arrival event loop
>= 5x at 100k arrivals with per-node energies identical to <= 1e-9
relative, and the vectorized-only tier must push 1M arrivals x 100
nodes through schedule + playback in seconds.  Results land in
``BENCH_perf.json`` under ``cluster_scaling`` (the artifact writer
merges each test's keys into the shared record).

Smoke configuration: ``REPRO_BENCH_CLUSTER_NODES`` /
``REPRO_BENCH_CLUSTER_ARRIVALS`` shrink the playback scenario,
``REPRO_BENCH_SCALING_NODES`` / ``REPRO_BENCH_SCALING_ARRIVALS`` /
``REPRO_BENCH_SCALING_COMPARE_ARRIVALS`` the scheduler scenarios;
``REPRO_TRACE_CACHE`` points at a directory to persist compiled traces
across benchmark processes.
"""

from repro.cluster import RoundRobinRouter
from repro.measurement.perf import (
    cluster_scaling_scenario,
    compare_cluster_playback,
    compare_cluster_scheduling,
    scheduler_compare_arrivals,
    scheduler_scaling_scenario,
    time_vectorized_tier,
)
from repro.measurement.report import ComparisonTable

#: Gates from the PR acceptance criteria.
MIN_SPEEDUP = 5.0
MAX_REL_DIFF = 1e-9
#: "Seconds, not minutes" for the full 1M x 100 tier; generous enough
#: to absorb a loaded CI machine without letting a regression to the
#: per-arrival loop (minutes) through.
MAX_TIER_WALL_S = 120.0


def run_cluster_comparison(runner, scale_factor, trace_cache):
    specs, router, stream = cluster_scaling_scenario()
    return compare_cluster_playback(
        runner.db, specs, router, stream,
        scale_factor=scale_factor, trace_cache=trace_cache,
    )


def test_cluster_batched_playback_speedup(
    benchmark, lineitem_runner, bench_sf, bench_trace_cache,
    bench_artifact,
):
    comparison = benchmark.pedantic(
        run_cluster_comparison,
        args=(lineitem_runner, bench_sf, bench_trace_cache),
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        f"Cluster playback: {comparison.nodes} nodes x "
        f"{comparison.arrivals} arrivals"
    )
    table.add("schedule phase (s)", None, comparison.schedule_wall_s,
              unit="s")
    table.add("batched playback (s)", None, comparison.batched_wall_s,
              unit="s")
    table.add("per-query loop (s)", None, comparison.loop_wall_s,
              unit="s")
    table.add("playback speedup", None, comparison.speedup)
    table.add("end-to-end speedup", None, comparison.end_to_end_speedup)
    table.add("scheduled pieces", None,
              float(comparison.scheduled_pieces))
    table.add("cluster energy (J)", None,
              comparison.batched_wall_joules, unit="J")
    table.add("tracing overhead", None, comparison.tracing_overhead)
    table.print()
    print(f"run id: {comparison.run_id}")

    bench_artifact({"cluster_scaling": comparison.to_dict()})

    # Identical energy, to float-summation order.
    assert comparison.max_rel_diff <= MAX_REL_DIFF
    total_rel = abs(
        comparison.batched_wall_joules - comparison.loop_wall_joules
    ) / comparison.batched_wall_joules
    assert total_rel <= MAX_REL_DIFF
    # Span tracing must observe, never perturb: the traced schedule's
    # playback energies match the untraced run to the same bound.
    assert comparison.traced_max_rel_diff <= MAX_REL_DIFF
    assert comparison.traced_spans > 0
    # The acceptance gate: batched playback >= 5x over the replay loop.
    assert comparison.speedup >= MIN_SPEEDUP


def run_scheduler_comparison(runner, scale_factor, trace_cache):
    specs, _router, stream = scheduler_scaling_scenario(
        count=scheduler_compare_arrivals()
    )
    return compare_cluster_scheduling(
        runner.db, specs, RoundRobinRouter, stream,
        scale_factor=scale_factor, trace_cache=trace_cache,
    )


def test_vectorized_scheduler_speedup(
    benchmark, lineitem_runner, bench_sf, bench_trace_cache,
    bench_artifact,
):
    comparison = benchmark.pedantic(
        run_scheduler_comparison,
        args=(lineitem_runner, bench_sf, bench_trace_cache),
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        f"Event core: {comparison.nodes} nodes x "
        f"{comparison.arrivals} arrivals"
    )
    table.add("legacy schedule (s)", None,
              comparison.legacy_schedule_wall_s, unit="s")
    table.add("vectorized schedule (s)", None,
              comparison.vectorized_schedule_wall_s, unit="s")
    table.add("scheduler speedup", None, comparison.sched_speedup)
    table.add("end-to-end speedup", None, comparison.end_to_end_speedup)
    table.add("cluster energy (J)", None,
              comparison.vectorized_wall_joules, unit="J")
    table.print()
    print(f"run id: {comparison.run_id}")

    bench_artifact({"cluster_scaling": {
        "sched_speedup": comparison.sched_speedup,
        "sched_end_to_end_speedup": comparison.end_to_end_speedup,
        "sched_nodes": comparison.nodes,
        "sched_arrivals": comparison.arrivals,
        "sched_legacy_wall_s": comparison.legacy_schedule_wall_s,
        "sched_vectorized_wall_s": comparison.vectorized_schedule_wall_s,
        "sched_max_rel_diff": comparison.max_rel_diff,
        "sched_run_id": comparison.run_id,
        "scale_factor": comparison.scale_factor,
    }})

    # Same dispatch, same energy: per-node totals identical to
    # float-summation order and query counts exactly equal.
    assert comparison.dispatch_match
    assert comparison.max_rel_diff <= MAX_REL_DIFF
    # The acceptance gate: the chunked event core >= 5x over the
    # per-arrival loop on the scheduling phase.
    assert comparison.sched_speedup >= MIN_SPEEDUP


def test_million_arrival_tier(
    benchmark, lineitem_runner, bench_sf, bench_trace_cache,
    bench_artifact,
):
    specs, router, stream = scheduler_scaling_scenario()
    tier = benchmark.pedantic(
        time_vectorized_tier,
        args=(lineitem_runner.db, specs, router, stream),
        kwargs={"scale_factor": bench_sf,
                "trace_cache": bench_trace_cache},
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        f"Vectorized tier: {tier.nodes} nodes x {tier.arrivals} arrivals"
    )
    table.add("schedule phase (s)", None, tier.schedule_wall_s, unit="s")
    table.add("playback phase (s)", None, tier.playback_wall_s, unit="s")
    table.add("total (s)", None, tier.total_wall_s, unit="s")
    table.add("cluster energy (J)", None, tier.wall_joules, unit="J")
    table.print()
    print(f"run id: {tier.run_id}")

    bench_artifact({"cluster_scaling": {
        "tier_nodes": tier.nodes,
        "tier_arrivals": tier.arrivals,
        "tier_schedule_wall_s": tier.schedule_wall_s,
        "tier_playback_wall_s": tier.playback_wall_s,
        "tier_total_wall_s": tier.total_wall_s,
        "tier_run_id": tier.run_id,
    }})

    assert tier.served == tier.arrivals
    assert tier.total_wall_s <= MAX_TIER_WALL_S
