"""Perf: fleet-scale batched playback vs the per-query replay loop.

A 16-node x 10k-arrival simulation resolves every arrival to a cached
execution and plays each node's whole timeline as one stacked array
operation per distinct PVC setting.  The naive alternative -- one
``run_compiled`` call per scheduled piece, ~10k+ Python-level playback
calls -- must be >= 5x slower on the playback phase while producing
cluster energy totals identical to <= 1e-9 relative.  The result is
appended to ``BENCH_perf.json`` under ``cluster_scaling``.

Smoke configuration: ``REPRO_BENCH_CLUSTER_NODES`` /
``REPRO_BENCH_CLUSTER_ARRIVALS`` shrink the scenario for CI;
``REPRO_TRACE_CACHE`` points at a directory to persist compiled traces
across benchmark processes.
"""

from repro.measurement.perf import (
    cluster_scaling_scenario,
    compare_cluster_playback,
)
from repro.measurement.report import ComparisonTable

#: Gates from the PR acceptance criteria.
MIN_SPEEDUP = 5.0
MAX_REL_DIFF = 1e-9


def run_cluster_comparison(runner, scale_factor, trace_cache):
    specs, router, stream = cluster_scaling_scenario()
    return compare_cluster_playback(
        runner.db, specs, router, stream,
        scale_factor=scale_factor, trace_cache=trace_cache,
    )


def test_cluster_batched_playback_speedup(
    benchmark, lineitem_runner, bench_sf, bench_trace_cache,
    bench_artifact,
):
    comparison = benchmark.pedantic(
        run_cluster_comparison,
        args=(lineitem_runner, bench_sf, bench_trace_cache),
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        f"Cluster playback: {comparison.nodes} nodes x "
        f"{comparison.arrivals} arrivals"
    )
    table.add("schedule phase (s)", None, comparison.schedule_wall_s,
              unit="s")
    table.add("batched playback (s)", None, comparison.batched_wall_s,
              unit="s")
    table.add("per-query loop (s)", None, comparison.loop_wall_s,
              unit="s")
    table.add("playback speedup", None, comparison.speedup)
    table.add("end-to-end speedup", None, comparison.end_to_end_speedup)
    table.add("scheduled pieces", None,
              float(comparison.scheduled_pieces))
    table.add("cluster energy (J)", None,
              comparison.batched_wall_joules, unit="J")
    table.add("tracing overhead", None, comparison.tracing_overhead)
    table.print()
    print(f"run id: {comparison.run_id}")

    bench_artifact({"cluster_scaling": comparison.to_dict()})

    # Identical energy, to float-summation order.
    assert comparison.max_rel_diff <= MAX_REL_DIFF
    total_rel = abs(
        comparison.batched_wall_joules - comparison.loop_wall_joules
    ) / comparison.batched_wall_joules
    assert total_rel <= MAX_REL_DIFF
    # Span tracing must observe, never perturb: the traced schedule's
    # playback energies match the untraced run to the same bound.
    assert comparison.traced_max_rel_diff <= MAX_REL_DIFF
    assert comparison.traced_spans > 0
    # The acceptance gate: batched playback >= 5x over the replay loop.
    assert comparison.speedup >= MIN_SPEEDUP
