"""Ablation: fault injection & recovery at cluster scale (ISSUE 6).

The consolidation energy claims assume every node wakes on command and
finishes every batch.  This bench runs the canonical fault plan --
a straggler window on the hot node, a crash that kills it mid-batch,
an always-fail wake window on the obvious replacement, and a transient
unavailability window -- over the same Poisson stream in two fleet
modes: always-awake spread (round-robin) and dynamic consolidation
with the recovery layer (retry policy, replacement re-wake).  The
result is appended to ``BENCH_perf.json`` under ``faults``.

Gates (PR acceptance criteria):

* the plan is genuinely active: >= 1 crash that takes in-flight work
  (requeues prove it struck mid-batch), >= 1 failed wake, and the
  straggler window is part of the canonical plan;
* consolidate-with-recovery still beats always-awake spread on cluster
  energy at the equal SLA-miss budget (1% of arrivals);
* no query is silently lost: every arrival is served exactly once or
  visibly dead-lettered, in both modes.

Smoke configuration: ``REPRO_BENCH_FAULT_ARRIVALS`` shrinks the stream
for CI; ``REPRO_TRACE_CACHE`` persists compiled traces across
benchmark processes.
"""

from repro.measurement.perf import run_fault_ablation
from repro.measurement.report import ComparisonTable


def test_fault_recovery_ablation(
    benchmark, lineitem_runner, bench_sf, bench_trace_cache,
    bench_artifact,
):
    ablation = benchmark.pedantic(
        run_fault_ablation,
        args=(lineitem_runner.db,),
        kwargs=dict(scale_factor=bench_sf,
                    trace_cache=bench_trace_cache),
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        f"fault recovery: {ablation.arrivals} arrivals over "
        f"{ablation.nodes} nodes (retry x{ablation.retry_max}, "
        f"backoff {ablation.retry_backoff_s:g} s)"
    )
    for name, stats in ablation.modes.items():
        f = stats["faults"]
        table.add(f"{name}: energy (J)", None, stats["wall_joules"],
                  unit="J")
        table.add(f"{name}: SLA misses", None,
                  float(stats["sla_misses"]))
        table.add(f"{name}: retries", None, float(f["retries"]))
        table.add(f"{name}: dead-lettered", None,
                  float(f["dead_lettered"]))
        table.add(f"{name}: wasted (J)", None, f["wasted_joules"],
                  unit="J")
    table.add("consolidate vs spread saving", None,
              ablation.consolidate_vs_spread_saving)
    table.print()

    bench_artifact({"faults": ablation.to_dict()})

    # The faults genuinely bit: a mid-batch crash (in-flight work came
    # back for requeueing) and at least one failed wake.
    assert ablation.faults_active
    for name, stats in ablation.modes.items():
        assert stats["faults"]["crashes"] >= 1, name
    # Conservation: nothing silently lost in either mode.
    assert ablation.conserved
    for name, stats in ablation.modes.items():
        assert stats["served"] + stats["shed"] == ablation.arrivals, name
        assert stats["shed"] == stats["faults"]["dead_lettered"], name
    # The acceptance gate: consolidation + recovery still wins on
    # energy at the equal SLA-miss budget while faults are active.
    assert ablation.consolidate_beats_spread
    assert ablation.consolidate_vs_spread_saving > 0.0
