"""Figure 2: commercial DBMS, energy-ratio vs time-ratio plane.

Regenerates the paper's Figure 2: both small and medium voltage
downgrades at 5/10/15% underclock, plotted as ratios to stock, with the
iso-EDP curve.  The text quotes the EDP deltas: small -30/-22/-15%,
medium -47/-38/-23%.
"""

import pytest

from repro.calibration import targets
from repro.core.pvc.sweep import PvcSweep
from repro.measurement.report import ComparisonTable
from repro.workloads.tpch.queries import q5_paper_workload


def run_figure2(runner):
    sweep = PvcSweep(runner, q5_paper_workload())
    return sweep.run()


def test_fig2_commercial_ratio_plane(benchmark, commercial_runner):
    curve = benchmark.pedantic(
        run_figure2, args=(commercial_runner,), rounds=1, iterations=1
    )
    table = ComparisonTable(
        "Figure 2: commercial DBMS energy/time ratios and EDP deltas"
    )
    ratios = {r.label: r for r in curve.ratios()}
    for downgrade in ("small", "medium"):
        for pct in (5, 10, 15):
            point = ratios[f"{pct}% underclock / {downgrade}"]
            paper_edp = targets.EDP_DELTAS[("commercial", downgrade)][pct]
            table.add(f"{downgrade:6s} {pct:2d}% EDP delta",
                      paper_edp, point.edp_delta)
            table.add(f"{downgrade:6s} {pct:2d}% energy ratio",
                      targets.energy_ratio_target(
                          "commercial", downgrade, pct),
                      point.energy_ratio)
            table.add(f"{downgrade:6s} {pct:2d}% time ratio",
                      targets.commercial_time_ratio(pct),
                      point.time_ratio)
    table.print()

    # Every downgraded point sits below the iso-EDP curve ("interesting")
    interesting = curve.interesting_points()
    assert len(interesting) == 6
    # Medium 5% has the lowest EDP; EDP worsens with deeper underclock.
    for downgrade in ("small", "medium"):
        series = [
            ratios[f"{pct}% underclock / {downgrade}"].edp_delta
            for pct in (5, 10, 15)
        ]
        assert series == sorted(series)
        for pct in (5, 10, 15):
            point = ratios[f"{pct}% underclock / {downgrade}"]
            paper_edp = targets.EDP_DELTAS[("commercial", downgrade)][pct]
            assert point.edp_delta == pytest.approx(paper_edp, abs=0.05)
