"""Shared benchmark fixtures.

Benchmarks run the paper's experiments at ``BENCH_SF`` (0.05 by
default -- override with ``REPRO_BENCH_SF``) and extrapolate absolute
magnitudes to the paper's scale factor where relevant; all *ratios* are
scale-invariant (see DESIGN.md).  Each bench prints a paper-vs-measured
table via ``repro.measurement.report.ComparisonTable``; run with ``-s``
to see them.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import pytest

from repro.db.profiles import commercial_profile, mysql_profile
from repro.hardware.profiles import paper_sut
from repro.workloads.runner import WorkloadRunner
from repro.workloads.tpch.generator import tpch_database
from repro.workloads.tpch.queries import Q5_TABLES

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.05"))

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
#: Below this scale factor (the CI smoke run) artifacts go to a scratch
#: path so smoke numbers never clobber the committed record.
ARTIFACT_MIN_SF = 0.05


def write_bench_artifact(updates: dict) -> Path:
    """Merge ``updates`` into the perf artifact (each bench owns its keys).

    Dict values merge one level deep, so two tests contributing to the
    same top-level record (e.g. ``cluster_scaling``'s playback and
    scheduler halves) extend it instead of clobbering each other.
    """
    out = (
        BENCH_JSON if BENCH_SF >= ARTIFACT_MIN_SF
        else Path(tempfile.gettempdir()) / "BENCH_perf_smoke.json"
    )
    record = json.loads(out.read_text()) if out.exists() else {}
    for key, value in updates.items():
        if isinstance(value, dict) and isinstance(record.get(key), dict):
            record[key].update(value)
        else:
            record[key] = value
    out.write_text(json.dumps(record, indent=2))
    return out


@pytest.fixture(scope="session")
def bench_artifact():
    return write_bench_artifact


@pytest.fixture(scope="session")
def bench_sf() -> float:
    return BENCH_SF


@pytest.fixture(scope="session")
def commercial_runner():
    """Warmed commercial-profile TPC-H database on the paper machine."""
    db = tpch_database(
        BENCH_SF, commercial_profile(BENCH_SF), seed=0, tables=Q5_TABLES
    )
    db.warm()
    return WorkloadRunner(db, paper_sut())


@pytest.fixture(scope="session")
def mysql_runner():
    """Memory-engine TPC-H database on the paper machine."""
    db = tpch_database(BENCH_SF, mysql_profile(), seed=0, tables=Q5_TABLES)
    return WorkloadRunner(db, paper_sut())


@pytest.fixture(scope="session")
def lineitem_runner():
    """Lineitem-only memory database for the QED experiments."""
    db = tpch_database(BENCH_SF, mysql_profile(), seed=0,
                       tables=["lineitem"])
    return WorkloadRunner(db, paper_sut())


@pytest.fixture(scope="session")
def bench_trace_cache():
    """Optional cross-process compiled-trace store.

    Point ``REPRO_TRACE_CACHE`` at a directory (the ``--trace-cache
    DIR`` hook; see also ``scripts/perf_report.py``) and repeated bench
    invocations load compiled traces from disk instead of re-executing
    the workload.  The namespace pins everything a trace depends on
    besides the SQL: engine, scale factor, generator seed.
    """
    path = os.environ.get("REPRO_TRACE_CACHE")
    if not path:
        return None
    from repro.workloads.runner import TraceCache

    return TraceCache.for_workload(path, "mysql", BENCH_SF, seed=0,
                                   tables=("lineitem",))
