"""Shared benchmark fixtures.

Benchmarks run the paper's experiments at ``BENCH_SF`` (0.05 by
default -- override with ``REPRO_BENCH_SF``) and extrapolate absolute
magnitudes to the paper's scale factor where relevant; all *ratios* are
scale-invariant (see DESIGN.md).  Each bench prints a paper-vs-measured
table via ``repro.measurement.report.ComparisonTable``; run with ``-s``
to see them.
"""

from __future__ import annotations

import os

import pytest

from repro.db.profiles import commercial_profile, mysql_profile
from repro.hardware.profiles import paper_sut
from repro.workloads.runner import WorkloadRunner
from repro.workloads.tpch.generator import tpch_database
from repro.workloads.tpch.queries import Q5_TABLES

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.05"))


@pytest.fixture(scope="session")
def bench_sf() -> float:
    return BENCH_SF


@pytest.fixture(scope="session")
def commercial_runner():
    """Warmed commercial-profile TPC-H database on the paper machine."""
    db = tpch_database(
        BENCH_SF, commercial_profile(BENCH_SF), seed=0, tables=Q5_TABLES
    )
    db.warm()
    return WorkloadRunner(db, paper_sut())


@pytest.fixture(scope="session")
def mysql_runner():
    """Memory-engine TPC-H database on the paper machine."""
    db = tpch_database(BENCH_SF, mysql_profile(), seed=0, tables=Q5_TABLES)
    return WorkloadRunner(db, paper_sut())


@pytest.fixture(scope="session")
def lineitem_runner():
    """Lineitem-only memory database for the QED experiments."""
    db = tpch_database(BENCH_SF, mysql_profile(), seed=0,
                       tables=["lineitem"])
    return WorkloadRunner(db, paper_sut())
