"""Ablation: QED admission queueing at cluster scale (ISSUE 5).

The paper's deployment story puts the QED queue on the always-on
master, not on the workers.  The canonical mixed-template stream (two
mergeable selection templates plus an occasional non-mergeable shape)
runs three ways over the same fleet -- no queueing, a private queue per
node behind a load balancer, and one master queue partitioned by
mergeable template -- and the result is appended to ``BENCH_perf.json``
under ``qed``.

Gates (PR acceptance criteria):

* master QED beats per-node QED on cluster energy, which in turn beats
  no QED, all at the equal SLA-miss budget (1% of arrivals);
* the mixed-template workload completes without ``NotMergeableError``
  in every mode -- per-node queues exercise the singleton fallback
  (the former crash), the master queue partitions so it never needs it.

Smoke configuration: ``REPRO_BENCH_QED_ARRIVALS`` shrinks the stream
for CI; ``REPRO_TRACE_CACHE`` persists compiled traces across
benchmark processes.
"""

from repro.measurement.perf import run_qed_ablation
from repro.measurement.report import ComparisonTable


def test_qed_mode_ablation(
    benchmark, lineitem_runner, bench_sf, bench_trace_cache,
    bench_artifact,
):
    ablation = benchmark.pedantic(
        run_qed_ablation,
        args=(lineitem_runner.db,),
        kwargs=dict(scale_factor=bench_sf,
                    trace_cache=bench_trace_cache),
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        f"QED ablation: {ablation.arrivals} arrivals over "
        f"{ablation.nodes} nodes (threshold {ablation.threshold}, "
        f"max wait {ablation.max_wait_s:g} s)"
    )
    for name, stats in ablation.modes.items():
        table.add(f"{name}: energy (J)", None, stats["wall_joules"],
                  unit="J")
        table.add(f"{name}: SLA misses", None,
                  float(stats["sla_misses"]))
        if "qed_mean_batch_size" in stats:
            table.add(f"{name}: mean batch", None,
                      stats["qed_mean_batch_size"])
    table.add("master vs node saving", None,
              ablation.master_vs_node_saving)
    table.add("node vs off saving", None, ablation.node_vs_off_saving)
    table.print()

    bench_artifact({"qed": ablation.to_dict()})

    # Conservation: the mixed-template stream completes in every mode
    # (the per-node path used to crash with NotMergeableError here).
    for name, stats in ablation.modes.items():
        assert stats["served"] + stats["shed"] == ablation.arrivals, name
        assert stats["shed"] == 0, name
    # The regression is genuinely exercised: per-node queues received
    # mixed batches and degraded them to singletons...
    assert ablation.modes["node"]["qed_fallback_batches"] > 0
    # ... while the master queue partitions and never falls back.
    assert ablation.modes["master"]["qed_fallback_batches"] == 0
    # Fleet-wide batching merges more queries per execution.
    assert (
        ablation.modes["master"]["qed_mean_batch_size"]
        > ablation.modes["node"]["qed_mean_batch_size"]
    )
    # The acceptance ordering at the equal SLA budget.
    assert ablation.master_beats_node
    assert ablation.node_beats_off
