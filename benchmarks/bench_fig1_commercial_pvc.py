"""Figure 1: TPC-H Q5 on the commercial DBMS -- energy vs response time.

Regenerates the paper's opening plot: the ten-query Q5 workload at the
traditional operating point plus settings A/B/C (5/10/15% underclock,
medium voltage downgrade).  Absolute magnitudes are extrapolated to the
paper's SF 1.0 (work scales linearly with data); the figure's claims --
A saves 49% CPU energy for a 3% slowdown, B and C are strictly worse --
are asserted on the measured points.
"""

import pytest

from repro.calibration import targets
from repro.core.pvc.sweep import PvcSweep
from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.measurement.report import ComparisonTable
from repro.workloads.tpch.queries import q5_paper_workload

SETTINGS = {
    "A": PvcSetting(5, VoltageDowngrade.MEDIUM),
    "B": PvcSetting(10, VoltageDowngrade.MEDIUM),
    "C": PvcSetting(15, VoltageDowngrade.MEDIUM),
}


def run_figure1(runner, scale_factor):
    sweep = PvcSweep(runner, q5_paper_workload())
    curve = sweep.run(list(SETTINGS.values()))
    relabeled = {
        point.setting: point for point in curve.points
    }
    return curve, relabeled, scale_factor


def test_fig1_commercial_tradeoff(benchmark, commercial_runner, bench_sf):
    curve, by_setting, sf = benchmark.pedantic(
        run_figure1, args=(commercial_runner, bench_sf),
        rounds=1, iterations=1,
    )
    base = curve.baseline
    table = ComparisonTable(
        "Figure 1: TPC-H Q5 on a commercial DBMS (extrapolated to SF 1.0)"
    )
    table.add("stock response time (s)",
              targets.COMMERCIAL_STOCK_SECONDS, base.time_s / sf, unit="s")
    table.add("stock CPU energy (J)",
              targets.COMMERCIAL_STOCK_CPU_JOULES, base.energy_j / sf,
              unit="J")
    point_a = by_setting[SETTINGS["A"]]
    table.add("setting A energy ratio", 0.51,
              point_a.energy_j / base.energy_j)
    table.add("setting A time ratio", 1.03, point_a.time_s / base.time_s)
    for label in ("B", "C"):
        point = by_setting[SETTINGS[label]]
        table.add(f"setting {label} energy (J, SF 1.0)", None,
                  point.energy_j / sf, unit="J")
        table.add(f"setting {label} time (s, SF 1.0)", None,
                  point.time_s / sf, unit="s")
    table.print()

    # The figure's qualitative content: A dominates B and C.
    a = by_setting[SETTINGS["A"]]
    b = by_setting[SETTINGS["B"]]
    c = by_setting[SETTINGS["C"]]
    assert a.energy_j < b.energy_j < c.energy_j
    assert a.time_s < b.time_s < c.time_s
    assert curve.best_by_edp().setting == SETTINGS["A"]
    # Headline: ~49% CPU energy saving for ~3% time penalty.
    assert a.energy_j / base.energy_j == pytest.approx(0.51, abs=0.03)
    assert a.time_s / base.time_s == pytest.approx(1.03, abs=0.01)
