"""Figure 5: disk throughput and energy per KB, sequential vs random.

Regenerates the paper's microbenchmark: read 1.6 GB of a 4 GB file
sequentially and randomly with 4/8/16/32 KB read calls.  Expected
behaviour: sequential throughput (and energy/KB) flat; random improves
with block size but sub-proportionally (~1.88x / ~3.5x / ~6x over 4 KB).
"""

import pytest

from repro.calibration import targets
from repro.hardware.disk import Disk
from repro.measurement.report import ComparisonTable


def run_figure5():
    disk = Disk()
    series = {}
    for block in targets.FIG5_BLOCK_SIZES:
        series[block] = {
            "seq_bps": disk.throughput_bps(
                block, sequential=True,
                total_bytes=targets.FIG5_TOTAL_BYTES,
            ),
            "rand_bps": disk.throughput_bps(
                block, sequential=False,
                total_bytes=targets.FIG5_TOTAL_BYTES,
            ),
            "seq_j_per_kb": disk.energy_per_kb(block, sequential=True),
            "rand_j_per_kb": disk.energy_per_kb(block, sequential=False),
        }
    return series


def test_fig5_disk_access_patterns(benchmark):
    series = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    base_rand = series[4096]["rand_bps"]
    base_energy = series[4096]["rand_j_per_kb"]

    table = ComparisonTable(
        "Figure 5: random-access improvement over 4 KB blocks"
    )
    for block, factor in targets.FIG5_RANDOM_IMPROVEMENT.items():
        table.add(
            f"throughput x at {block // 1024}KB", factor,
            series[block]["rand_bps"] / base_rand,
        )
        table.add(
            f"energy/KB improvement at {block // 1024}KB", factor,
            base_energy / series[block]["rand_j_per_kb"],
        )
    for block in targets.FIG5_BLOCK_SIZES:
        table.add(
            f"sequential MB/s at {block // 1024}KB", None,
            series[block]["seq_bps"] / 1e6,
        )
        table.add(
            f"random MB/s at {block // 1024}KB", None,
            series[block]["rand_bps"] / 1e6,
        )
    table.print()

    # Fig 5(a): sequential flat; random rises sub-proportionally.
    seq_rates = [series[b]["seq_bps"] for b in targets.FIG5_BLOCK_SIZES]
    assert max(seq_rates) == pytest.approx(min(seq_rates))
    for block, factor in targets.FIG5_RANDOM_IMPROVEMENT.items():
        measured = series[block]["rand_bps"] / base_rand
        assert measured == pytest.approx(
            factor, rel=targets.FIG5_IMPROVEMENT_REL_TOLERANCE
        )
        assert measured < block / 4096  # sub-proportional
    # Fig 5(b): energy per KB mirrors 1/throughput; sequential is far
    # more energy-efficient "primarily because it is faster".
    assert (
        series[4096]["seq_j_per_kb"]
        < series[4096]["rand_j_per_kb"] / 50
    )
