"""Ablation: fleet policies under the diurnal load profile.

The paper's deployment claim at fleet scale: when traffic swings
between a nighttime trough and a midday crest, energy should track
*load*, not *provisioning*.  The canonical diurnal scenario (two
compressed day/night cycles of nonhomogeneous Poisson arrivals over a
heterogeneous big+eco fleet) runs under four policies -- static spread,
one-shot consolidate, dynamic re-consolidation, adaptive per-node PVC
-- and the result is appended to ``BENCH_perf.json`` under ``diurnal``.

Gates (PR acceptance criteria):

* dynamic re-consolidation beats static spread on energy while both
  hold the same SLA-miss budget (1% of arrivals at the 0.5 s SLA);
* the heterogeneous-fleet batched playback path stays within 1e-9
  relative energy of the per-query replay loop at >= 5x its speed.

Smoke configuration: ``REPRO_BENCH_DIURNAL_HORIZON`` shrinks the
stream for CI; ``REPRO_TRACE_CACHE`` persists compiled traces across
benchmark processes.
"""

from repro.measurement.perf import run_diurnal_ablation
from repro.measurement.report import ComparisonTable

MIN_SPEEDUP = 5.0
MAX_REL_DIFF = 1e-9


def test_diurnal_policy_ablation(
    benchmark, lineitem_runner, bench_sf, bench_trace_cache,
    bench_artifact,
):
    ablation = benchmark.pedantic(
        run_diurnal_ablation,
        args=(lineitem_runner.db,),
        kwargs=dict(scale_factor=bench_sf,
                    trace_cache=bench_trace_cache),
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        f"Diurnal ablation: {ablation.arrivals} arrivals over "
        f"{ablation.horizon_s:.0f} s"
    )
    for name, stats in ablation.policies.items():
        table.add(f"{name}: energy (J)", None, stats["wall_joules"],
                  unit="J")
        table.add(f"{name}: awake node-s", None, stats["awake_node_s"])
        table.add(f"{name}: SLA misses", None,
                  float(stats["sla_misses"]))
    table.add("hetero playback speedup", None, ablation.hetero_speedup)
    table.print()

    print("phase energy (modeled J):")
    for name, phases in ablation.phase_energy.items():
        print(f"  {name:12s} low {phases['low']:9.1f}  "
              f"mid {phases['mid']:9.1f}  peak {phases['peak']:9.1f}")

    bench_artifact({"diurnal": ablation.to_dict()})

    # Dynamic re-consolidation actually re-consolidates...
    assert ablation.policies["dynamic"]["re_sleeps"] > 0
    # ... and wins on energy at the shared SLA-miss budget.
    assert ablation.dynamic_beats_spread
    # The one-shot packer never re-sleeps; the dynamic policy must not
    # spend more awake node-seconds than static spread.
    assert ablation.policies["consolidate"]["re_sleeps"] == 0
    assert (
        ablation.policies["dynamic"]["awake_node_s"]
        < ablation.policies["spread"]["awake_node_s"]
    )
    # Heterogeneous-fleet batched playback: exact and fast.
    assert ablation.hetero_max_rel_diff <= MAX_REL_DIFF
    assert ablation.hetero_speedup >= MIN_SPEEDUP
