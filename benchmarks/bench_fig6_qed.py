"""Figure 6: QED energy vs average per-query response time.

Regenerates the paper's QED experiment: 2%-selectivity selections on
``l_quantity``, batch sizes 35/40/45/50, sequential evaluation vs one
aggregated disjunctive query plus a client-side split.  Paper points:
batch 35 -> (-46% energy, +52% response, EDP -18%); batch 40 -> (-51%,
+50%, EDP -26%); batch 50 is the headline (-54%, +43%) and the best EDP.
"""

import pytest

from repro.calibration import targets
from repro.core.qed.executor import QedExecutor
from repro.measurement.report import ComparisonTable
from repro.workloads.selection import selection_workload


def run_figure6(runner):
    executor = QedExecutor(runner)
    return {
        n: executor.compare(selection_workload(n).queries)
        for n in targets.QED_BATCH_SIZES
    }


def test_fig6_qed_tradeoff(benchmark, lineitem_runner):
    comparisons = benchmark.pedantic(
        run_figure6, args=(lineitem_runner,), rounds=1, iterations=1
    )
    table = ComparisonTable("Figure 6: QED vs sequential, per batch size")
    for n, comparison in comparisons.items():
        e_delta, r_delta, edp_delta = targets.QED_POINTS[n]
        table.add(f"batch {n} energy delta", e_delta,
                  comparison.energy_delta)
        table.add(f"batch {n} response delta", r_delta,
                  comparison.response_delta)
        if edp_delta is not None:
            table.add(f"batch {n} EDP delta", edp_delta,
                      comparison.edp_delta)
    table.print()

    # Quantitative check per point.
    for n, comparison in comparisons.items():
        e_delta, r_delta, _ = targets.QED_POINTS[n]
        assert comparison.energy_delta == pytest.approx(
            e_delta, abs=targets.QED_RATIO_TOLERANCE
        )
        assert comparison.response_delta == pytest.approx(
            r_delta, abs=targets.QED_RATIO_TOLERANCE
        )
    # Shape: bigger batches save more energy with (weakly) less average
    # response degradation, so batch 50 has the best EDP.
    energies = [comparisons[n].energy_ratio
                for n in targets.QED_BATCH_SIZES]
    responses = [comparisons[n].response_ratio
                 for n in targets.QED_BATCH_SIZES]
    edps = [comparisons[n].edp_ratio for n in targets.QED_BATCH_SIZES]
    assert energies == sorted(energies, reverse=True)
    assert responses == sorted(responses, reverse=True)
    assert edps[-1] == min(edps)
    # First-query degradation grows with batch size (paper Sec. 4).
    assert (
        comparisons[50].position_degradation()[0]
        > comparisons[35].position_degradation()[0]
    )
