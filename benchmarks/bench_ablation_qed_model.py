"""Ablation: QED analytical model vs measured behaviour, plus policies.

The paper claims "a simple analytical model can be used to capture these
effects [per-position response degradation] in more detail, and can be
used to consider the impact on SLAs."  This bench validates
:class:`repro.core.qed.analytical.QedModel` against the measured
executor and exercises the SLA feasibility query.
"""

import pytest

from repro.core.qed.analytical import QedModel
from repro.core.qed.executor import QedExecutor
from repro.core.qed.policy import BatchPolicy
from repro.core.qed.queue import QueryQueue
from repro.measurement.report import ComparisonTable
from repro.workloads.selection import selection_workload


def run_model_validation(runner):
    executor = QedExecutor(runner)
    measured = {
        n: executor.compare(selection_workload(n).queries)
        for n in (35, 50)
    }
    # Parameterize the model from a measured single query.
    single = executor.run_sequential(selection_workload(1).queries)
    t_q = single.total_time_s
    model = QedModel()
    return measured, model, t_q


def test_ablation_qed_analytical_model(benchmark, lineitem_runner):
    measured, model, _ = benchmark.pedantic(
        run_model_validation, args=(lineitem_runner,),
        rounds=1, iterations=1,
    )
    table = ComparisonTable(
        "Ablation: analytical QED model (paper column = measured)"
    )
    for n, comparison in measured.items():
        table.add(f"batch {n} response ratio",
                  comparison.response_ratio, model.response_ratio(n))
        table.add(f"batch {n} first-query degradation",
                  comparison.position_degradation()[0],
                  model.first_query_degradation(n))
    table.print()

    for n, comparison in measured.items():
        assert model.response_ratio(n) == pytest.approx(
            comparison.response_ratio, rel=0.15
        )
        assert model.first_query_degradation(n) == pytest.approx(
            comparison.position_degradation()[0], rel=0.15
        )


def test_ablation_batch_policy_sla(benchmark):
    """Queue + timeout policy: a half-full queue still drains, and the
    analytical model bounds the SLA-feasible batch size."""
    def run():
        model = QedModel()
        # An SLA of 25 single-query-times on the *first* query:
        feasible = model.max_batch_for_sla(25.0)
        queue = QueryQueue(BatchPolicy(threshold=feasible, max_wait_s=30.0))
        batches = []
        for i in range(feasible + feasible // 2):
            batch = queue.submit(f"q{i}", 0.1 * i)  # fast arrivals
            if batch is not None:
                batches.append(batch)
        tail = queue.tick(0.1 * feasible * 2 + 31.0)
        if tail is not None:
            batches.append(tail)
        return feasible, batches

    feasible, batches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 < feasible <= 50
    assert len(batches) == 2
    assert batches[0].size == feasible          # threshold dispatch
    assert batches[1].size == feasible // 2     # timeout dispatch
