"""Ablation: whole-window energy under the paper's sleeping-server model.

The paper's QED accounting assumes "the queue of queries builds up in a
master system that is always on ... and that the DBMS machine goes to
sleep when there is no work", and admits this needs relaxing.  This
bench quantifies what the assumption is worth: for an arrival stream
that takes much longer than the execution itself, it compares
whole-window *wall* energy of (a) the traditional always-on server
answering queries as they arrive, and (b) QED batching with the server
asleep between batches.
"""

import pytest

from repro.core.qed.executor import QedExecutor
from repro.core.qed.provisioning import SleepingServerModel
from repro.measurement.report import ComparisonTable
from repro.workloads.selection import selection_workload


def run_provisioning(runner):
    executor = QedExecutor(runner)
    queries = selection_workload(50).queries
    sequential = executor.run_sequential(queries)
    batched = executor.run_batched(queries)
    model = SleepingServerModel(runner.sut)
    # Arrival window: the batch accumulates over 10x the sequential
    # execution time (~10% server duty cycle, the data-center common
    # case per the paper's citations).
    window_s = sequential.total_time_s * 10.0
    always_on = model.always_on(
        window_s, sequential.total_time_s,
        sequential.measurement.wall_joules,
    )
    sleeper = model.sleep_between_batches(
        window_s, batched.total_time_s,
        batched.measurement.wall_joules,
    )
    saving = model.system_saving(
        window_s,
        sequential.total_time_s, sequential.measurement.wall_joules,
        batched.total_time_s, batched.measurement.wall_joules,
    )
    return model, always_on, sleeper, saving


def test_ablation_sleeping_server(benchmark, lineitem_runner):
    model, always_on, sleeper, saving = benchmark.pedantic(
        run_provisioning, args=(lineitem_runner,), rounds=1, iterations=1
    )
    table = ComparisonTable(
        "Sleeping-server model: whole-window wall energy (batch 50)"
    )
    table.add("always-on duty cycle", None, always_on.duty_cycle)
    table.add("always-on wall J", None, always_on.total_wall_j, unit="J")
    table.add("QED+sleep wall J", None, sleeper.total_wall_j, unit="J")
    table.add("idle wall W (awake)", None, model.idle_wall_w(), unit="W")
    table.add("sleep wall W", None, model.sleep_wall_w, unit="W")
    table.add("whole-window saving", None, saving)
    table.print()

    # At ~10% duty cycle, the always-on server's *idle* energy dominates
    # its window; sleeping between batches removes most of it, so the
    # system-level saving far exceeds QED's CPU-only saving.
    assert always_on.duty_cycle == pytest.approx(0.1, abs=0.01)
    assert always_on.idle_wall_j > always_on.active_wall_j
    assert saving > 0.5
    # The QED batch finishes sooner than 50 sequential queries, so the
    # sleeper's busy window is also shorter.
    assert sleeper.busy_s < always_on.busy_s
