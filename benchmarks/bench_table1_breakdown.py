"""Table 1: system power breakdown during the component buildup.

Regenerates the paper's Table 1: wall power measured as the machine is
assembled -- PSU+motherboard (off, then on), +CPU/fan, +1G RAM, +2G RAM,
+GPU.
"""

from repro.calibration import targets
from repro.hardware.profiles import paper_sut
from repro.measurement.report import ComparisonTable


def run_breakdown() -> ComparisonTable:
    sut = paper_sut()
    table = ComparisonTable("Table 1: system power breakdown (wall W)")
    rows = targets.TABLE1_ROWS
    table.add(rows[0].description, rows[0].watts,
              sut.soft_off_wall_power_w(), unit="W")
    for row in rows[1:]:
        measured = sut.idle_wall_power_w(
            with_cpu=row.with_cpu,
            dimm_count=row.dimm_count,
            with_gpu=row.with_gpu,
            with_disk=False,
        )
        table.add(row.description, row.watts, measured, unit="W")
    return table


def test_table1_power_breakdown(benchmark):
    table = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    table.print()
    assert table.max_abs_error() < 0.05  # within 5% on every row
