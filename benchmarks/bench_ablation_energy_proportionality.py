"""Ablation: how energy proportionality changes the QED opportunity.

Section 2 of the paper (citing Barroso & Holzle) notes that 2008-era
hardware burns more than half its peak power when idle, and predicts the
DBMS's share of energy decisions will *grow* as hardware improves.  This
bench sweeps the CPU's idle-activity factor (a proxy for how
energy-proportional the part is) and measures the QED batch-50 energy
saving under each: with perfectly proportional hardware the sequential
baseline wastes nothing while idling, so QED's relative benefit shifts.
"""

import dataclasses

from repro.core.qed.executor import QedExecutor
from repro.hardware.profiles import paper_sut
from repro.measurement.report import ComparisonTable
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_workload

IDLE_ACTIVITY_LEVELS = [0.40, 0.20, 0.08, 0.02]


def run_proportionality_sweep(db):
    results = {}
    queries = selection_workload(50).queries
    for idle_activity in IDLE_ACTIVITY_LEVELS:
        sut = paper_sut()
        sut.cpu_spec = dataclasses.replace(
            sut.cpu_spec, idle_activity=idle_activity
        )
        executor = QedExecutor(WorkloadRunner(db, sut))
        results[idle_activity] = executor.compare(queries)
    return results


def test_ablation_energy_proportionality(benchmark, lineitem_runner):
    results = benchmark.pedantic(
        run_proportionality_sweep, args=(lineitem_runner.db,),
        rounds=1, iterations=1,
    )
    table = ComparisonTable(
        "Ablation: QED batch-50 savings vs hardware energy"
        " proportionality (idle activity factor)"
    )
    for idle_activity, comparison in results.items():
        table.add(f"idle activity {idle_activity:.2f}: energy delta",
                  None, comparison.energy_delta)
        table.add(f"idle activity {idle_activity:.2f}: EDP delta",
                  None, comparison.edp_delta)
    table.print()

    # QED saves energy at every proportionality level...
    for comparison in results.values():
        assert comparison.energy_delta < -0.3
    # ...and the sweep produces a monotone trend in idle activity,
    # confirming idle power is a real term in the QED arithmetic.
    deltas = [results[a].energy_delta for a in IDLE_ACTIVITY_LEVELS]
    assert deltas == sorted(deltas) or deltas == sorted(
        deltas, reverse=True
    )
