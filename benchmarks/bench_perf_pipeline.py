"""Perf: execute-once/replay-many vs naive re-execution (the 35x claim).

The Figure 1-3 sweeps measure 7 operating points with the paper's
5-run protocol.  The naive pipeline pays a full parse/plan/execute for
every point and repeat -- 35 workload executions.  The replay pipeline
executes each distinct query once and re-costs cached compiled traces,
so the sweep's database work collapses from 35x to 1x.  This bench
times both (plus a second, fully-cached sweep), asserts the >= 5x
speedup gate, checks the curves agree to <= 1e-9 relative, and writes
``BENCH_perf.json`` to seed the repo's perf trajectory.
"""

from repro.measurement.perf import compare_sweep_paths
from repro.measurement.report import ComparisonTable
from repro.workloads.selection import SelectionWorkload

#: Gate from the PR acceptance criteria.
MIN_SPEEDUP = 5.0
MAX_REL_DIFF = 1e-9


def run_perf_pipeline(runner, scale_factor):
    workload = SelectionWorkload(tuple(range(1, 11)))
    return compare_sweep_paths(
        runner.db, runner.sut, workload.queries,
        repeats=5, scale_factor=scale_factor,
    )


def test_perf_replay_speedup(benchmark, lineitem_runner, bench_sf,
                             bench_artifact):
    comparison = benchmark.pedantic(
        run_perf_pipeline, args=(lineitem_runner, bench_sf),
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        "Execute-once/replay-many: 7-setting x 5-repeat sweep wall time"
    )
    table.add("naive sweep, rerun repeats (s)", None,
              comparison.naive.wall_s, unit="s")
    table.add("pre-refactor sweep, reuse repeats (s)", None,
              comparison.naive_reuse.wall_s, unit="s")
    table.add("replay sweep, cold cache (s)", None,
              comparison.replay_cold.wall_s, unit="s")
    table.add("replay sweep, warm cache (s)", None,
              comparison.replay_cached.wall_s, unit="s")
    table.add("speedup vs naive (cold)", None, comparison.speedup_cold)
    table.add("speedup vs naive (cached)", None,
              comparison.speedup_cached)
    table.add("speedup vs pre-refactor (cold)", None,
              comparison.speedup_vs_prerefactor)
    table.add("db executions: naive", None,
              float(comparison.naive.db_executions))
    table.add("db executions: pre-refactor", None,
              float(comparison.naive_reuse.db_executions))
    table.add("db executions: replay", None,
              float(comparison.replay_cold.db_executions))
    table.print()

    bench_artifact(comparison.to_dict())

    # Every path produces the same curve, numerically.
    assert comparison.max_rel_diff_reuse <= MAX_REL_DIFF
    assert comparison.max_rel_diff_cold <= MAX_REL_DIFF
    assert comparison.max_rel_diff_cached <= MAX_REL_DIFF
    # Execute-once: 10 distinct queries run once, vs 350 naive /
    # 70 pre-refactor runs.
    assert comparison.replay_cold.db_executions == 10
    assert comparison.naive.db_executions == 350
    assert comparison.naive_reuse.db_executions == 70
    # The acceptance gate: >= 5x end-to-end vs the naive re-execute
    # path (ISSUE 1 criterion), cold cache included.
    assert comparison.speedup_cold >= MIN_SPEEDUP
    assert comparison.speedup_cached >= MIN_SPEEDUP
    # Honest win over the actual pre-refactor pipeline too (which
    # already reused the deterministic run across protocol repeats).
    # The margin grows with scale factor as execution dominates
    # playback (~1.4x at the SF 0.01 smoke size, ~3.7x at SF 0.05),
    # so the hard gate is only "strictly faster".
    assert comparison.speedup_vs_prerefactor > 1.0
