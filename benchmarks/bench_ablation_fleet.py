"""Ablation: global consolidation vs the local PVC saving.

Section 2 of the paper lists global levers (higher utilization, turning
servers off) alongside the local ones it contributes.  This bench puts
numbers on both, using the same calibrated machine: fleet-level
consolidation savings across load levels, versus the local PVC setting-A
saving on a single busy server -- showing the two compose rather than
compete.
"""

import pytest

from repro.core.fleet import Fleet, ServerSpec, server_from_sut
from repro.core.pvc.sweep import PvcSweep
from repro.hardware.cpu import PvcSetting, VoltageDowngrade
from repro.measurement.report import ComparisonTable
from repro.workloads.tpch.queries import q5_paper_workload

LOADS = [1.0, 2.0, 4.0, 6.0]


def run_fleet_ablation(runner):
    base = server_from_sut(runner.sut)
    fleet = Fleet([
        ServerSpec(f"node{i}", base.idle_wall_w, base.busy_wall_w,
                   base.sleep_wall_w)
        for i in range(8)
    ])
    consolidation = {
        load: fleet.consolidation_saving(load) for load in LOADS
    }
    sweep = PvcSweep(runner, q5_paper_workload())
    stock = sweep.measure_at(PvcSetting())
    setting_a = sweep.measure_at(PvcSetting(5, VoltageDowngrade.MEDIUM))
    pvc_saving = 1.0 - setting_a.energy_j / stock.energy_j
    return consolidation, pvc_saving


def test_ablation_fleet_vs_pvc(benchmark, commercial_runner):
    consolidation, pvc_saving = benchmark.pedantic(
        run_fleet_ablation, args=(commercial_runner,),
        rounds=1, iterations=1,
    )
    table = ComparisonTable(
        "Global consolidation saving vs local PVC saving"
    )
    for load, saving in consolidation.items():
        table.add(f"consolidation saving at load {load:.0f}/8", None,
                  saving)
    table.add("PVC setting-A CPU saving (local)", 0.49, pvc_saving)
    table.print()

    # Consolidation dominates at low fleet load and decays with load.
    savings = [consolidation[load] for load in LOADS]
    assert savings == sorted(savings, reverse=True)
    assert savings[0] > 0.5
    assert savings[-1] == pytest.approx(0.0, abs=0.05)
    # The local PVC saving is the paper's ~49% and applies to whichever
    # servers stay awake.
    assert pvc_saving == pytest.approx(0.49, abs=0.03)
