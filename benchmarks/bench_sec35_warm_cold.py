"""Section 3.5: CPU vs disk energy on warm and cold runs.

Paper numbers (SF 1.0, ten-query Q5 workload on the commercial DBMS):
warm 48.5 s, CPU 1228.7 J, disk 214.7 J (disk ~1/6 of CPU); cold (after
reboot) 156 s, CPU 2146.0 J, disk 1135.4 J (disk more than half of CPU).
"""

import pytest

from repro.calibration import targets
from repro.measurement.report import ComparisonTable
from repro.workloads.tpch.queries import q5_paper_workload


def run_warm_cold(runner):
    queries = q5_paper_workload()
    runner.db.cool()
    cold = runner.run_queries(queries).total
    warm = runner.run_queries(queries).total  # pool is now hot
    return warm, cold


def test_sec35_warm_vs_cold(benchmark, commercial_runner, bench_sf):
    warm, cold = benchmark.pedantic(
        run_warm_cold, args=(commercial_runner,), rounds=1, iterations=1
    )
    sf = bench_sf
    table = ComparisonTable(
        "Sec 3.5: warm vs cold runs (extrapolated to SF 1.0)"
    )
    table.add("warm seconds", targets.COMMERCIAL_STOCK_SECONDS,
              warm.duration_s / sf, unit="s")
    table.add("warm CPU joules", targets.COMMERCIAL_STOCK_CPU_JOULES,
              warm.cpu_joules / sf, unit="J")
    table.add("warm disk joules", targets.WARM_DISK_JOULES,
              warm.disk_joules / sf, unit="J")
    table.add("cold seconds", targets.COLD_RUN_SECONDS,
              cold.duration_s / sf, unit="s")
    table.add("cold CPU joules", targets.COLD_CPU_JOULES,
              cold.cpu_joules / sf, unit="J")
    table.add("cold disk joules", targets.COLD_DISK_JOULES,
              cold.disk_joules / sf, unit="J")
    table.add("disk/CPU energy, warm",
              targets.WARM_DISK_JOULES / targets.COMMERCIAL_STOCK_CPU_JOULES,
              warm.disk_joules / warm.cpu_joules)
    table.add("disk/CPU energy, cold",
              targets.COLD_DISK_JOULES / targets.COLD_CPU_JOULES,
              cold.disk_joules / cold.cpu_joules)
    table.print()

    # Warm: disk ~ 1/6 of CPU energy.
    assert warm.disk_joules / warm.cpu_joules == pytest.approx(
        1 / 6, abs=0.05
    )
    # Cold: ~3x longer, disk more than half the CPU energy.
    assert cold.duration_s / warm.duration_s == pytest.approx(3.2, abs=0.4)
    assert cold.disk_joules > 0.5 * cold.cpu_joules
    for paper, measured in (
        (targets.COLD_CPU_JOULES, cold.cpu_joules / sf),
        (targets.COLD_DISK_JOULES, cold.disk_joules / sf),
    ):
        assert measured == pytest.approx(
            paper, rel=targets.WARMCOLD_REL_TOLERANCE
        )
