"""Ablation: replicated shards, quorum consolidation, recovery (ISSUE 9).

The placement layer partitions lineitem into hash shards with k
replicas chained across the fleet; routers see only the owning replica
sets and quorum-aware consolidation never sleeps the last awake holder
of a shard.  This bench runs the canonical replication fault plan -- a
straggler window on node00, a crash that kills it mid-batch (taking a
replica of every shard it held and triggering re-replication copy
traffic billed on both endpoints), and a transient unavailability
window -- over the same Poisson stream in two fleet modes: always-awake
spread (round-robin over each statement's replica set) and dynamic
consolidation under the quorum constraint.  The result is appended to
``BENCH_perf.json`` under ``replication``.

Gates (PR acceptance criteria):

* the crash genuinely bit the placement: >= 1 re-replication copy in
  both modes, with copy seconds and joules billed on the report;
* replication is restored: every shard is back at (or above) its
  replica target on live nodes by the end of the run;
* quorum-aware consolidation spends no more energy than always-awake
  spread at the equal SLA-miss budget (1% of arrivals) while the crash
  and its copy traffic are in flight;
* no query is silently lost: every arrival is served exactly once or
  visibly dead-lettered, in both modes.

Smoke configuration: ``REPRO_BENCH_REPLICATION_ARRIVALS`` shrinks the
stream for CI; ``REPRO_TRACE_CACHE`` persists compiled traces across
benchmark processes.
"""

from repro.measurement.perf import run_replication_ablation
from repro.measurement.report import ComparisonTable


def test_replication_ablation(
    benchmark, lineitem_runner, bench_sf, bench_trace_cache,
    bench_artifact,
):
    ablation = benchmark.pedantic(
        run_replication_ablation,
        args=(lineitem_runner.db,),
        kwargs=dict(scale_factor=bench_sf,
                    trace_cache=bench_trace_cache),
        rounds=1, iterations=1,
    )

    table = ComparisonTable(
        f"replication: {ablation.arrivals} arrivals over "
        f"{ablation.nodes} nodes ({ablation.shards} shards x "
        f"{ablation.replicas} replicas, quorum {ablation.quorum})"
    )
    for name, stats in ablation.modes.items():
        f = stats["faults"]
        table.add(f"{name}: energy (J)", None, stats["wall_joules"],
                  unit="J")
        table.add(f"{name}: SLA misses", None,
                  float(stats["sla_misses"]))
        table.add(f"{name}: re-replications", None,
                  float(f["re_replications"]))
        table.add(f"{name}: copy work (J)", None, f["copy_joules"],
                  unit="J")
        table.add(f"{name}: min live holders", None,
                  float(stats["min_live_holders"]))
    table.add("consolidate vs spread saving", None,
              ablation.consolidate_vs_spread_saving)
    table.print()

    bench_artifact({"replication": ablation.to_dict()})

    # The crash genuinely bit the placement: shard copies happened and
    # were billed on both endpoints.
    assert ablation.re_replicated
    for name, stats in ablation.modes.items():
        assert stats["faults"]["crashes"] >= 1, name
        assert stats["faults"]["copy_joules"] > 0.0, name
        assert stats["faults"]["copy_s"] > 0.0, name
    # Recovery: every shard is back at its replica target on live
    # nodes by the end of the run.
    assert ablation.restored
    # Conservation: nothing silently lost in either mode.
    assert ablation.conserved
    for name, stats in ablation.modes.items():
        assert stats["served"] + stats["shed"] == ablation.arrivals, name
        assert stats["shed"] == stats["faults"]["dead_lettered"], name
    # The acceptance gate: quorum-aware consolidation spends no more
    # than spread at the equal SLA-miss budget while re-replication is
    # in flight.
    assert ablation.consolidate_beats_spread
    assert ablation.consolidate_vs_spread_saving >= 0.0
