"""Ablation: FSB underclocking vs p-state (multiplier) capping.

Section 3 of the paper argues underclocking is the better mechanism:
it modulates frequency at a finer granularity *and* retains all
SpeedStep transition states, whereas capping deletes the top states.
This bench quantifies both claims on the MySQL Q5 workload and compares
the energy/time tradeoffs available to each mechanism.
"""

from repro.core.pvc.sweep import PvcSweep
from repro.hardware.cpu import Cpu, PvcSetting
from repro.hardware.dvfs import (
    CappedGovernor,
    UtilizationGovernor,
    frequency_steps_hz,
)
from repro.measurement.report import ComparisonTable
from repro.workloads.tpch.queries import q5_paper_workload


def run_capping_ablation(runner):
    sut = runner.sut
    queries = q5_paper_workload()
    sweep = PvcSweep(runner, queries)
    baseline = sweep.measure_at(PvcSetting())

    # Underclocking branch: 5% FSB cut, all p-states retained.
    under = sweep.measure_at(PvcSetting(5))

    # Capping branch: limit the multiplier to 8 (next step down).
    original = sut.governor
    sut.governor = CappedGovernor(max_multiplier=8)
    try:
        capped = sweep.measure_at(PvcSetting())
    finally:
        sut.governor = original

    cpu = Cpu(sut.cpu_spec)
    states_stock = len(frequency_steps_hz(cpu, UtilizationGovernor()))
    states_under = len(frequency_steps_hz(
        Cpu(sut.cpu_spec, PvcSetting(5)), UtilizationGovernor()
    ))
    states_capped = len(frequency_steps_hz(
        cpu, CappedGovernor(max_multiplier=8)
    ))
    return {
        "baseline": baseline,
        "underclock": under,
        "capped": capped,
        "states": (states_stock, states_under, states_capped),
        "top_hz": (
            max(frequency_steps_hz(cpu, UtilizationGovernor())),
            max(frequency_steps_hz(
                Cpu(sut.cpu_spec, PvcSetting(5)), UtilizationGovernor()
            )),
            max(frequency_steps_hz(cpu, CappedGovernor(max_multiplier=8))),
        ),
    }


def test_ablation_capping_vs_underclocking(benchmark, mysql_runner):
    out = benchmark.pedantic(
        run_capping_ablation, args=(mysql_runner,), rounds=1, iterations=1
    )
    base = out["baseline"]
    table = ComparisonTable(
        "Ablation: 5% underclock vs multiplier cap at 8 (MySQL Q5)"
    )
    table.add("p-states stock", 4, out["states"][0])
    table.add("p-states underclocked", 4, out["states"][1])
    table.add("p-states capped", None, out["states"][2])
    stock_top, under_top, capped_top = out["top_hz"]
    table.add("frequency step, underclock (MHz)", None,
              (stock_top - under_top) / 1e6)
    table.add("frequency step, cap (MHz)", None,
              (stock_top - capped_top) / 1e6)
    for name in ("underclock", "capped"):
        point = out[name]
        table.add(f"{name} time ratio", None, point.time_s / base.time_s)
        table.add(f"{name} energy ratio", None,
                  point.energy_j / base.energy_j)
    table.print()

    # Underclocking keeps all transition states; capping deletes one.
    assert out["states"][1] == out["states"][0]
    assert out["states"][2] < out["states"][0]
    # Underclocking's frequency step is finer than one multiplier notch.
    assert (stock_top - under_top) < (stock_top - capped_top)
    # Consequently the cap costs more response time on a CPU-bound run.
    assert (
        out["capped"].time_s / base.time_s
        > out["underclock"].time_s / base.time_s
    )
