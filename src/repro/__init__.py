"""ecoDB reproduction: energy-aware query processing (Lang & Patel, CIDR 2009).

The package reproduces the paper's two mechanisms for trading energy for
performance in a DBMS, on top of fully simulated substrates:

* **PVC** -- processor voltage/frequency control via FSB underclocking
  (:mod:`repro.core.pvc`) over a calibrated machine model
  (:mod:`repro.hardware`).
* **QED** -- explicit query delays with multi-query aggregation
  (:mod:`repro.core.qed`) over a from-scratch relational engine
  (:mod:`repro.db`) loaded with TPC-H-shaped data
  (:mod:`repro.workloads`).

Quickstart::

    import repro

    db = repro.tpch_database(0.05, repro.mysql_profile())
    sut = repro.default_system()
    runner = repro.WorkloadRunner(db, sut)
    sweep = repro.PvcSweep(runner, repro.q5_paper_workload())
    curve = sweep.run()
    for label, e, t, edp_delta in curve.rows():
        print(label, e, t, edp_delta)
"""

from repro.cluster import (
    ClusterMeasurement,
    ClusterSimulator,
    ConsolidateRouter,
    LeastLoadedRouter,
    MasterQueue,
    NodeSpec,
    PowerCapRouter,
    RoundRobinRouter,
    uniform_fleet,
)
from repro.core.fleet import Fleet, Placement, ServerSpec, server_from_sut
from repro.core.metrics import OperatingPoint, RatioPoint, edp, iso_edp_curve
from repro.core.pvc.adaptive import AdaptiveController, AdaptiveOutcome
from repro.core.pvc.advisor import OperatingPointAdvisor, Sla
from repro.core.pvc.controller import PvcController
from repro.core.pvc.sweep import PvcSweep
from repro.core.qed.aggregator import MergedQuery, merge_queries
from repro.core.qed.analytical import QedModel
from repro.core.qed.executor import QedComparison, QedExecutor
from repro.core.qed.policy import BatchPolicy
from repro.core.qed.provisioning import SleepingServerModel
from repro.core.qed.queue import QueryQueue
from repro.core.qed.splitter import split_result
from repro.core.theory import theoretical_edp_series
from repro.core.tradeoff import TradeoffCurve
from repro.db.engine import Database
from repro.db.plan.cost import (
    CostWeights,
    EDP_BALANCED,
    ENERGY_OPTIMAL,
    TIME_OPTIMAL,
)
from repro.db.plan.costing import PlanCoster, rank_plans
from repro.db.profiles import (
    EngineProfile,
    commercial_profile,
    mysql_profile,
    profile_by_name,
)
from repro.hardware.cpu import PvcSetting, STOCK_SETTING, VoltageDowngrade
from repro.hardware.profiles import (
    default_system,
    paper_sut,
    pvc_settings_grid,
)
from repro.hardware.system import SystemUnderTest
from repro.measurement.protocol import MeasurementProtocol
from repro.measurement.report import ComparisonTable
from repro.workloads.arrivals import (
    Arrival,
    bursty_arrivals,
    merge_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.client import ClientModel
from repro.workloads.runner import TraceCache, WorkloadRunner
from repro.workloads.selection import selection_query, selection_workload
from repro.workloads.tpch.generator import load_tpch, tpch_database
from repro.workloads.tpch.queries import (
    q1,
    q3,
    q5,
    q5_paper_workload,
    q6,
    q10,
    q12,
    q14,
    q14_promo,
    q19,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveController",
    "AdaptiveOutcome",
    "Arrival",
    "BatchPolicy",
    "ClusterMeasurement",
    "ClusterSimulator",
    "ConsolidateRouter",
    "CostWeights",
    "EDP_BALANCED",
    "ENERGY_OPTIMAL",
    "Fleet",
    "LeastLoadedRouter",
    "MasterQueue",
    "NodeSpec",
    "PlanCoster",
    "Placement",
    "PowerCapRouter",
    "RoundRobinRouter",
    "ServerSpec",
    "SleepingServerModel",
    "TIME_OPTIMAL",
    "TraceCache",
    "rank_plans",
    "server_from_sut",
    "ClientModel",
    "ComparisonTable",
    "Database",
    "EngineProfile",
    "MeasurementProtocol",
    "MergedQuery",
    "OperatingPoint",
    "OperatingPointAdvisor",
    "PvcController",
    "PvcSetting",
    "PvcSweep",
    "QedComparison",
    "QedExecutor",
    "QedModel",
    "QueryQueue",
    "RatioPoint",
    "STOCK_SETTING",
    "Sla",
    "SystemUnderTest",
    "TradeoffCurve",
    "VoltageDowngrade",
    "WorkloadRunner",
    "bursty_arrivals",
    "commercial_profile",
    "default_system",
    "edp",
    "iso_edp_curve",
    "load_tpch",
    "merge_arrivals",
    "merge_queries",
    "mysql_profile",
    "poisson_arrivals",
    "paper_sut",
    "profile_by_name",
    "pvc_settings_grid",
    "q1",
    "q10",
    "q12",
    "q14",
    "q14_promo",
    "q19",
    "q3",
    "q5",
    "q5_paper_workload",
    "q6",
    "selection_query",
    "selection_workload",
    "split_result",
    "theoretical_edp_series",
    "tpch_database",
    "uniform_arrivals",
    "uniform_fleet",
]
