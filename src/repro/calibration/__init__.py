"""Calibration targets (paper numbers) and model-fit checks."""

from repro.calibration import targets

__all__ = ["targets"]
