"""Full-pipeline reproduction checks against the paper's numbers.

Each function runs the *actual* stack (SQL -> plan -> execute -> counters
-> trace -> simulated machine) at a small scale factor and returns
paper-vs-measured rows.  The calibration tests assert the residuals;
EXPERIMENTS.md records them.  Ratios are scale-invariant by
construction (all work quantities scale linearly with data size and the
memory limits scale along), so a small scale factor reproduces the
paper-scale ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import targets
from repro.core.qed.executor import QedExecutor
from repro.db.profiles import commercial_profile, mysql_profile
from repro.hardware.cpu import PvcSetting, STOCK_SETTING, VoltageDowngrade
from repro.hardware.profiles import paper_sut
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_workload
from repro.workloads.tpch.generator import tpch_database
from repro.workloads.tpch.queries import Q5_TABLES, q5_paper_workload


@dataclass(frozen=True)
class Residual:
    label: str
    paper: float
    measured: float

    @property
    def abs_error(self) -> float:
        return abs(self.measured - self.paper)

    @property
    def rel_error(self) -> float:
        return self.abs_error / abs(self.paper) if self.paper else 0.0


def pvc_residuals(profile_name: str, scale_factor: float = 0.02,
                  seed: int = 0) -> list[Residual]:
    """Energy/time ratio residuals for the Fig. 1-3 PVC sweep."""
    if profile_name == "commercial":
        profile = commercial_profile(scale_factor)
        time_target = targets.commercial_time_ratio
    else:
        profile = mysql_profile()
        time_target = targets.mysql_time_ratio
    db = tpch_database(scale_factor, profile, seed=seed, tables=Q5_TABLES)
    db.warm()
    sut = paper_sut()
    runner = WorkloadRunner(db, sut)
    queries = q5_paper_workload()
    sut.apply_setting(STOCK_SETTING)
    base = runner.run_queries(queries).total
    residuals: list[Residual] = []
    for downgrade in (VoltageDowngrade.SMALL, VoltageDowngrade.MEDIUM):
        for pct in (5, 10, 15):
            sut.apply_setting(PvcSetting(pct, downgrade))
            run = runner.run_queries(queries).total
            residuals.append(Residual(
                f"{profile_name} {downgrade.value} {pct}% energy",
                targets.energy_ratio_target(
                    profile_name, downgrade.value, pct
                ),
                run.cpu_joules / base.cpu_joules,
            ))
            residuals.append(Residual(
                f"{profile_name} {downgrade.value} {pct}% time",
                time_target(pct),
                run.duration_s / base.duration_s,
            ))
    sut.apply_setting(STOCK_SETTING)
    return residuals


def commercial_absolute_residuals(scale_factor: float = 0.02,
                                  seed: int = 0) -> list[Residual]:
    """Stock commercial magnitudes (time, CPU J, disk J), SF-normalized."""
    db = tpch_database(
        scale_factor, commercial_profile(scale_factor), seed=seed,
        tables=Q5_TABLES,
    )
    db.warm()
    sut = paper_sut()
    runner = WorkloadRunner(db, sut)
    run = runner.run_queries(q5_paper_workload()).total
    return [
        Residual("stock workload seconds",
                 targets.COMMERCIAL_STOCK_SECONDS,
                 run.duration_s / scale_factor),
        Residual("stock CPU joules",
                 targets.COMMERCIAL_STOCK_CPU_JOULES,
                 run.cpu_joules / scale_factor),
        Residual("stock disk joules",
                 targets.WARM_DISK_JOULES,
                 run.disk_joules / scale_factor),
    ]


def warm_cold_residuals(scale_factor: float = 0.02,
                        seed: int = 0) -> list[Residual]:
    """Section 3.5 warm/cold run magnitudes, SF-normalized."""
    db = tpch_database(
        scale_factor, commercial_profile(scale_factor), seed=seed,
        tables=Q5_TABLES,
    )
    sut = paper_sut()
    runner = WorkloadRunner(db, sut)
    queries = q5_paper_workload()
    db.cool()
    cold = runner.run_queries(queries).total
    warm = runner.run_queries(queries).total  # pool warmed by cold run
    return [
        Residual("warm seconds", targets.COMMERCIAL_STOCK_SECONDS,
                 warm.duration_s / scale_factor),
        Residual("warm CPU joules", targets.COMMERCIAL_STOCK_CPU_JOULES,
                 warm.cpu_joules / scale_factor),
        Residual("warm disk joules", targets.WARM_DISK_JOULES,
                 warm.disk_joules / scale_factor),
        Residual("cold seconds", targets.COLD_RUN_SECONDS,
                 cold.duration_s / scale_factor),
        Residual("cold CPU joules", targets.COLD_CPU_JOULES,
                 cold.cpu_joules / scale_factor),
        Residual("cold disk joules", targets.COLD_DISK_JOULES,
                 cold.disk_joules / scale_factor),
    ]


def qed_residuals(scale_factor: float = 0.05, seed: int = 0,
                  batch_sizes: tuple[int, ...] = (35, 40, 45, 50),
                  ) -> list[Residual]:
    """Figure 6 energy/response ratio residuals.

    Unlike the PVC ratios, QED ratios carry per-query fixed overheads
    (statement setup, client round trip) that do not scale with data
    size, so very small scale factors flatter QED.  SF 0.05 keeps the
    overhead share within a percent of the paper's SF 0.5 while staying
    fast enough for CI.
    """
    db = tpch_database(scale_factor, mysql_profile(), seed=seed,
                       tables=["lineitem"])
    executor = QedExecutor(WorkloadRunner(db, paper_sut()))
    residuals: list[Residual] = []
    for n in batch_sizes:
        comparison = executor.compare(selection_workload(n).queries)
        e_delta, r_delta, _ = targets.QED_POINTS[n]
        residuals.append(Residual(
            f"qed batch {n} energy ratio", 1.0 + e_delta,
            comparison.energy_ratio,
        ))
        residuals.append(Residual(
            f"qed batch {n} response ratio", 1.0 + r_delta,
            comparison.response_ratio,
        ))
    return residuals


def table1_residuals() -> list[Residual]:
    """Table 1 buildup wall watts."""
    sut = paper_sut()
    residuals = [Residual(
        targets.TABLE1_ROWS[0].description,
        targets.TABLE1_ROWS[0].watts,
        sut.soft_off_wall_power_w(),
    )]
    for row in targets.TABLE1_ROWS[1:]:
        residuals.append(Residual(
            row.description, row.watts,
            sut.idle_wall_power_w(
                with_cpu=row.with_cpu,
                dimm_count=row.dimm_count,
                with_gpu=row.with_gpu,
                with_disk=False,
            ),
        ))
    return residuals


def fig5_residuals() -> list[Residual]:
    """Figure 5 random-access improvement factors over 4 KB blocks."""
    sut = paper_sut()
    base = sut.disk.throughput_bps(4096, sequential=False)
    residuals = []
    for block, factor in targets.FIG5_RANDOM_IMPROVEMENT.items():
        measured = sut.disk.throughput_bps(block, sequential=False) / base
        residuals.append(Residual(
            f"random {block // 1024}KB improvement", factor, measured
        ))
    return residuals


def headline_residuals(scale_factor: float = 0.02) -> list[Residual]:
    """The abstract's headline numbers for both PVC profiles."""
    out: list[Residual] = []
    for profile_name, (e_delta, t_delta) in targets.PVC_HEADLINES.items():
        rows = pvc_residuals(profile_name, scale_factor)
        for r in rows:
            if r.label.endswith("medium 5% energy"):
                out.append(Residual(
                    f"{profile_name} headline energy", 1.0 + e_delta,
                    r.measured,
                ))
            if r.label.endswith("medium 5% time"):
                out.append(Residual(
                    f"{profile_name} headline time", 1.0 + t_delta,
                    r.measured,
                ))
    return out
