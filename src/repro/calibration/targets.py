"""Every number the paper reports, as calibration targets.

This module is the single source of truth for paper-reported values.
The calibrated hardware profile inverts some of them (PVC effective
voltages); the benchmarks print paper-vs-measured against them; the
calibration tests assert the full simulated pipeline reproduces them
within documented tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass

# --------------------------------------------------------------------------
# Section 3.2 / Table 1: system power breakdown (wall watts).
# Rows follow the paper's buildup order.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    description: str
    watts: float
    with_system_on: bool
    with_cpu: bool
    dimm_count: int
    with_gpu: bool


TABLE1_ROWS: list[Table1Row] = [
    Table1Row("PSU + MOBO, system off", 9.2, False, False, 0, False),
    Table1Row("PSU + MOBO, system on", 20.1, True, False, 0, False),
    Table1Row("+ CPU (with fan)", 49.7, True, True, 0, False),
    Table1Row("+ 1G RAM", 54.0, True, True, 1, False),
    Table1Row("+ 2G RAM", 55.7, True, True, 2, False),
    Table1Row("+ GPU", 69.3, True, True, 2, True),
]

#: PSU efficiency the paper estimates at the system's ~20% load (Sec. 3.2).
PSU_EFFICIENCY_AT_20PCT = 0.83

#: "CPU power consumption ... is often about 25% of the overall system
#: power consumption" while running experiments (Sec. 3.2).
CPU_FRACTION_OF_SYSTEM_POWER = 0.25

# --------------------------------------------------------------------------
# Section 3.3 / Figures 1-3: PVC sweep.
# Settings are (underclock %, downgrade); deltas are relative to stock.
# --------------------------------------------------------------------------

#: Stock commercial-DBMS workload: ten TPC-H Q5 queries (Fig. 1).
COMMERCIAL_STOCK_SECONDS = 48.5
COMMERCIAL_STOCK_CPU_JOULES = 1228.7

#: EDP change vs stock per DBMS profile and downgrade (Figs. 2 and 3 text).
EDP_DELTAS: dict[tuple[str, str], dict[int, float]] = {
    ("commercial", "small"): {5: -0.30, 10: -0.22, 15: -0.15},
    ("commercial", "medium"): {5: -0.47, 10: -0.38, 15: -0.23},
    ("mysql", "small"): {5: -0.07, 10: -0.004, 15: +0.09},
    ("mysql", "medium"): {5: -0.16, 10: -0.08, 15: 0.00},
}

#: Headline PVC numbers (abstract): (energy delta, time delta).
PVC_HEADLINES = {
    "commercial": (-0.49, +0.03),   # 5% underclock, medium downgrade
    "mysql": (-0.20, +0.06),        # 5% underclock, medium downgrade
}

#: Fraction of stock wall time the commercial workload spends CPU-busy;
#: chosen so the commercial 5%-underclock time penalty is the paper's +3%
#: (0.6/0.95 + 0.4 = 1.0316).  The MySQL memory-engine workload is fully
#: CPU-bound (time ratio 1/(1-u): +5.3%, the paper's "+6%").
COMMERCIAL_BUSY_FRACTION = 0.60

#: System-level energy drop at setting A (5% medium), Sec. 3.3.
SYSTEM_ENERGY_DROP_AT_A = -0.06


def commercial_time_ratio(underclock_pct: float,
                          busy_fraction: float = COMMERCIAL_BUSY_FRACTION,
                          ) -> float:
    """Expected commercial-workload time ratio at an underclock level."""
    scale = 1.0 - underclock_pct / 100.0
    return busy_fraction / scale + (1.0 - busy_fraction)


def mysql_time_ratio(underclock_pct: float) -> float:
    """Expected CPU-bound (MySQL memory engine) time ratio."""
    return 1.0 / (1.0 - underclock_pct / 100.0)


def energy_ratio_target(profile: str, downgrade: str,
                        underclock_pct: int) -> float:
    """Energy ratio implied by the paper's EDP delta and time model."""
    edp_ratio = 1.0 + EDP_DELTAS[(profile, downgrade)][underclock_pct]
    if profile == "mysql":
        time_ratio = mysql_time_ratio(underclock_pct)
    else:
        time_ratio = commercial_time_ratio(underclock_pct)
    return edp_ratio / time_ratio


# --------------------------------------------------------------------------
# Section 3.5: disk energy.
# --------------------------------------------------------------------------

#: Warm run (same workload as Fig. 1): CPU 1228.7 J, disk 214.7 J in 48.5 s.
WARM_DISK_JOULES = 214.7
#: Cold run after reboot: ~3x longer; CPU 2146.0 J, disk 1135.4 J in 156 s.
COLD_RUN_SECONDS = 156.0
COLD_CPU_JOULES = 2146.0
COLD_DISK_JOULES = 1135.4

#: Figure 5 microbenchmark: read 1.6 GB of a 4 GB file.
FIG5_TOTAL_BYTES = 1.6e9
FIG5_BLOCK_SIZES = [4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024]
#: Random-access throughput/energy improvement over the 4 KB block size
#: ("about 1.88 times", "approximately 3.5 and 6 times").
FIG5_RANDOM_IMPROVEMENT = {8 * 1024: 1.88, 16 * 1024: 3.5, 32 * 1024: 6.0}

# --------------------------------------------------------------------------
# Section 4 / Figure 6: QED.
# --------------------------------------------------------------------------

#: Batch size -> (energy delta, avg response-time delta, EDP delta).
#: 45 is shown in Fig. 6 but not quoted; interpolated targets are marked
#: by ``None`` EDP.  The batch-50 point is the abstract's headline
#: (-54% energy, +43% response time).
QED_POINTS: dict[int, tuple[float, float, float | None]] = {
    35: (-0.46, +0.52, -0.18),
    40: (-0.51, +0.50, -0.26),
    45: (-0.525, +0.465, None),
    50: (-0.54, +0.43, None),
}

QED_BATCH_SIZES = [35, 40, 45, 50]
#: The selection workload: 2% selectivity per query on l_quantity, which
#: is uniform over 50 integer values; TPC-H scale factor 0.5.
QED_SELECTIVITY = 0.02
QED_DISTINCT_QUANTITIES = 50
QED_SCALE_FACTOR = 0.5

# --------------------------------------------------------------------------
# Tolerances for the reproduction tests (absolute, on ratios).
# --------------------------------------------------------------------------

PVC_RATIO_TOLERANCE = 0.04
QED_RATIO_TOLERANCE = 0.09
TABLE1_WATTS_TOLERANCE = 0.6
FIG5_IMPROVEMENT_REL_TOLERANCE = 0.12
WARMCOLD_REL_TOLERANCE = 0.12
