"""Energy/performance metrics: EDP, operating points, iso-EDP curves.

The paper's central metric is the Energy Delay Product (EDP = Joules x
seconds).  In the ratio plane of Figures 2/3 (energy ratio on X,
response-time ratio on Y, stock at (1,1)), constant-EDP points satisfy
``t = 1/e``; operating points *below* that curve are "interesting" --
they save a larger share of energy than they cost in time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import PvcSetting


def edp(energy_j: float, time_s: float) -> float:
    """Energy Delay Product."""
    if energy_j < 0 or time_s < 0:
        raise ValueError("energy and time must be non-negative")
    return energy_j * time_s


@dataclass(frozen=True)
class OperatingPoint:
    """One measured configuration: a label/setting plus time and energy."""

    label: str
    time_s: float
    energy_j: float
    setting: PvcSetting | None = None

    def __post_init__(self) -> None:
        if self.time_s <= 0 or self.energy_j < 0:
            raise ValueError("time must be positive, energy non-negative")

    @property
    def edp(self) -> float:
        return edp(self.energy_j, self.time_s)

    def ratios_vs(self, base: "OperatingPoint") -> "RatioPoint":
        return RatioPoint(
            label=self.label,
            time_ratio=self.time_s / base.time_s,
            energy_ratio=(
                self.energy_j / base.energy_j if base.energy_j else 0.0
            ),
            setting=self.setting,
        )


@dataclass(frozen=True)
class RatioPoint:
    """An operating point normalized to the stock/baseline point."""

    label: str
    time_ratio: float
    energy_ratio: float
    setting: PvcSetting | None = None

    @property
    def edp_ratio(self) -> float:
        return self.time_ratio * self.energy_ratio

    @property
    def edp_delta(self) -> float:
        """Fractional EDP change vs baseline (negative = improvement)."""
        return self.edp_ratio - 1.0

    @property
    def below_iso_edp(self) -> bool:
        """True when the point beats the constant-EDP curve ("interesting")."""
        return self.edp_ratio < 1.0

    @property
    def energy_delta(self) -> float:
        return self.energy_ratio - 1.0

    @property
    def time_delta(self) -> float:
        return self.time_ratio - 1.0

    def iso_edp_distance(self) -> float:
        """Signed EDP gap to the iso-EDP curve (negative = below it).

        The paper eyeballs this as "the shortest distance from the data
        point to the EDP curve"; the EDP-ratio gap is the scale-free
        equivalent.
        """
        return self.edp_ratio - 1.0


def iso_edp_curve(energy_ratios: list[float]) -> list[tuple[float, float]]:
    """(energy ratio, time ratio) samples of the constant-EDP curve."""
    points = []
    for e in energy_ratios:
        if e <= 0:
            raise ValueError("energy ratios must be positive")
        points.append((e, 1.0 / e))
    return points


def pareto_front(points: list[RatioPoint]) -> list[RatioPoint]:
    """Points not dominated in (time, energy) -- lower is better in both."""
    front: list[RatioPoint] = []
    for p in points:
        dominated = any(
            (q.time_ratio <= p.time_ratio and q.energy_ratio <= p.energy_ratio
             and (q.time_ratio < p.time_ratio
                  or q.energy_ratio < p.energy_ratio))
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.energy_ratio)
