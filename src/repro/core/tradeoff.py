"""Energy/performance tradeoff curves (the paper's Figure 1 object).

A :class:`TradeoffCurve` is a baseline operating point plus alternative
points (e.g. the PVC settings sweep).  It answers the paper's two
framing questions: "how does a system generate graphs as in Figure 1?"
(run the sweep and collect points) and "how can such a graph be used?"
(rank by EDP, filter by SLA -- see :mod:`repro.core.pvc.advisor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import OperatingPoint, RatioPoint, pareto_front


@dataclass
class TradeoffCurve:
    baseline: OperatingPoint
    points: list[OperatingPoint] = field(default_factory=list)

    def add(self, point: OperatingPoint) -> None:
        self.points.append(point)

    @property
    def all_points(self) -> list[OperatingPoint]:
        return [self.baseline, *self.points]

    def ratios(self) -> list[RatioPoint]:
        """All points (baseline included) normalized to the baseline."""
        return [p.ratios_vs(self.baseline) for p in self.all_points]

    def ratio_for(self, label: str) -> RatioPoint:
        for point in self.all_points:
            if point.label == label:
                return point.ratios_vs(self.baseline)
        raise KeyError(f"no operating point labelled {label!r}")

    def best_by_edp(self) -> OperatingPoint:
        return min(self.all_points, key=lambda p: p.edp)

    def interesting_points(self) -> list[RatioPoint]:
        """Points below the iso-EDP curve (better EDP than baseline)."""
        return [
            r for r in self.ratios()
            if r.below_iso_edp and r.label != self.baseline.label
        ]

    def pareto(self) -> list[RatioPoint]:
        return pareto_front(self.ratios())

    def rows(self) -> list[tuple[str, float, float, float]]:
        """(label, energy ratio, time ratio, EDP delta) table rows."""
        return [
            (r.label, r.energy_ratio, r.time_ratio, r.edp_delta)
            for r in self.ratios()
        ]
