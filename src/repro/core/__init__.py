"""The paper's contribution: PVC and QED energy/performance mechanisms."""
