"""The paper's theoretical model (Section 3.4).

Circuit power is ``P = C . V^2 . F``.  For a CPU-bound workload, time is
inversely proportional to frequency, so

    EDP = E . T = P . T^2 = C . V^2 . F . (W/F)^2 / W  ~  V^2 / F.

Figure 4 plots observed EDP against this ``V^2/F`` model and shows they
track closely; :func:`theoretical_edp_series` regenerates the model side
for any set of PVC settings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import Cpu, CpuSpec, EffectiveVoltageTable, PvcSetting


def circuit_power_w(c_eff: float, volts: float, freq_hz: float) -> float:
    """Dynamic circuit power ``C . V^2 . F``."""
    if c_eff < 0 or volts < 0 or freq_hz < 0:
        raise ValueError("model inputs must be non-negative")
    return c_eff * volts * volts * freq_hz


def edp_proportional(volts: float, freq_hz: float) -> float:
    """The quantity EDP is proportional to for CPU-bound work: V^2/F."""
    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    return volts * volts / freq_hz


def theoretical_edp_ratio(volts: float, freq_hz: float,
                          volts0: float, freq0_hz: float) -> float:
    """Model EDP relative to a baseline operating point."""
    return edp_proportional(volts, freq_hz) / edp_proportional(
        volts0, freq0_hz
    )


@dataclass(frozen=True)
class TheoryPoint:
    """One PVC setting's model quantities."""

    setting: PvcSetting
    volts: float
    freq_hz: float
    edp_ratio: float


def theoretical_edp_series(
    spec: CpuSpec,
    settings: list[PvcSetting],
    voltage_table: EffectiveVoltageTable | None = None,
) -> list[TheoryPoint]:
    """V^2/F model EDP ratios for ``settings`` (Figure 4's model series).

    Voltage/frequency are taken at the top p-state -- the paper measures
    both "nearly constant" for the CPU-bound MySQL workload because the
    memory engine keeps SpeedStep at the top state.
    """
    baseline = Cpu(spec, PvcSetting(), voltage_table)
    v0 = baseline.voltage(spec.top_pstate)
    f0 = baseline.frequency_hz(spec.top_pstate)
    points = []
    for setting in settings:
        cpu = Cpu(spec, setting, voltage_table)
        volts = cpu.voltage(spec.top_pstate)
        freq = cpu.frequency_hz(spec.top_pstate)
        points.append(TheoryPoint(
            setting=setting,
            volts=volts,
            freq_hz=freq,
            edp_ratio=theoretical_edp_ratio(volts, freq, v0, f0),
        ))
    return points
