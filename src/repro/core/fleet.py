"""Global technique: energy-aware placement across a server fleet.

The paper distinguishes *local* techniques (PVC, QED -- this repo's
focus) from *global* ones: "change the job scheduling method for the
entire system", "using techniques to turn entire servers off when not
required" (Secs. 1-2).  This module implements the simplest useful
global mechanism so the two levels can be studied together:

* ``spread`` placement -- the traditional load balancer: distribute
  load evenly, keep every server awake.
* ``consolidate`` placement -- pack load onto as few servers as
  possible (up to a utilization cap) and put the rest to sleep.

Server power follows the linear utilization model of Fan et al.
(power provisioning), which the paper cites: idle draw plus a
load-proportional term up to the busy draw.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.system import SystemUnderTest


@dataclass(frozen=True)
class ServerSpec:
    """One server's power/capacity envelope."""

    name: str
    idle_wall_w: float
    busy_wall_w: float
    sleep_wall_w: float = 3.5
    capacity: float = 1.0  # normalized throughput units

    def __post_init__(self) -> None:
        if self.idle_wall_w < 0 or self.busy_wall_w < self.idle_wall_w:
            raise ValueError("need 0 <= idle <= busy wall power")
        if self.sleep_wall_w < 0:
            raise ValueError("sleep_wall_w must be non-negative")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")

    def power_at(self, utilization: float) -> float:
        """Linear power model: idle + u * (busy - idle)."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        return self.idle_wall_w + utilization * (
            self.busy_wall_w - self.idle_wall_w
        )


def server_from_sut(sut: SystemUnderTest, name: str = "sut",
                    sleep_wall_w: float = 3.5) -> ServerSpec:
    """Derive a fleet server from the calibrated machine model."""
    idle = sut.idle_wall_power_w()
    # Busy: CPU fully loaded, disk active; reuse the idle DC breakdown
    # and swap the CPU/disk terms for their busy values.
    cpu = sut.cpu_for()
    busy_dc = (
        sut.idle_dc_power_w()
        - cpu.idle_power_w() + cpu.busy_power_w(cpu.spec.top_pstate)
        - sut.disk.spec.idle_power_w + sut.disk.spec.active_power_w
    )
    busy = sut.psu.wall_power_w(busy_dc)
    return ServerSpec(name, idle, busy, sleep_wall_w)


@dataclass(frozen=True)
class Placement:
    """Per-server utilization (servers missing from the map sleep)."""

    utilizations: dict[str, float]

    def awake_servers(self) -> list[str]:
        return sorted(self.utilizations)


class Fleet:
    """A homogeneous-or-not collection of servers."""

    def __init__(self, servers: list[ServerSpec]):
        if not servers:
            raise ValueError("a fleet needs at least one server")
        names = [s.name for s in servers]
        if len(set(names)) != len(names):
            raise ValueError("server names must be unique")
        self.servers = {s.name: s for s in servers}

    @property
    def total_capacity(self) -> float:
        return sum(s.capacity for s in self.servers.values())

    def _check_load(self, load: float) -> None:
        if load < 0:
            raise ValueError("load must be non-negative")
        if load > self.total_capacity + 1e-9:
            raise ValueError(
                f"load {load} exceeds fleet capacity {self.total_capacity}"
            )

    # -- placement policies ----------------------------------------------

    def spread(self, load: float) -> Placement:
        """Balance load evenly across every (awake) server.

        "Even" means equal *utilization*: each server takes load in
        proportion to its capacity, so heterogeneous fleets balance to
        the same duty cycle rather than the same absolute load.
        """
        self._check_load(load)
        fraction = load / self.total_capacity
        return Placement({name: fraction for name in self.servers})

    def consolidate(self, load: float,
                    utilization_cap: float = 0.85) -> Placement:
        """Pack load onto the fewest servers; the rest sleep.

        Servers are filled in order of energy efficiency at full load
        (busy watts per capacity unit), each up to ``utilization_cap``
        -- the paper's "moving to higher utilization can save energy"
        with headroom for latency.
        """
        if not 0.0 < utilization_cap <= 1.0:
            raise ValueError("utilization_cap must be in (0, 1]")
        self._check_load(load)
        if load > self.total_capacity * utilization_cap:
            # Not enough headroom: fall back to an even spread.
            return self.spread(load)
        order = sorted(
            self.servers.values(),
            key=lambda s: s.busy_wall_w / s.capacity,
        )
        remaining = load
        utilizations: dict[str, float] = {}
        for spec in order:
            if remaining <= 0:
                break
            take = min(remaining, spec.capacity * utilization_cap)
            utilizations[spec.name] = take / spec.capacity
            remaining -= take
        return Placement(utilizations)

    # -- energy accounting --------------------------------------------------

    def wall_power_w(self, placement: Placement) -> float:
        """Instantaneous fleet wall power under a placement."""
        total = 0.0
        for name, spec in self.servers.items():
            if name in placement.utilizations:
                total += spec.power_at(placement.utilizations[name])
            else:
                total += spec.sleep_wall_w
        return total

    def energy_j(self, placement: Placement, window_s: float) -> float:
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        return self.wall_power_w(placement) * window_s

    def consolidation_saving(self, load: float,
                             utilization_cap: float = 0.85) -> float:
        """Fractional power saved by consolidate vs spread at ``load``."""
        spread_w = self.wall_power_w(self.spread(load))
        packed_w = self.wall_power_w(
            self.consolidate(load, utilization_cap)
        )
        return 1.0 - packed_w / spread_w if spread_w else 0.0
