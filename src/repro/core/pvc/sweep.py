"""PVC sweep: run a workload under every setting, build the tradeoff curve.

This regenerates the paper's Figures 1-3: stock plus 5/10/15%
underclock x small/medium downgrade, each point's CPU energy and
response time becoming an :class:`OperatingPoint` on a
:class:`TradeoffCurve`.

By default the sweep uses the execute-once / replay-many pipeline: the
workload (ten TPC-H Q5 queries) is executed against the database once
for the *whole* sweep, and every operating point (and every protocol
repeat) replays the cached traces under its setting via vectorized
playback.  ``replay=False`` keeps the naive path -- re-parse, re-plan,
re-execute per point and per repeat -- which exists as the regression
baseline and for the perf benchmark's cold/cached comparison;
``replay=False, rerun_repeats=False`` reproduces the historical
execute-once-per-point pipeline exactly.

Path-identity caveat: on a *cold* disk-engine database, re-executing
genuinely changes the work (the first run warms the buffer pool), so
the full-protocol ``replay=False`` baseline measures warm-up across
its repeats while replay preserves each point's first-execution trace.
Replay is numerically identical to the historical pipeline in all
cases, and to the full protocol on the memory engine or a warmed disk
database (``db.warm()`` first) -- the configurations every figure
uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import OperatingPoint
from repro.core.pvc.controller import PvcController
from repro.core.tradeoff import TradeoffCurve
from repro.hardware.cpu import PvcSetting, STOCK_SETTING
from repro.hardware.profiles import pvc_settings_grid
from repro.measurement.protocol import MeasurementProtocol
from repro.workloads.runner import WorkloadRunner


@dataclass
class PvcSweep:
    """Sweep a workload across PVC settings."""

    runner: WorkloadRunner
    queries: list[str]
    protocol: MeasurementProtocol | None = None
    #: execute each distinct query once and replay cached traces per
    #: setting/repeat; False re-executes the workload every time.
    replay: bool = True
    #: whether protocol repeats re-invoke the workload.  None derives it
    #: from ``replay`` (replaying repeats is free; a non-replay sweep
    #: models the paper's full protocol and re-executes per repeat).
    #: ``replay=False, rerun_repeats=False`` reproduces the historical
    #: pipeline exactly: one execution per operating point, readings
    #: reused across repeats.
    rerun_repeats: bool | None = None

    def _run_workload(self):
        if self.replay:
            return self.runner.replay_queries(self.queries).total
        return self.runner.run_queries(self.queries).total

    def measure_at(self, setting: PvcSetting) -> OperatingPoint:
        """Run the workload at one setting (paper's 5-run trimmed mean)."""
        rerun = (
            not self.replay if self.rerun_repeats is None
            else self.rerun_repeats
        )
        controller = PvcController(self.runner.sut)
        with controller.applied(setting):
            if self.protocol is not None:
                sample = self.protocol.measure(
                    self._run_workload, rerun=rerun
                )
                time_s, energy_j = sample.duration_s, sample.cpu_joules
            else:
                total = self._run_workload()
                time_s, energy_j = total.duration_s, total.cpu_joules
        return OperatingPoint(
            label=setting.describe(),
            time_s=time_s,
            energy_j=energy_j,
            setting=setting,
        )

    def run(self, settings: list[PvcSetting] | None = None) -> TradeoffCurve:
        """Measure stock plus every setting; return the tradeoff curve."""
        grid = settings if settings is not None else pvc_settings_grid(
            include_stock=False
        )
        baseline = self.measure_at(STOCK_SETTING)
        curve = TradeoffCurve(baseline=baseline)
        for setting in grid:
            if setting.is_stock:
                continue
            curve.add(self.measure_at(setting))
        return curve
