"""PVC sweep: run a workload under every setting, build the tradeoff curve.

This regenerates the paper's Figures 1-3: the workload (ten TPC-H Q5
queries) is executed once per operating point -- stock plus 5/10/15%
underclock x small/medium downgrade -- and each run's CPU energy and
response time become an :class:`OperatingPoint` on a
:class:`TradeoffCurve`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import OperatingPoint
from repro.core.pvc.controller import PvcController
from repro.core.tradeoff import TradeoffCurve
from repro.hardware.cpu import PvcSetting, STOCK_SETTING
from repro.hardware.profiles import pvc_settings_grid
from repro.measurement.protocol import MeasurementProtocol
from repro.workloads.runner import WorkloadRunner


@dataclass
class PvcSweep:
    """Sweep a workload across PVC settings."""

    runner: WorkloadRunner
    queries: list[str]
    protocol: MeasurementProtocol | None = None

    def measure_at(self, setting: PvcSetting) -> OperatingPoint:
        """Run the workload at one setting (paper's 5-run trimmed mean)."""
        controller = PvcController(self.runner.sut)
        with controller.applied(setting):
            if self.protocol is not None:
                sample = self.protocol.measure(
                    lambda: self.runner.run_queries(self.queries).total
                )
                time_s, energy_j = sample.duration_s, sample.cpu_joules
            else:
                total = self.runner.run_queries(self.queries).total
                time_s, energy_j = total.duration_s, total.cpu_joules
        return OperatingPoint(
            label=setting.describe(),
            time_s=time_s,
            energy_j=energy_j,
            setting=setting,
        )

    def run(self, settings: list[PvcSetting] | None = None) -> TradeoffCurve:
        """Measure stock plus every setting; return the tradeoff curve."""
        grid = settings if settings is not None else pvc_settings_grid(
            include_stock=False
        )
        baseline = self.measure_at(STOCK_SETTING)
        curve = TradeoffCurve(baseline=baseline)
        for setting in grid:
            if setting.is_stock:
                continue
            curve.add(self.measure_at(setting))
        return curve
