"""PVC: Processor Voltage/frequency Control (paper Section 3)."""

from repro.core.pvc.advisor import OperatingPointAdvisor, Sla
from repro.core.pvc.controller import PvcController, UnstableSettingError
from repro.core.pvc.sweep import PvcSweep

__all__ = [
    "OperatingPointAdvisor",
    "PvcController",
    "PvcSweep",
    "Sla",
    "UnstableSettingError",
]
