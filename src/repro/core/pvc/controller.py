"""PVC controller: the software knob over processor voltage/frequency.

The paper's PVC mechanism drives the board's underclocking interface
(ASUS 6-Engine) from software.  :class:`PvcController` wraps a
:class:`SystemUnderTest` with apply/reset semantics, a context manager
for scoped settings, and a validity check mirroring the paper's
stability monitoring (PC Probe II warned on unstable settings; small and
medium downgrades ran warning-free).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.hardware.cpu import PvcSetting, STOCK_SETTING, VoltageDowngrade
from repro.hardware.system import SystemUnderTest

#: Settings the paper validated as stable on the test machine.
MAX_STABLE_UNDERCLOCK_PCT = 15.0
STABLE_DOWNGRADES = frozenset(
    {VoltageDowngrade.NONE, VoltageDowngrade.SMALL, VoltageDowngrade.MEDIUM}
)


class UnstableSettingError(ValueError):
    """Raised for settings outside the validated stability envelope."""


def check_stability(setting: PvcSetting) -> None:
    """Reject settings the stability monitor would warn about."""
    if setting.underclock_pct > MAX_STABLE_UNDERCLOCK_PCT:
        raise UnstableSettingError(
            f"underclock {setting.underclock_pct}% exceeds the validated "
            f"{MAX_STABLE_UNDERCLOCK_PCT}% envelope"
        )
    if setting.downgrade not in STABLE_DOWNGRADES:
        raise UnstableSettingError(
            f"downgrade {setting.downgrade!r} was not validated"
        )


class PvcController:
    """Apply PVC settings to a system under test."""

    def __init__(self, sut: SystemUnderTest, enforce_stability: bool = True):
        self.sut = sut
        self.enforce_stability = enforce_stability
        self.history: list[PvcSetting] = []

    @property
    def current(self) -> PvcSetting:
        return self.sut.setting

    def apply(self, setting: PvcSetting) -> None:
        if self.enforce_stability:
            check_stability(setting)
        self.sut.apply_setting(setting)
        self.history.append(setting)

    def reset(self) -> None:
        """Return to stock (the 'traditional operating point')."""
        self.apply(STOCK_SETTING)

    @contextmanager
    def applied(self, setting: PvcSetting):
        """Scoped setting: restores the previous setting afterwards."""
        previous = self.current
        self.apply(setting)
        try:
            yield self.sut
        finally:
            self.sut.apply_setting(previous)
            self.history.append(previous)
