"""Operating-point advisor: pick a PVC setting under an SLA.

The paper sketches how a Figure-1-style plot is *used*: "a data center
operating near peak may have no choice but to aim for the fastest query
response time.  However, when the data center is not operating at peak
capacity (which is the common case) it may have the option of using an
operating point that can save energy."  The advisor encodes exactly
that: given a tradeoff curve and a response-time ceiling, choose the
lowest-energy point; given a load level, decide whether the ceiling
applies at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import OperatingPoint, RatioPoint
from repro.core.tradeoff import TradeoffCurve


@dataclass(frozen=True)
class Sla:
    """Service-level agreement: tolerated response-time degradation."""

    max_time_increase: float  # e.g. 0.05 allows +5% response time

    def __post_init__(self) -> None:
        if self.max_time_increase < 0:
            raise ValueError("max_time_increase must be non-negative")

    @property
    def max_time_ratio(self) -> float:
        return 1.0 + self.max_time_increase

    def admits(self, point: RatioPoint) -> bool:
        return point.time_ratio <= self.max_time_ratio + 1e-12


class OperatingPointAdvisor:
    """Choose operating points from a measured tradeoff curve."""

    def __init__(self, curve: TradeoffCurve):
        self.curve = curve

    def choose(self, sla: Sla) -> OperatingPoint:
        """Lowest-energy point whose time ratio satisfies the SLA."""
        admitted: list[OperatingPoint] = []
        for point in self.curve.all_points:
            if sla.admits(point.ratios_vs(self.curve.baseline)):
                admitted.append(point)
        if not admitted:
            # The SLA admits nothing (should not happen: stock is ratio 1).
            return self.curve.baseline
        return min(admitted, key=lambda p: p.energy_j)

    def choose_for_load(self, load: float, sla: Sla,
                        peak_threshold: float = 0.85) -> OperatingPoint:
        """Load-aware policy: near peak, latency wins; otherwise save energy.

        ``load`` in [0, 1] is the current utilization of the server/data
        center.  Above ``peak_threshold`` the advisor returns the fastest
        point; below it, the SLA-constrained energy optimum.
        """
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        if load >= peak_threshold:
            return min(self.curve.all_points, key=lambda p: p.time_s)
        return self.choose(sla)

    def savings_report(self, sla: Sla) -> dict[str, float]:
        """Summary of what the chosen point saves vs stock."""
        chosen = self.choose(sla)
        ratio = chosen.ratios_vs(self.curve.baseline)
        return {
            "energy_delta": ratio.energy_delta,
            "time_delta": ratio.time_delta,
            "edp_delta": ratio.edp_delta,
        }
