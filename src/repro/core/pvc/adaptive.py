"""Mid-flight adaptation: meet a deadline while minimizing energy.

The paper: "It may also be interesting to consider cases where our
initial prediction for energy consumption are incorrect and then to
dynamically adapt our query plan midflight to meet our response time
and energy goals."  This controller adapts the *machine* mid-workload:
it starts at the most energy-efficient stable setting, measures each
query as it completes, projects the workload's finish time, and steps
the PVC setting up (faster) when the deadline is at risk or down
(cheaper) when there is ample slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cpu import PvcSetting, STOCK_SETTING, VoltageDowngrade
from repro.hardware.system import RunMeasurement
from repro.workloads.runner import WorkloadRunner

#: The adaptation ladder, fastest first.  Entry 0 is stock; deeper
#: entries save more energy at more response time (paper Figs. 1-3).
DEFAULT_LADDER = [
    STOCK_SETTING,
    PvcSetting(5, VoltageDowngrade.SMALL),
    PvcSetting(5, VoltageDowngrade.MEDIUM),
]


def ladder_step(level: int, projected_s: float, deadline_s: float,
                ladder_len: int, slack_threshold: float) -> int:
    """One hysteresis step along a PVC ladder (shared controller core).

    Behind schedule (projection past the deadline): speed up one notch
    (a faster notch also shortens the next projection).  Ample slack
    (projection under ``slack_threshold * deadline``): save energy one
    notch.  In between: hold -- the dead band is what prevents setting
    thrash.  Used by the single-machine :class:`AdaptiveController` and
    the fleet's ``AdaptivePvcRouter``.
    """
    if projected_s > deadline_s and level > 0:
        return level - 1
    if projected_s < slack_threshold * deadline_s and level < ladder_len - 1:
        return level + 1
    return level


@dataclass
class AdaptiveOutcome:
    """A workload run under adaptive control."""

    measurements: list[RunMeasurement]
    settings_used: list[PvcSetting]
    deadline_s: float

    @property
    def total_time_s(self) -> float:
        return sum(m.duration_s for m in self.measurements)

    @property
    def cpu_joules(self) -> float:
        return sum(m.cpu_joules for m in self.measurements)

    @property
    def met_deadline(self) -> bool:
        return self.total_time_s <= self.deadline_s + 1e-9

    @property
    def transitions(self) -> int:
        changes = 0
        for prev, cur in zip(self.settings_used, self.settings_used[1:]):
            if prev != cur:
                changes += 1
        return changes


@dataclass
class AdaptiveController:
    """Deadline-aware PVC control over a query workload."""

    runner: WorkloadRunner
    ladder: list[PvcSetting] = field(
        default_factory=lambda: list(DEFAULT_LADDER)
    )
    #: step down (save more) when projected finish < slack * deadline
    slack_threshold: float = 0.85

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder must not be empty")
        if not 0.0 < self.slack_threshold <= 1.0:
            raise ValueError("slack_threshold must be in (0, 1]")

    def run(self, queries: list[str], deadline_s: float
            ) -> AdaptiveOutcome:
        """Run ``queries`` adapting the setting after each completion."""
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if not queries:
            raise ValueError("workload must contain at least one query")
        sut = self.runner.sut
        level = len(self.ladder) - 1  # start at the cheapest setting
        elapsed = 0.0
        measurements: list[RunMeasurement] = []
        settings_used: list[PvcSetting] = []
        original = sut.setting
        try:
            for index, sql in enumerate(queries):
                sut.apply_setting(self.ladder[level])
                settings_used.append(self.ladder[level])
                # Execute-once / replay-many: repeated queries (and
                # repeated adaptive runs) replay their cached trace
                # under whatever setting the ladder currently selects.
                execution = self.runner.cached_execution(
                    sql, label=f"q{index}", keep_result=False
                )
                measurement = self.runner.run_execution(execution)
                measurements.append(measurement)
                elapsed += measurement.duration_s
                remaining = len(queries) - index - 1
                if remaining == 0:
                    break
                level = self._adapt(
                    level, elapsed, measurement.duration_s, remaining,
                    deadline_s,
                )
        finally:
            sut.apply_setting(original)
        return AdaptiveOutcome(measurements, settings_used, deadline_s)

    def _adapt(self, level: int, elapsed_s: float, last_query_s: float,
               remaining: int, deadline_s: float) -> int:
        """Move along the ladder based on the projected finish time."""
        projected = elapsed_s + remaining * last_query_s
        return ladder_step(level, projected, deadline_s,
                           len(self.ladder), self.slack_threshold)
