"""QED: Query Energy-efficiency by introducing Explicit Delays (Sec. 4)."""

from repro.core.qed.aggregator import (
    MergedQuery,
    NotMergeableError,
    merge_queries,
)
from repro.core.qed.analytical import QedModel, expected_or_comparisons
from repro.core.qed.executor import (
    BatchedOutcome,
    QedComparison,
    QedExecutor,
    SequentialOutcome,
)
from repro.core.qed.policy import BatchPolicy, PAPER_POLICIES
from repro.core.qed.queue import Batch, QueryQueue
from repro.core.qed.splitter import SplitOutcome, split_result

__all__ = [
    "Batch",
    "BatchPolicy",
    "BatchedOutcome",
    "MergedQuery",
    "NotMergeableError",
    "PAPER_POLICIES",
    "QedComparison",
    "QedExecutor",
    "QedModel",
    "QueryQueue",
    "SequentialOutcome",
    "SplitOutcome",
    "expected_or_comparisons",
    "merge_queries",
    "split_result",
]
