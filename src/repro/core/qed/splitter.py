"""QED result splitting (the paper's client-side "extra work").

After the aggregated query returns, the application must hand each
original query its own rows.  For the paper's workload -- equality
predicates on one column -- a hash route (value -> query) handles each
row in O(1); the general path re-evaluates each query's predicate.
The split's time and energy are charged to the client, as the paper
does ("we do this in the application logic and include the time and
energy cost").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.qed.aggregator import MergedQuery
from repro.db.exec.stats import ExprCounters
from repro.db.expr import Batch, evaluate_predicate
from repro.db.results import QueryResult
from repro.db.types import DataType


@dataclass
class SplitOutcome:
    """Per-query results recovered from the merged result."""

    results: list[QueryResult]
    rows_routed: int
    unmatched_rows: int

    @property
    def per_query_rows(self) -> list[int]:
        return [r.row_count for r in self.results]


def _result_batch(result: QueryResult) -> Batch:
    return Batch(dict(zip(result.names, result.columns)), result.row_count)


def _take(result: QueryResult, indices: np.ndarray) -> QueryResult:
    return QueryResult(
        names=list(result.names),
        columns=[col.take(indices) for col in result.columns],
    )


def split_result(merged: MergedQuery, result: QueryResult) -> SplitOutcome:
    """Partition the merged result into per-query results."""
    if merged.hash_routable:
        return _split_by_hash(merged, result)
    return _split_by_predicates(merged, result)


def _routing_array(result: QueryResult, column: str) -> np.ndarray:
    col = result.column(column)
    if col.dtype is DataType.STRING:
        return col.values()
    return col.raw()


def _routing_slots(merged: MergedQuery) -> dict[object, list[int]]:
    """value -> positions of every query routing on it (duplicate
    queries in a batch share their rows)."""
    slots: dict[object, list[int]] = {}
    for i, value in enumerate(merged.routing_values):
        slots.setdefault(value, []).append(i)
    return slots


def _split_by_hash(merged: MergedQuery, result: QueryResult
                   ) -> SplitOutcome:
    values = _routing_array(result, merged.routing_column)
    slots_of = _routing_slots(merged)
    buckets: list[list[int]] = [[] for _ in merged.routing_values]
    unmatched = 0
    for row, value in enumerate(values):
        key = value.item() if isinstance(value, np.generic) else value
        slots = slots_of.get(key)
        if slots is None:
            unmatched += 1
        else:
            for slot in slots:
                buckets[slot].append(row)
    results = [
        _take(result, np.asarray(bucket, dtype=np.int64))
        for bucket in buckets
    ]
    return SplitOutcome(
        results=results,
        rows_routed=result.row_count,
        unmatched_rows=unmatched,
    )


def _split_by_predicates(merged: MergedQuery, result: QueryResult
                         ) -> SplitOutcome:
    """General split: each query keeps the rows its predicate accepts.

    With overlapping predicates a row may belong to several queries,
    matching the semantics of running each query individually.
    """
    batch = _result_batch(result)
    counters = ExprCounters()
    claimed = np.zeros(result.row_count, dtype=bool)
    results = []
    for pred in merged.predicates:
        mask = evaluate_predicate(pred, batch, counters)
        claimed |= mask
        results.append(_take(result, np.flatnonzero(mask)))
    return SplitOutcome(
        results=results,
        rows_routed=result.row_count,
        unmatched_rows=int((~claimed).sum()),
    )


def split_cost_rows(merged: MergedQuery, result: QueryResult) -> int:
    """Rows' worth of client split work.

    Hash routing costs one lookup per merged row plus one delivery per
    query a row lands in -- with duplicate routing values a row is
    copied to every query sharing its value, so duplicates add only
    their delivery copies, never a per-predicate pass.  The general
    (predicate) path re-evaluates every query's predicate over every
    row.
    """
    if merged.hash_routable:
        slots_of = _routing_slots(merged)
        if all(len(slots) == 1 for slots in slots_of.values()):
            return result.row_count
        values = _routing_array(result, merged.routing_column)
        unique, counts = np.unique(values, return_counts=True)
        extra = 0
        for value, count in zip(unique, counts):
            key = value.item() if isinstance(value, np.generic) else value
            multiplicity = len(slots_of.get(key, ()))
            if multiplicity > 1:
                extra += int(count) * (multiplicity - 1)
        return result.row_count + extra
    return result.row_count * merged.batch_size
