"""Analytical model of QED's response-time behaviour.

The paper: "the response time degradation is most severe for the first
query in the batch, and least for the last ... the degradation for the
first query increases as the batch size increases.  A simple analytical
model can be used to capture these effects in more detail, and can be
used to consider the impact on SLAs."  This module is that model.

With single-query time ``t_q`` (scan share ``sigma``, per-query result
share ``1 - sigma``) and a batch of ``N`` non-overlapping selections:

* sequential completion of query *i*:  ``i . t_q``
* aggregated batch time:  ``T(N) = sigma_N . t_q + N . rho . t_q``
  where ``sigma_N`` models the merged scan (predicate evaluation grows
  with the short-circuit expectation) and ``rho`` is the per-query
  result handling share (transfer + split overhead).
"""

from __future__ import annotations

from dataclasses import dataclass


def expected_or_comparisons(batch_size: int, distinct: int) -> float:
    """Expected short-circuit comparisons per row for an OR chain.

    A row's value is uniform over ``distinct`` values; ``batch_size``
    disjuncts each match one value.  A row matching disjunct *i* stops
    after *i* comparisons; a non-matching row pays all of them.
    """
    if not 1 <= batch_size <= distinct:
        raise ValueError("need 1 <= batch_size <= distinct")
    n, d = batch_size, distinct
    matching = sum(i for i in range(1, n + 1)) / d   # sum i * P(match i)
    non_matching = n * (d - n) / d
    return matching + non_matching


@dataclass(frozen=True)
class QedModel:
    """Analytical QED model, parameterized by workload shape."""

    scan_share: float = 0.45        # sigma: scan fraction of t_q
    compare_share: float = 0.12     # single-predicate share of the scan
    result_share: float = 0.43      # per-query result handling in t_q
    split_overhead: float = 0.45    # split cost relative to a fetch
    distinct_values: int = 50

    def __post_init__(self) -> None:
        total = self.scan_share + self.compare_share + self.result_share
        if abs(total - 1.0) > 1e-9:
            raise ValueError("shares must sum to 1.0")

    # -- time model ----------------------------------------------------

    def batch_time(self, batch_size: int) -> float:
        """Aggregated execution time in units of t_q."""
        cmp = expected_or_comparisons(batch_size, self.distinct_values)
        scan = self.scan_share + self.compare_share * cmp
        results = batch_size * self.result_share * (1 + self.split_overhead)
        return scan + results

    def sequential_completion(self, position: int) -> float:
        """Completion of the ``position``-th query (1-based), in t_q."""
        if position < 1:
            raise ValueError("position is 1-based")
        return float(position)

    def avg_sequential_response(self, batch_size: int) -> float:
        return (batch_size + 1) / 2.0

    def response_ratio(self, batch_size: int) -> float:
        """Average QED response over average sequential response."""
        return self.batch_time(batch_size) / self.avg_sequential_response(
            batch_size
        )

    # -- per-position degradation (the paper's qualitative claims) ------

    def position_degradation(self, batch_size: int,
                             position: int) -> float:
        """QED response over sequential completion for one position."""
        return self.batch_time(batch_size) / self.sequential_completion(
            position
        )

    def first_query_degradation(self, batch_size: int) -> float:
        return self.position_degradation(batch_size, 1)

    def last_query_degradation(self, batch_size: int) -> float:
        return self.position_degradation(batch_size, batch_size)

    # -- SLA analysis ----------------------------------------------------

    def max_batch_for_sla(self, max_response_tq: float,
                          max_batch: int | None = None) -> int:
        """Largest batch whose *first* query still meets the SLA.

        ``max_response_tq`` is the tolerated response time in units of a
        single query's time.  Returns 0 when even a batch of 1 misses.
        """
        limit = max_batch if max_batch is not None else self.distinct_values
        best = 0
        for n in range(1, limit + 1):
            if self.batch_time(n) <= max_response_tq:
                best = n
            else:
                break
        return best
