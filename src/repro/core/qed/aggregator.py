"""QED multi-query aggregation: merge a batch into one disjunctive query.

The paper: "the select queries in our workload can be merged to a single
group with a disjunction of the predicates in each query."  The
aggregator parses each queued query, verifies the batch is structurally
mergeable (same select list, same table, each WHERE an equality on the
same column -- or, for the generalized path, any predicate), dedups
shared disjuncts (overlapping-predicate generalization), and renders the
merged SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.sql import ast
from repro.db.sql.parser import parse


class NotMergeableError(ValueError):
    """The batch cannot be evaluated as one aggregated query."""


#: Hashable mergeable-template identity: two queries with equal keys can
#: always join one merged batch (same select list, same table, plain
#: selection shape).  ``None`` marks a query no QED partition can hold.
PartitionKey = tuple


@dataclass(frozen=True)
class MergedQuery:
    """The aggregated query plus the routing information for splitting."""

    select: ast.Select
    #: per original query: its predicate (evaluation order preserved)
    predicates: tuple[ast.Expr, ...]
    #: equality routing: column name and per-query literal value, when
    #: every predicate is ``column = literal`` (the paper's workload)
    routing_column: str | None = None
    routing_values: tuple[object, ...] = field(default=())

    @property
    def sql(self) -> str:
        return self.select.to_sql()

    @property
    def batch_size(self) -> int:
        return len(self.predicates)

    @property
    def hash_routable(self) -> bool:
        """True when the splitter can route rows with one hash lookup."""
        return self.routing_column is not None


def _exposes_column(item: ast.SelectItem, column: str) -> bool:
    """True when the select item puts ``column`` in the result under
    its own name (``SELECT *`` exposes everything; an alias hides the
    original name from the splitter)."""
    if not isinstance(item.expr, ast.ColumnRef):
        return False
    if item.expr.name == "*":
        return True
    return item.expr.name == column and item.alias in (None, column)


def _equality_parts(pred: ast.Expr) -> tuple[str, object] | None:
    """(column, literal value) when ``pred`` is ``col = literal``."""
    if not isinstance(pred, ast.Comparison) or pred.op != "=":
        return None
    left, right = pred.left, pred.right
    if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
        left, right = right, left
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
        return left.name, right.value
    return None


def parse_batch(sqls: list[str]) -> list[ast.Select]:
    return [parse(sql) for sql in sqls]


def _shape_violation(select: ast.Select) -> str | None:
    """Why ``select`` can never join a merged batch (None: it can).

    These are exactly the per-query preconditions :func:`merge_queries`
    enforces; :func:`mergeable_key` derives partition keys from the
    same checks so a master queue can only group queries the merger
    will accept.
    """
    if (select.group_by or select.having or select.order_by
            or select.limit is not None or select.distinct):
        return "only plain select-project queries can be aggregated"
    if len(select.tables) != 1:
        return "aggregation needs single-table queries"
    if select.where is None:
        return "a query without WHERE matches all rows"
    return None


def mergeable_key(select: ast.Select) -> PartitionKey | None:
    """The query's mergeable-template identity (None: not mergeable).

    Equal keys guarantee :func:`merge_queries` accepts the batch: the
    key captures the select list and the table, and only plain
    single-table selections with a WHERE clause get one.
    """
    if _shape_violation(select) is not None:
        return None
    return (select.items, select.tables)


def partition_key(sql: str) -> PartitionKey | None:
    """Parse ``sql`` and return its mergeable-template key.

    ``None`` routes the query to a pass-through (singleton) partition:
    unparseable text, multi-table queries, and any non-plain-selection
    shape all land there rather than poisoning a merged batch.
    """
    from repro.db.errors import DatabaseError

    try:
        select = parse(sql)
    except DatabaseError:
        return None
    return mergeable_key(select)


def merge_queries(sqls: list[str]) -> MergedQuery:
    """Aggregate a batch of selections into one disjunctive query."""
    if not sqls:
        raise NotMergeableError("empty batch")
    selects = parse_batch(sqls)
    template = selects[0]
    for select in selects:
        violation = _shape_violation(select)
        if violation is not None:
            raise NotMergeableError(violation)
        if select.items != template.items:
            raise NotMergeableError("select lists differ across the batch")
        if select.tables != template.tables:
            raise NotMergeableError("tables differ across the batch")
    predicates: list[ast.Expr] = [select.where for select in selects]

    # Dedup shared disjuncts (the overlap generalization): keep the first
    # occurrence of each structurally-identical predicate.
    seen: set[ast.Expr] = set()
    unique: list[ast.Expr] = []
    for pred in predicates:
        if pred not in seen:
            seen.add(pred)
            unique.append(pred)

    merged_where = ast.or_all(unique)
    merged = ast.Select(
        items=template.items,
        tables=template.tables,
        where=merged_where,
    )

    routing_column: str | None = None
    routing_values: list[object] = []
    parts = [_equality_parts(p) for p in predicates]
    if all(p is not None for p in parts):
        columns = {p[0] for p in parts}  # type: ignore[index]
        values = [p[1] for p in parts]   # type: ignore[index]
        # Duplicate values stay hash-routable: the splitter hands a row
        # to *every* query sharing its value (identical queries in a
        # batch share their result).  Hash routing does require the
        # routing column in the result *under its own name* -- the
        # client routes on result rows, so a projected-away or aliased
        # value forces the predicate-based split.  ``SELECT *`` keeps
        # every column and stays routable.
        column = columns.pop() if len(columns) == 1 else None
        if column is not None and any(
            _exposes_column(item, column) for item in template.items
        ):
            routing_column = column
            routing_values = values

    return MergedQuery(
        select=merged,
        predicates=tuple(predicates),
        routing_column=routing_column,
        routing_values=tuple(routing_values),
    )
