"""QED multi-query aggregation: merge a batch into one disjunctive query.

The paper: "the select queries in our workload can be merged to a single
group with a disjunction of the predicates in each query."  The
aggregator parses each queued query, verifies the batch is structurally
mergeable (same select list, same table, each WHERE an equality on the
same column -- or, for the generalized path, any predicate), dedups
shared disjuncts (overlapping-predicate generalization), and renders the
merged SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.sql import ast
from repro.db.sql.parser import parse


class NotMergeableError(ValueError):
    """The batch cannot be evaluated as one aggregated query."""


@dataclass(frozen=True)
class MergedQuery:
    """The aggregated query plus the routing information for splitting."""

    select: ast.Select
    #: per original query: its predicate (evaluation order preserved)
    predicates: tuple[ast.Expr, ...]
    #: equality routing: column name and per-query literal value, when
    #: every predicate is ``column = literal`` (the paper's workload)
    routing_column: str | None = None
    routing_values: tuple[object, ...] = field(default=())

    @property
    def sql(self) -> str:
        return self.select.to_sql()

    @property
    def batch_size(self) -> int:
        return len(self.predicates)

    @property
    def hash_routable(self) -> bool:
        """True when the splitter can route rows with one hash lookup."""
        return self.routing_column is not None


def _equality_parts(pred: ast.Expr) -> tuple[str, object] | None:
    """(column, literal value) when ``pred`` is ``col = literal``."""
    if not isinstance(pred, ast.Comparison) or pred.op != "=":
        return None
    left, right = pred.left, pred.right
    if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
        left, right = right, left
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
        return left.name, right.value
    return None


def parse_batch(sqls: list[str]) -> list[ast.Select]:
    return [parse(sql) for sql in sqls]


def merge_queries(sqls: list[str]) -> MergedQuery:
    """Aggregate a batch of selections into one disjunctive query."""
    if not sqls:
        raise NotMergeableError("empty batch")
    selects = parse_batch(sqls)
    template = selects[0]
    if template.group_by or template.having or template.order_by \
            or template.limit is not None or template.distinct:
        raise NotMergeableError(
            "only plain select-project queries can be aggregated"
        )
    if len(template.tables) != 1:
        raise NotMergeableError("aggregation needs single-table queries")
    for select in selects[1:]:
        if select.items != template.items:
            raise NotMergeableError("select lists differ across the batch")
        if select.tables != template.tables:
            raise NotMergeableError("tables differ across the batch")
        if (select.group_by or select.having or select.order_by
                or select.limit is not None or select.distinct):
            raise NotMergeableError(
                "only plain select-project queries can be aggregated"
            )
    predicates: list[ast.Expr] = []
    for select in selects:
        if select.where is None:
            raise NotMergeableError("a query without WHERE matches all rows")
        predicates.append(select.where)

    # Dedup shared disjuncts (the overlap generalization): keep the first
    # occurrence of each structurally-identical predicate.
    seen: set[ast.Expr] = set()
    unique: list[ast.Expr] = []
    for pred in predicates:
        if pred not in seen:
            seen.add(pred)
            unique.append(pred)

    merged_where = ast.or_all(unique)
    merged = ast.Select(
        items=template.items,
        tables=template.tables,
        where=merged_where,
    )

    routing_column: str | None = None
    routing_values: list[object] = []
    parts = [_equality_parts(p) for p in predicates]
    if all(p is not None for p in parts):
        columns = {p[0] for p in parts}  # type: ignore[index]
        values = [p[1] for p in parts]   # type: ignore[index]
        # Hash routing needs one owner per value; overlapping batches
        # (duplicate values) fall back to predicate-based splitting.
        if len(columns) == 1 and len(set(values)) == len(values):
            routing_column = columns.pop()
            routing_values = values

    return MergedQuery(
        select=merged,
        predicates=tuple(predicates),
        routing_column=routing_column,
        routing_values=tuple(routing_values),
    )
