"""QED execution: sequential baseline vs aggregated batch (Figure 6).

Accounting follows the paper exactly:

* Both schemes are timed "from the time the batch of queries is issued
  to the database to the time the last query is returned".
* Sequential: queries run one after another; query *i* completes at the
  sum of the first *i* query times, so the average per-query response is
  about ``(N+1)/2`` times a single query.
* QED: the batch is merged into one disjunctive query; every query's
  result arrives when the merged execution *plus the client-side split*
  finishes.  Queue buildup time is not counted (the master is always
  on; the DBMS sleeps while the queue fills).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import edp
from repro.core.qed.aggregator import MergedQuery, merge_queries
from repro.core.qed.splitter import SplitOutcome, split_cost_rows, split_result
from repro.hardware.system import RunMeasurement
from repro.hardware.trace import Trace
from repro.workloads.runner import QueryExecution, WorkloadRunner


@dataclass
class SequentialOutcome:
    """The traditional scheme: one query at a time."""

    measurement: RunMeasurement
    completion_times_s: list[float]

    @property
    def batch_size(self) -> int:
        return len(self.completion_times_s)

    @property
    def total_time_s(self) -> float:
        return self.measurement.duration_s

    @property
    def cpu_joules(self) -> float:
        return self.measurement.cpu_joules

    @property
    def avg_response_s(self) -> float:
        times = self.completion_times_s
        return sum(times) / len(times)

    @property
    def energy_per_query_j(self) -> float:
        return self.cpu_joules / self.batch_size


@dataclass
class BatchedOutcome:
    """The QED scheme: one aggregated query plus a client split."""

    merged: MergedQuery
    measurement: RunMeasurement
    split: SplitOutcome

    @property
    def batch_size(self) -> int:
        return self.merged.batch_size

    @property
    def total_time_s(self) -> float:
        return self.measurement.duration_s

    @property
    def cpu_joules(self) -> float:
        return self.measurement.cpu_joules

    @property
    def avg_response_s(self) -> float:
        """Every query is answered when the batch finishes."""
        return self.total_time_s

    @property
    def energy_per_query_j(self) -> float:
        return self.cpu_joules / self.batch_size


@dataclass
class QedComparison:
    """Figure 6's datum: QED vs sequential for one batch size."""

    sequential: SequentialOutcome
    batched: BatchedOutcome

    @property
    def batch_size(self) -> int:
        return self.batched.batch_size

    @property
    def energy_ratio(self) -> float:
        return (
            self.batched.energy_per_query_j
            / self.sequential.energy_per_query_j
        )

    @property
    def response_ratio(self) -> float:
        return self.batched.avg_response_s / self.sequential.avg_response_s

    @property
    def edp_ratio(self) -> float:
        batched = edp(self.batched.energy_per_query_j,
                      self.batched.avg_response_s)
        baseline = edp(self.sequential.energy_per_query_j,
                       self.sequential.avg_response_s)
        return batched / baseline

    @property
    def energy_delta(self) -> float:
        return self.energy_ratio - 1.0

    @property
    def response_delta(self) -> float:
        return self.response_ratio - 1.0

    @property
    def edp_delta(self) -> float:
        return self.edp_ratio - 1.0

    def position_degradation(self) -> list[float]:
        """Per-queue-position response ratio (QED time / sequential
        completion).  Most severe for the first query, least for the
        last -- the paper's observation."""
        batch_time = self.batched.total_time_s
        return [
            batch_time / completion
            for completion in self.sequential.completion_times_s
        ]


def merged_batch_execution(
    runner: WorkloadRunner, merged: MergedQuery
) -> tuple[QueryExecution, Trace]:
    """Execute a merged batch and assemble its full QED work trace.

    One disjunctive execution plus the client-side split work -- the
    single place that defines what a QED batch costs, shared by
    :class:`QedExecutor` and the cluster simulator's per-node queues so
    the two accountings can never diverge.
    """
    execution = runner.cached_execution(
        merged.sql, label="qed", keep_result=True
    )
    trace = Trace(list(execution.trace.segments))
    trace.add(runner.client.split_work(
        split_cost_rows(merged, execution.result), label="qed:split"
    ))
    return execution, trace


class QedExecutor:
    """Runs the two schemes for a workload of mergeable selections."""

    def __init__(self, runner: WorkloadRunner):
        self.runner = runner

    def run_sequential(self, queries: list[str]) -> SequentialOutcome:
        # Replay path: a batch of identical (or repeated) queries
        # executes each distinct statement once and replays its trace.
        measurement = self.runner.replay_queries(queries, label="seq")
        return SequentialOutcome(
            measurement=measurement.total,
            completion_times_s=measurement.completion_times_s,
        )

    def run_batched(self, queries: list[str]) -> BatchedOutcome:
        merged = merge_queries(queries)
        execution, trace = merged_batch_execution(self.runner, merged)
        split = split_result(merged, execution.result)
        measurement = self.runner.sut.run_compiled(
            trace, self.runner.db.workload_class
        )
        return BatchedOutcome(
            merged=merged, measurement=measurement, split=split,
        )

    def compare(self, queries: list[str]) -> QedComparison:
        return QedComparison(
            sequential=self.run_sequential(queries),
            batched=self.run_batched(queries),
        )
