"""QED admission queue.

Queries arrive continuously and wait in the queue; the batch policy
decides when the accumulated batch is dispatched.  Per the paper, the
queue lives on an always-on master node, so queue wait time is *not*
counted against QED's response times -- time and energy accounting start
when the batch is sent to the DBMS.  The queue still tracks arrival and
dispatch timestamps so the analytical model can study the excluded
delays too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.qed.policy import BatchPolicy


@dataclass(frozen=True)
class QueuedQuery:
    sql: str
    arrival_s: float
    query_id: int

    def wait_at(self, now_s: float) -> float:
        return max(0.0, now_s - self.arrival_s)


@dataclass
class Batch:
    """A dispatched batch of queued queries."""

    queries: list[QueuedQuery]
    dispatch_s: float

    @property
    def size(self) -> int:
        return len(self.queries)

    @property
    def sqls(self) -> list[str]:
        return [q.sql for q in self.queries]

    def queue_waits(self) -> list[float]:
        """Time each query spent waiting before dispatch (excluded from
        the paper's response-time accounting)."""
        return [q.wait_at(self.dispatch_s) for q in self.queries]


class QueryQueue:
    """Admission queue driven by explicit timestamps (simulated time)."""

    def __init__(self, policy: BatchPolicy):
        self.policy = policy
        self._pending: list[QueuedQuery] = []
        self._next_id = 0
        self.dispatched: list[Batch] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> list[QueuedQuery]:
        return list(self._pending)

    @property
    def oldest_arrival_s(self) -> float | None:
        """Arrival time of the oldest queued query, without copying the
        pending list (peeked per arrival in the cluster event loop)."""
        return self._pending[0].arrival_s if self._pending else None

    @property
    def expiry_s(self) -> float | None:
        """When the policy's timeout fires on its own: the oldest queued
        query's arrival plus ``max_wait_s`` (None: no timeout configured
        or nothing queued).  Event loops dispatch *at* this instant so
        batch response times never absorb an inter-arrival gap."""
        if self.policy.max_wait_s is None:
            return None
        oldest = self.oldest_arrival_s
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_s

    def submit(self, sql: str, now_s: float) -> Batch | None:
        """Enqueue a query; returns a batch if the policy fires."""
        self._pending.append(QueuedQuery(sql, now_s, self._next_id))
        self._next_id += 1
        return self._maybe_dispatch(now_s)

    def tick(self, now_s: float) -> Batch | None:
        """Advance time without an arrival (timeout-based dispatch)."""
        return self._maybe_dispatch(now_s)

    def flush(self, now_s: float) -> Batch | None:
        """Dispatch whatever is queued regardless of the policy."""
        if not self._pending:
            return None
        return self._dispatch(now_s)

    def drain(self, end_s: float) -> Batch | None:
        """Flush the trailing partial batch once a stream ends.

        A timeout policy would fire on its own at the queue's expiry
        (possibly after ``end_s``: the stream ending does not stop the
        clock); a threshold-only queue is drained at ``end_s`` itself.
        Shared by the per-node and master-queue event loops so the two
        drain semantics can never diverge.
        """
        if not self._pending:
            return None
        flush_at = self.expiry_s
        if flush_at is None or flush_at < end_s:
            flush_at = end_s
        return self._dispatch(flush_at)

    def _maybe_dispatch(self, now_s: float) -> Batch | None:
        if not self._pending:
            return None
        oldest_wait = self._pending[0].wait_at(now_s)
        if self.policy.should_dispatch(len(self._pending), oldest_wait):
            return self._dispatch(now_s)
        return None

    def _dispatch(self, now_s: float) -> Batch:
        batch = Batch(queries=self._pending, dispatch_s=now_s)
        self._pending = []
        self.dispatched.append(batch)
        return batch
