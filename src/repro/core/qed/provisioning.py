"""System-level QED accounting: the sleeping-server model.

The paper's QED experiment excludes queue buildup time and assumes "the
queue of queries builds up in a master system that is always on ...
and that the DBMS machine goes to sleep when there is no work."  This
module completes that picture: given an arrival stream, a batch policy,
and measured per-batch executions, it accounts *wall* energy for the
whole window -- the DBMS machine runs only while a batch executes and
sleeps otherwise, versus the traditional always-on server processing
queries as they arrive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.system import SystemUnderTest

#: Suspend-to-RAM draw of the sleeping DBMS machine (wall watts).  ACPI
#: S3 on a desktop board of this era draws a few watts.
DEFAULT_SLEEP_WALL_W = 3.5


@dataclass(frozen=True)
class ProvisioningOutcome:
    """Whole-window wall energy for one scheme."""

    window_s: float
    busy_s: float
    active_wall_j: float
    idle_wall_j: float

    @property
    def total_wall_j(self) -> float:
        return self.active_wall_j + self.idle_wall_j

    @property
    def duty_cycle(self) -> float:
        return self.busy_s / self.window_s if self.window_s else 0.0


class SleepingServerModel:
    """Wall-energy accounting for QED's master/sleeper deployment."""

    def __init__(self, sut: SystemUnderTest,
                 sleep_wall_w: float = DEFAULT_SLEEP_WALL_W):
        if sleep_wall_w < 0:
            raise ValueError("sleep_wall_w must be non-negative")
        self.sut = sut
        self.sleep_wall_w = sleep_wall_w

    def idle_wall_w(self) -> float:
        """Wall draw of the awake-but-idle DBMS machine."""
        return self.sut.idle_wall_power_w()

    def always_on(self, window_s: float, busy_s: float,
                  active_wall_j: float) -> ProvisioningOutcome:
        """Traditional server: awake for the whole window.

        ``busy_s``/``active_wall_j`` are the executing portion (e.g. the
        sequential scheme's total run time and wall energy); the rest of
        the window idles at the machine's idle wall power.
        """
        self._check(window_s, busy_s)
        idle_s = window_s - busy_s
        return ProvisioningOutcome(
            window_s=window_s,
            busy_s=busy_s,
            active_wall_j=active_wall_j,
            idle_wall_j=idle_s * self.idle_wall_w(),
        )

    def sleep_between_batches(self, window_s: float, busy_s: float,
                              active_wall_j: float) -> ProvisioningOutcome:
        """QED deployment: the machine sleeps whenever no batch runs."""
        self._check(window_s, busy_s)
        sleep_s = window_s - busy_s
        return ProvisioningOutcome(
            window_s=window_s,
            busy_s=busy_s,
            active_wall_j=active_wall_j,
            idle_wall_j=sleep_s * self.sleep_wall_w,
        )

    @staticmethod
    def _check(window_s: float, busy_s: float) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 <= busy_s <= window_s:
            raise ValueError("busy_s must fit inside the window")

    def system_saving(self, window_s: float,
                      sequential_busy_s: float,
                      sequential_wall_j: float,
                      batched_busy_s: float,
                      batched_wall_j: float) -> float:
        """Fractional whole-window wall-energy saving of QED+sleep
        versus the always-on sequential scheme."""
        base = self.always_on(
            window_s, sequential_busy_s, sequential_wall_j
        )
        qed = self.sleep_between_batches(
            window_s, batched_busy_s, batched_wall_j
        )
        if base.total_wall_j == 0:  # repro: noqa[FLOAT-EQ]: division guard on the exact-zero degenerate window
            return 0.0
        return 1.0 - qed.total_wall_j / base.total_wall_j
