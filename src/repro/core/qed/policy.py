"""QED batching policies.

The paper's QED holds arriving queries in a queue and dispatches "when
the queue reaches a certain threshold".  :class:`BatchPolicy` adds the
practical guardrail a real deployment needs: a maximum wait so a
half-full queue still drains (the paper's SLA discussion).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BatchPolicy:
    """Dispatch when ``threshold`` queries queue up or the oldest has
    waited ``max_wait_s`` (None disables the timeout, as in the paper's
    experiments)."""

    threshold: int
    max_wait_s: float | None = None

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.max_wait_s is not None and self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")

    def should_dispatch(self, queue_length: int,
                        oldest_wait_s: float) -> bool:
        if queue_length <= 0:
            return False
        if queue_length >= self.threshold:
            return True
        if self.max_wait_s is not None and oldest_wait_s >= self.max_wait_s:
            return True
        return False


#: The paper's experimental batch sizes.
PAPER_POLICIES = [BatchPolicy(n) for n in (35, 40, 45, 50)]
