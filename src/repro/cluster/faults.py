"""Deterministic fault injection for the cluster simulator.

The paper's energy claims are measured on a fleet where every node
wakes on command and finishes every batch; aggressive consolidation is
precisely the regime where a crash or a failed wake costs the most,
because the awake set is already minimal.  This module defines the
*plan* side of the fault-and-recovery layer: a seeded
:class:`FaultPlan` composed of :class:`FaultSpec` entries that the
simulator consults at every wake/assign/playback decision, plus the
:class:`RetryPolicy` that governs how lost work re-enters the schedule.

Fault kinds
-----------
``crash``
    The node dies at ``at_s`` (optionally recovering, powered off but
    wakeable again, at ``recover_s``).  In-flight busy windows and any
    per-node queue content are lost and requeued through the retry
    policy; partial work burnt before the crash is charged to the
    ``FaultReport`` as wasted joules.
``wake-failure``
    A wake call inside ``[start_s, end_s)`` fails with ``probability``
    (1.0 = always): the node stays asleep and the router must fall
    back.  Probabilistic outcomes draw from the plan's seeded RNG, so
    runs are reproducible.
``straggler``
    Busy windows placed on the node inside ``[start_s, end_s)`` run
    ``slowdown`` times longer than costed; the stretch is modeled as
    degraded occupancy (billed at awake-idle watts in playback).
``unavailable``
    Transient unresponsiveness over ``[start_s, end_s)``: routers and
    placements skip the node, but nothing in flight is lost.

Under an active :class:`~repro.cluster.placement.PlacementMap`, a
crash additionally triggers **re-replication**: every shard the dead
node held that falls below its replication target is copied from a
live replica to a node not yet holding it, as compiled-trace work
billed in joules on *both* endpoints and reported on the run's
:class:`~repro.cluster.measure.FaultReport` (``re_replications``,
``copy_s``, ``copy_joules``).

An **empty plan injects nothing and costs nothing**: every fault hook
in the node/simulator/router layers fast-paths out without touching
the RNG or perturbing any float, so schedules and energies are
identical to a run without a plan (the identity guard in
``tests/cluster/test_faults.py``).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass

import numpy as np

#: The fault kinds a :class:`FaultSpec` may carry.
FAULT_KINDS = ("crash", "wake-failure", "straggler", "unavailable")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault on one node.

    The fields used depend on ``kind``: crashes use ``at_s`` and
    ``recover_s``; wake failures use ``probability`` over
    ``[start_s, end_s)``; stragglers use ``slowdown`` over
    ``[start_s, end_s)``; unavailability uses only the window.
    ``end_s=None`` means "until the end of the run".
    """

    kind: str
    node: str
    at_s: float = 0.0
    recover_s: float | None = None
    start_s: float = 0.0
    end_s: float | None = None
    probability: float = 1.0
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not self.node:
            raise ValueError("a fault needs a target node name")
        if self.kind == "crash":
            if self.at_s < 0:
                raise ValueError("crash at_s must be non-negative")
            if self.recover_s is not None and self.recover_s <= self.at_s:
                raise ValueError("recover_s must be after at_s")
        else:
            if self.start_s < 0:
                raise ValueError("start_s must be non-negative")
            if self.end_s is not None and self.end_s <= self.start_s:
                raise ValueError("end_s must be after start_s")
        if self.kind == "wake-failure":
            if not 0.0 < self.probability <= 1.0:
                raise ValueError("probability must be in (0, 1]")
        if self.kind == "straggler" and self.slowdown <= 1.0:
            raise ValueError("slowdown must be > 1")

    def in_window(self, t: float) -> bool:
        """Whether ``t`` falls inside the fault's active window."""
        end = math.inf if self.end_s is None else self.end_s
        return self.start_s <= t < end

    def to_dict(self) -> dict:
        """The ``--faults plan.json`` entry shape (round-trips through
        :meth:`FaultPlan.from_dict`)."""
        return asdict(self)


class FaultPlan:
    """A seeded, composable set of faults for one simulated run.

    The plan owns the run's fault RNG (wake-failure coin flips); the
    simulator calls :meth:`begin_run` before each ``schedule()`` so the
    same plan replayed over the same stream produces the same outcomes.
    Passing an external generator to :meth:`begin_run` threads one
    RNG through arrivals and faults end-to-end instead (the
    determinism-audit path); the plan then *keeps* consuming that
    stream across runs rather than reseeding.
    """

    def __init__(self, specs=(), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self._external_rng: np.random.Generator | None = None
        self._by_node: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            self._by_node.setdefault(spec.node, []).append(spec)
        self.begin_run()

    @property
    def empty(self) -> bool:
        return not self.specs

    def begin_run(self, rng: np.random.Generator | None = None) -> None:
        """Reset per-run RNG state (fresh stream unless one is shared)."""
        if rng is not None:
            self._external_rng = rng
        if self._external_rng is not None:
            self._rng = self._external_rng
        else:
            self._rng = np.random.default_rng(self.seed)

    def _for(self, node: str, kind: str) -> list[FaultSpec]:
        return [
            s for s in self._by_node.get(node, ()) if s.kind == kind
        ]

    # -- the decision hooks ------------------------------------------------

    def crashes_for(self, node: str) -> list[FaultSpec]:
        """The node's crash specs, in time order."""
        return sorted(self._for(node, "crash"), key=lambda s: s.at_s)

    def wake_attempt(self, node: str, now_s: float) -> bool:
        """Outcome of one wake call at ``now_s`` (True = success).

        Probabilistic failures draw from the plan's RNG once per
        *matching* attempt, so outcomes are deterministic given the
        call sequence -- which the simulator's event order fixes.
        """
        for spec in self._for(node, "wake-failure"):
            if not spec.in_window(now_s):
                continue
            if spec.probability >= 1.0:
                return False
            if float(self._rng.uniform()) < spec.probability:
                return False
        return True

    def slowdown(self, node: str, t: float) -> float:
        """Service-time multiplier on ``node`` at ``t`` (1.0 = healthy);
        overlapping straggler windows compound."""
        factor = 1.0
        for spec in self._for(node, "straggler"):
            if spec.in_window(t):
                factor *= spec.slowdown
        return factor

    def available(self, node: str, t: float) -> bool:
        """False inside any transient-unavailability window."""
        return not any(
            spec.in_window(t) for spec in self._for(node, "unavailable")
        )

    # -- serialization -----------------------------------------------------

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        """Build a plan from the ``--faults plan.json`` schema:
        ``{"seed": 0, "faults": [{"kind": "crash", "node": "node01",
        "at_s": 30.0}, ...]}``."""
        known = {
            "kind", "node", "at_s", "recover_s", "start_s", "end_s",
            "probability", "slowdown",
        }
        specs = []
        for i, raw in enumerate(doc.get("faults", [])):
            extra = set(raw) - known
            if extra:
                raise ValueError(
                    f"fault {i}: unknown keys {sorted(extra)}"
                )
            specs.append(FaultSpec(**raw))
        return cls(specs, seed=int(doc.get("seed", 0)))

    def to_dict(self) -> dict:
        """The plan back in its JSON schema (fingerprinting, exports)."""
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }


def load_fault_plan(path: str) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file."""
    with open(path) as handle:
        return FaultPlan.from_dict(json.load(handle))


@dataclass(frozen=True)
class RetryPolicy:
    """How lost or unplaceable queries re-enter the schedule.

    Each retry attempt waits ``backoff_s * multiplier**(attempt - 1)``
    of added queueing delay before re-dispatch; after ``max_attempts``
    failed attempts the query is dead-lettered -- shed with accounting,
    so it still counts as the hardest possible SLA miss.
    """

    max_attempts: int = 3
    backoff_s: float = 1.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.backoff_s * self.multiplier ** (attempt - 1)

    def exhausted(self, attempt: int) -> bool:
        """True once ``attempt`` retries have all failed."""
        return attempt >= self.max_attempts
