"""Master-node QED admission queue, partitioned by mergeable template.

The paper puts the admission queue on the always-on *master*, not on
the workers: every arrival in the stream queues centrally, batches form
fleet-wide, and the DBMS nodes sleep while queues fill.  This module is
that master: one :class:`MasterQueue` holds the whole arrival stream's
pending queries partitioned by **mergeable template** -- the exact
preconditions :func:`~repro.core.qed.aggregator.merge_queries` enforces
(same select list, same table, plain single-table selection with a
WHERE clause) -- so a dispatched batch is mergeable *by construction*.

Each partition runs its own
:class:`~repro.core.qed.queue.QueryQueue` under the shared
:class:`~repro.core.qed.policy.BatchPolicy` (threshold and/or timeout);
queries no partition can hold (unparseable text, joins, aggregates,
ORDER BY/LIMIT shapes) flow through the **pass-through partition**:
dispatched immediately as singletons, never waiting on a merge that
cannot happen.

Where a dispatched batch *runs* is a separate policy axis --
:class:`~repro.cluster.routing.BatchPlacement` (least-loaded awake
node, consolidate-aware placement that keeps a
:class:`~repro.cluster.routing.DynamicConsolidateRouter` sizing the
awake set, or hash-splitting one merged batch across nodes via
:attr:`~repro.core.qed.aggregator.MergedQuery.routing_column`).

Under an active :class:`~repro.cluster.faults.FaultPlan`, placement
policies skip crashed/unresponsive nodes and survive failed wakes; a
dispatch no node can take is not shed but requeued through the
simulator's :class:`~repro.cluster.faults.RetryPolicy`.

Under an active :class:`~repro.cluster.placement.PlacementMap`, the
simulator splits each dispatched batch by the shard set its queries'
predicates touch and narrows every placement call to the owning
replica sets, so merged batches never land on a node missing the data
they read (``ClusterSimulator._shard_groups``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.routing import BatchPlacement, LeastLoadedPlacement
from repro.core.qed.aggregator import PartitionKey, partition_key
from repro.core.qed.policy import BatchPolicy
from repro.core.qed.queue import Batch, QueryQueue, QueuedQuery

#: Label of the non-mergeable (singleton) partition in reports.
PASSTHROUGH = "passthrough"


@dataclass(frozen=True)
class DispatchedBatch:
    """One batch leaving the master queue, tagged with its partition."""

    partition: str
    mergeable: bool
    batch: Batch


def partition_label(key: PartitionKey) -> str:
    """Human-readable partition name: ``table[col, col, ...]``."""
    items, tables = key
    cols = ", ".join(item.to_sql() for item in items)
    return f"{tables[0].to_sql()}[{cols}]"


class MasterQueue:
    """Fleet-wide admission queue on the coordinator.

    Driven by explicit timestamps like the per-node
    :class:`~repro.core.qed.queue.QueryQueue` it is built from; the
    cluster event loop calls :meth:`expired` before each arrival (so
    per-partition timeouts fire *at their expiry*, not at the next
    arrival's clock), :meth:`submit` for the arrival itself, and
    :meth:`drain` once the stream ends.
    """

    def __init__(self, policy: BatchPolicy,
                 placement: BatchPlacement | None = None):
        self.policy = policy
        self.placement = (
            placement if placement is not None else LeastLoadedPlacement()
        )
        #: SQL text -> partition key; parsing is deterministic, so the
        #: cache survives reset() across runs.
        self._key_cache: dict[str, PartitionKey | None] = {}
        self.reset()

    def reset(self) -> None:
        """Fresh per-run state (pending queries, partition queues)."""
        self._queues: dict[PartitionKey, QueryQueue] = {}
        self._labels: dict[PartitionKey, str] = {}
        self._next_passthrough_id = 0

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def partitions(self) -> list[str]:
        """Labels of the mergeable partitions seen so far this run."""
        return [self._labels[key] for key in self._queues]

    def depths(self) -> dict[str, int]:
        """Pending queries per mergeable partition, by label (the
        streaming-metrics queue-depth gauge)."""
        return {
            self._labels[key]: len(queue)
            for key, queue in self._queues.items()
        }

    def partition_of(self, sql: str) -> PartitionKey | None:
        """The query's partition key (memoized parse; None: pass-through)."""
        try:
            return self._key_cache[sql]
        except KeyError:
            key = partition_key(sql)
            self._key_cache[sql] = key
            return key

    # -- event-loop hooks -------------------------------------------------

    def submit(self, sql: str, now_s: float) -> list[DispatchedBatch]:
        """Enqueue one arrival; returns any batch its partition fires.

        Non-mergeable queries dispatch immediately as singletons -- a
        pass-through query never waits on a threshold it cannot help
        reach.
        """
        key = self.partition_of(sql)
        if key is None:
            query = QueuedQuery(sql, now_s, self._next_passthrough_id)
            self._next_passthrough_id += 1
            return [DispatchedBatch(
                PASSTHROUGH, False, Batch([query], dispatch_s=now_s),
            )]
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = QueryQueue(self.policy)
            self._labels[key] = partition_label(key)
        batch = queue.submit(sql, now_s)
        if batch is None:
            return []
        return [DispatchedBatch(self._labels[key], True, batch)]

    def expired(self, now_s: float) -> list[DispatchedBatch]:
        """Batches whose partition timeout fired at or before ``now_s``,
        dispatched *at their own expiry* (sorted by it), so sparse
        streams never charge an inter-arrival gap to a batch."""
        out: list[DispatchedBatch] = []
        for key, queue in self._queues.items():
            expiry = queue.expiry_s
            if expiry is None or expiry > now_s:
                continue
            batch = queue.flush(expiry)
            if batch is not None:
                out.append(DispatchedBatch(self._labels[key], True, batch))
        out.sort(key=lambda d: d.batch.dispatch_s)
        return out

    def drain(self, end_s: float) -> list[DispatchedBatch]:
        """Flush every trailing partial batch once arrivals end.

        A timeout partition fires at its own expiry (necessarily after
        ``end_s``: earlier expiries were dispatched by :meth:`expired`
        during the loop); threshold-only partitions flush at ``end_s``
        (:meth:`~repro.core.qed.queue.QueryQueue.drain`).
        """
        out: list[DispatchedBatch] = []
        for key, queue in self._queues.items():
            batch = queue.drain(end_s)
            if batch is not None:
                out.append(DispatchedBatch(self._labels[key], True, batch))
        out.sort(key=lambda d: d.batch.dispatch_s)
        return out
