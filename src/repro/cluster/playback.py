"""Fleet playback: the nodes' timelines as stacked array operations.

This generalizes :meth:`SystemUnderTest.run_compiled_batch` to a whole
heterogeneous fleet.  Nodes sharing a PVC setting are *playback
equivalent* (the simulator builds every node's machine from one
factory), so their timelines stack into a single structure-of-arrays
playback call per distinct setting -- a 16-node x 10k-arrival run
collapses to a handful of vectorized passes.  ``play_loop`` keeps the
per-query replay loop (one ``run_compiled`` call per scheduled piece)
as the reference implementation and perf baseline; both paths agree on
every node's energy to float-summation order.
"""

from __future__ import annotations

from repro.cluster.measure import zero_measurement
from repro.cluster.node import SimulatedNode
from repro.hardware.system import RunMeasurement
from repro.hardware.trace import CompiledTrace

#: Functions below accept any node-shaped object exposing ``spec`` and
#: ``sut`` -- live :class:`SimulatedNode`\ s during scheduling, frozen
#: :class:`~repro.cluster.simulator.NodeTimeline` snapshots during
#: playback.


def playback_groups(
    nodes: list[SimulatedNode],
) -> list[list[SimulatedNode]]:
    """Partition nodes into playback-equivalent groups (same setting)."""
    groups: dict[object, list[SimulatedNode]] = {}
    for node in nodes:
        groups.setdefault(node.spec.setting, []).append(node)
    return list(groups.values())


def play_batched(
    nodes: list[SimulatedNode],
    pieces_by_node: dict[str, list[CompiledTrace]],
    workload_class: str,
) -> dict[str, RunMeasurement]:
    """One stacked playback call per distinct PVC setting.

    Each node's pieces concatenate into its full-timeline trace; every
    same-setting node's timeline joins one
    :meth:`~repro.hardware.system.SystemUnderTest.run_compiled_batch`
    call, whose per-trace slice sums come back as per-node measurements.
    """
    out: dict[str, RunMeasurement] = {}
    for group in playback_groups(nodes):
        traces = [
            CompiledTrace.concat(pieces_by_node[node.spec.name])
            for node in group
        ]
        measurements = group[0].sut.run_compiled_batch(
            traces, workload_class
        )
        for node, measurement in zip(group, measurements):
            out[node.spec.name] = measurement
    return out


def play_loop(
    nodes: list[SimulatedNode],
    pieces_by_node: dict[str, list[CompiledTrace]],
    workload_class: str,
) -> dict[str, RunMeasurement]:
    """The per-query replay loop: one playback call per scheduled piece.

    This is the naive path batched playback replaces -- kept as the
    regression baseline for the conservation tests and the cluster
    scaling benchmark.
    """
    out: dict[str, RunMeasurement] = {}
    for node in nodes:
        total = zero_measurement()
        for piece in pieces_by_node[node.spec.name]:
            total = total + node.sut.run_compiled(piece, workload_class)
        out[node.spec.name] = total
    return out
