"""Fleet playback: the nodes' timelines as stacked array operations.

This generalizes :meth:`SystemUnderTest.run_compiled_batch` to a whole
heterogeneous fleet.  Nodes sharing a ``(hardware profile, PVC
setting)`` pair are *playback equivalent* (the simulator builds every
node's machine from its profile's factory), so their timelines stack
into a single structure-of-arrays playback call per distinct pair -- a
16-node x 10k-arrival run collapses to a handful of vectorized passes.

Nodes retuned online (the adaptive-PVC policy) contribute one stacked
trace per *setting run* -- a maximal stretch of consecutive pieces
played under one setting -- so the number of playback calls stays
``O(distinct (hw, setting) pairs)`` and the number of stacked traces
stays ``O(nodes + setting changes)``, not ``O(pieces)``.

``play_loop`` keeps the per-query replay loop (one ``run_compiled``
call per scheduled piece) as the reference implementation and perf
baseline; both paths agree on every node's energy to float-summation
order.
"""

from __future__ import annotations

from repro.cluster.measure import zero_measurement
from repro.cluster.node import SimulatedNode
from repro.hardware.cpu import PvcSetting
from repro.hardware.system import RunMeasurement
from repro.hardware.trace import CompiledTrace

#: Functions below accept any node-shaped object exposing ``spec`` and
#: ``sut`` -- live :class:`SimulatedNode`\ s during scheduling, frozen
#: :class:`~repro.cluster.simulator.NodeTimeline` snapshots during
#: playback.


def playback_groups(
    nodes: list[SimulatedNode],
) -> list[list[SimulatedNode]]:
    """Partition nodes into playback-equivalent groups: same hardware
    profile, same (spec) PVC setting."""
    groups: dict[object, list[SimulatedNode]] = {}
    for node in nodes:
        groups.setdefault((node.spec.hw, node.spec.setting), []).append(node)
    return list(groups.values())


def _node_settings(
    node, pieces: list[CompiledTrace],
    settings_by_node: dict[str, list[PvcSetting]] | None,
) -> list[PvcSetting]:
    """Per-piece settings for one node (spec setting when not given)."""
    if settings_by_node is None:
        return [node.spec.setting] * len(pieces)
    settings = settings_by_node[node.spec.name]
    if len(settings) != len(pieces):
        raise ValueError(
            f"node {node.spec.name!r}: {len(settings)} settings for "
            f"{len(pieces)} pieces"
        )
    return settings


def _setting_runs(
    pieces: list[CompiledTrace], settings: list[PvcSetting],
) -> list[tuple[PvcSetting, list[CompiledTrace]]]:
    """Split a timeline into maximal same-setting runs, in order."""
    runs: list[tuple[PvcSetting, list[CompiledTrace]]] = []
    for piece, setting in zip(pieces, settings):
        if runs and runs[-1][0] == setting:
            runs[-1][1].append(piece)
        else:
            runs.append((setting, [piece]))
    return runs


def play_batched(
    nodes: list[SimulatedNode],
    pieces_by_node: dict[str, list[CompiledTrace]],
    workload_class: str,
    settings_by_node: dict[str, list[PvcSetting]] | None = None,
) -> dict[str, RunMeasurement]:
    """One stacked playback call per distinct (hw, setting) pair.

    Each node's same-setting piece runs concatenate into stacked
    traces; every equivalent run across the fleet joins one
    :meth:`~repro.hardware.system.SystemUnderTest.run_compiled_batch`
    call, whose per-trace slice sums come back as per-node measurements
    (summed across a node's runs when it was retuned mid-flight).
    """
    out: dict[str, RunMeasurement] = {
        node.spec.name: zero_measurement() for node in nodes
    }
    buckets: dict[object, list[tuple[str, CompiledTrace]]] = {}
    sut_for: dict[object, object] = {}
    for node in nodes:
        pieces = pieces_by_node[node.spec.name]
        settings = _node_settings(node, pieces, settings_by_node)
        for setting, run_pieces in _setting_runs(pieces, settings):
            key = (node.spec.hw, setting)
            buckets.setdefault(key, []).append(
                (node.spec.name, CompiledTrace.concat(run_pieces))
            )
            sut_for.setdefault(key, node.sut)
    for key, entries in buckets.items():
        sut = sut_for[key]
        original = sut.setting
        sut.apply_setting(key[1])
        try:
            measurements = sut.run_compiled_batch(
                [trace for _, trace in entries], workload_class
            )
        finally:
            sut.apply_setting(original)
        for (name, _), measurement in zip(entries, measurements):
            out[name] = out[name] + measurement
    return out


def play_loop(
    nodes: list[SimulatedNode],
    pieces_by_node: dict[str, list[CompiledTrace]],
    workload_class: str,
    settings_by_node: dict[str, list[PvcSetting]] | None = None,
) -> dict[str, RunMeasurement]:
    """The per-query replay loop: one playback call per scheduled piece.

    This is the naive path batched playback replaces -- kept as the
    regression baseline for the conservation tests and the cluster
    scaling benchmark.
    """
    out: dict[str, RunMeasurement] = {}
    for node in nodes:
        pieces = pieces_by_node[node.spec.name]
        settings = _node_settings(node, pieces, settings_by_node)
        total = zero_measurement()
        original = node.sut.setting
        try:
            for piece, setting in zip(pieces, settings):
                if node.sut.setting != setting:
                    node.sut.apply_setting(setting)
                total = total + node.sut.run_compiled(piece, workload_class)
        finally:
            node.sut.apply_setting(original)
        out[node.spec.name] = total
    return out
