"""Fleet playback: the nodes' timelines as stacked array operations.

This generalizes :meth:`SystemUnderTest.run_compiled_batch` to a whole
heterogeneous fleet.  Nodes sharing a ``(hardware profile, PVC
setting)`` pair are *playback equivalent* (the simulator builds every
node's machine from its profile's factory), so their timelines stack
into a single structure-of-arrays playback call per distinct pair -- a
16-node x 10k-arrival run collapses to a handful of vectorized passes.

Nodes retuned online (the adaptive-PVC policy) contribute one stacked
trace per *setting run* -- a maximal stretch of consecutive pieces
played under one setting -- so the number of playback calls stays
``O(distinct (hw, setting) pairs)`` and the number of stacked traces
stays ``O(nodes + setting changes)``, not ``O(pieces)``.

``play_loop`` keeps the per-query replay loop (one ``run_compiled``
call per scheduled piece) as the reference implementation and perf
baseline; both paths agree on every node's energy to float-summation
order.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.measure import zero_measurement
from repro.cluster.node import SimulatedNode
from repro.hardware.cpu import PvcSetting
from repro.hardware.disk import DiskEnergy
from repro.hardware.system import RunMeasurement
from repro.hardware.trace import CompiledTrace, Idle, Trace

#: Functions below accept any node-shaped object exposing ``spec`` and
#: ``sut`` -- live :class:`SimulatedNode`\ s during scheduling, frozen
#: :class:`~repro.cluster.simulator.NodeTimeline` snapshots during
#: playback.


def playback_groups(
    nodes: list[SimulatedNode],
) -> list[list[SimulatedNode]]:
    """Partition nodes into playback-equivalent groups: same hardware
    profile, same (spec) PVC setting."""
    groups: dict[object, list[SimulatedNode]] = {}
    for node in nodes:
        groups.setdefault((node.spec.hw, node.spec.setting), []).append(node)
    return list(groups.values())


def _node_settings(
    node, pieces: list[CompiledTrace],
    settings_by_node: dict[str, list[PvcSetting]] | None,
) -> list[PvcSetting]:
    """Per-piece settings for one node (spec setting when not given)."""
    if settings_by_node is None:
        return [node.spec.setting] * len(pieces)
    settings = settings_by_node[node.spec.name]
    if len(settings) != len(pieces):
        raise ValueError(
            f"node {node.spec.name!r}: {len(settings)} settings for "
            f"{len(pieces)} pieces"
        )
    return settings


def _setting_runs(
    pieces: list[CompiledTrace], settings: list[PvcSetting],
) -> list[tuple[PvcSetting, list[CompiledTrace]]]:
    """Split a timeline into maximal same-setting runs, in order."""
    runs: list[tuple[PvcSetting, list[CompiledTrace]]] = []
    for piece, setting in zip(pieces, settings):
        if runs and runs[-1][0] == setting:
            runs[-1][1].append(piece)
        else:
            runs.append((setting, [piece]))
    return runs


def play_batched(
    nodes: list[SimulatedNode],
    pieces_by_node: dict[str, list[CompiledTrace]],
    workload_class: str,
    settings_by_node: dict[str, list[PvcSetting]] | None = None,
) -> dict[str, RunMeasurement]:
    """One stacked playback call per distinct (hw, setting) pair.

    Each node's same-setting piece runs concatenate into stacked
    traces; every equivalent run across the fleet joins one
    :meth:`~repro.hardware.system.SystemUnderTest.run_compiled_batch`
    call, whose per-trace slice sums come back as per-node measurements
    (summed across a node's runs when it was retuned mid-flight).
    """
    out: dict[str, RunMeasurement] = {
        node.spec.name: zero_measurement() for node in nodes
    }
    buckets: dict[object, list[tuple[str, CompiledTrace]]] = {}
    sut_for: dict[object, object] = {}
    for node in nodes:
        pieces = pieces_by_node[node.spec.name]
        settings = _node_settings(node, pieces, settings_by_node)
        for setting, run_pieces in _setting_runs(pieces, settings):
            key = (node.spec.hw, setting)
            buckets.setdefault(key, []).append(
                (node.spec.name, CompiledTrace.concat(run_pieces))
            )
            sut_for.setdefault(key, node.sut)
    for key, entries in buckets.items():
        sut = sut_for[key]
        original = sut.setting
        sut.apply_setting(key[1])
        try:
            measurements = sut.run_compiled_batch(
                [trace for _, trace in entries], workload_class
            )
        finally:
            sut.apply_setting(original)
        for (name, _), measurement in zip(entries, measurements):
            out[name] = out[name] + measurement
    return out


#: One second of idle, compiled once: played under a (hw, setting)
#: pair it yields that pair's idle draw in watts, and idle energy is
#: strictly linear in idle seconds (constant powers per idle segment),
#: so every idle gap in a columnar schedule costs one multiply.
_IDLE_SECOND = Trace([Idle(1.0, label="idle")]).compiled()

#: RunMeasurement scalar fields in matrix order (disk energy unrolled
#: onto its two rails so every field scales linearly).
_FIELD_COUNT = 9


def _measurement_fields(ms: list[RunMeasurement]) -> np.ndarray:
    """Stack measurements into a (field, trace) matrix for dot products."""
    return np.array([
        [m.duration_s, m.cpu_joules, m.memory_joules,
         m.disk_energy.joules_5v, m.disk_energy.joules_12v,
         m.board_joules, m.gpu_joules, m.fan_joules, m.wall_joules]
        for m in ms
    ], dtype=np.float64).reshape(len(ms), _FIELD_COUNT).T


def _measurement_from_fields(v: np.ndarray) -> RunMeasurement:
    return RunMeasurement(
        duration_s=float(v[0]), cpu_joules=float(v[1]),
        memory_joules=float(v[2]),
        disk_energy=DiskEnergy(float(v[3]), float(v[4])),
        board_joules=float(v[5]), gpu_joules=float(v[6]),
        fan_joules=float(v[7]), wall_joules=float(v[8]),
    )


def play_columnar(
    nodes: list[SimulatedNode],
    columnar,
    horizon_s: float,
    workload_class: str,
) -> dict[str, RunMeasurement]:
    """Play a vectorized (columnar) schedule without materializing pieces.

    A columnar schedule never retunes or sleeps a node, so each node's
    timeline is fully described by *how many times* it played each
    distinct trace plus its total idle seconds.  Busy energy is a
    counts x per-distinct-measurement dot product over the schedule
    phase's pre-costed batch (the same ``run_compiled_batch`` output
    the legacy path replays piece by piece); idle energy is the pair's
    per-second idle draw times the idle gap total (idle playback is
    linear in seconds).  Cost: O(nodes x distinct), independent of the
    arrival count.
    """
    out: dict[str, RunMeasurement] = {}
    n_distinct = len(columnar.distinct)
    fields: dict[object, np.ndarray] = {}
    idle_rates: dict[object, np.ndarray] = {}
    for j, node in enumerate(nodes):
        key = (node.spec.hw, node.spec.setting)
        F = fields.get(key)
        if F is None:
            F = fields[key] = _measurement_fields(columnar.costed[key])
        rate = idle_rates.get(key)
        if rate is None:
            sut = node.sut
            original = sut.setting
            sut.apply_setting(node.spec.setting)
            try:
                per_second = sut.run_compiled(
                    _IDLE_SECOND, workload_class
                )
            finally:
                sut.apply_setting(original)
            rate = idle_rates[key] = _measurement_fields([per_second])[:, 0]
        rows = columnar.rows_for(j)
        counts = np.bincount(
            columnar.sql_idx[rows], minlength=n_distinct
        ).astype(np.float64)
        busy = F @ counts
        idle_s = max(0.0, horizon_s - busy[0])
        out[node.spec.name] = _measurement_from_fields(
            busy + rate * idle_s
        )
    return out


def play_loop(
    nodes: list[SimulatedNode],
    pieces_by_node: dict[str, list[CompiledTrace]],
    workload_class: str,
    settings_by_node: dict[str, list[PvcSetting]] | None = None,
) -> dict[str, RunMeasurement]:
    """The per-query replay loop: one playback call per scheduled piece.

    This is the naive path batched playback replaces -- kept as the
    regression baseline for the conservation tests and the cluster
    scaling benchmark.
    """
    out: dict[str, RunMeasurement] = {}
    for node in nodes:
        pieces = pieces_by_node[node.spec.name]
        settings = _node_settings(node, pieces, settings_by_node)
        total = zero_measurement()
        original = node.sut.setting
        try:
            for piece, setting in zip(pieces, settings):
                if node.sut.setting != setting:
                    node.sut.apply_setting(setting)
                total = total + node.sut.run_compiled(piece, workload_class)
        finally:
            node.sut.apply_setting(original)
        out[node.spec.name] = total
    return out
