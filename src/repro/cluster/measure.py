"""Cluster-level measurement: composed node playback + response times.

A cluster run produces one :class:`~repro.hardware.system.RunMeasurement`
per node (the node's whole awake timeline played back under its PVC
setting) plus the event-level bookkeeping the hardware layer cannot see:
sleep energy, wake transitions, per-query response times, shed queries,
and the fleet's modeled power peak.  :class:`ClusterMeasurement` composes
them into the paper-style aggregate metrics -- total energy, EDP,
per-node utilization, response-time percentiles, SLA violations, and
power-cap overshoot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator

import numpy as np

from repro.hardware.disk import ZERO_DISK_ENERGY
from repro.hardware.system import RunMeasurement


def zero_measurement() -> RunMeasurement:
    """An empty playback (a node that never woke up)."""
    return RunMeasurement(0.0, 0.0, 0.0, ZERO_DISK_ENERGY, 0.0, 0.0, 0.0, 0.0)


@dataclass(frozen=True)
class QueryResponse:
    """One served query's life cycle through the cluster."""

    sql: str
    node: str
    arrival_s: float
    start_s: float
    completion_s: float

    @property
    def response_s(self) -> float:
        """Full sojourn time: arrival to completion (queue wait included)."""
        return self.completion_s - self.arrival_s


@dataclass(frozen=True)
class ShedQuery:
    """A query the cluster refused to serve: a power-cap rejection, or
    a dead-lettered query whose retries were exhausted."""

    sql: str
    arrival_s: float


@dataclass(frozen=True)
class ScheduledWork:
    """One contiguous busy window on a node.

    A plain query occupies one window; a QED batch occupies one window
    for the whole merged execution.  ``trace_key`` indexes the schedule's
    compiled-trace table; ``queries`` carries the (sql, arrival time)
    pairs answered when the window completes.  ``setting`` is the PVC
    operating point the node held when the window was placed (None:
    the node's spec setting) -- playback must cost the window under the
    same setting its service time was computed for.  ``stretch_s`` is
    straggler-fault inflation beyond the costed trace duration: the
    window occupies it, but playback bills it as degraded (idle-watt)
    occupancy after the trace piece.
    """

    trace_key: str
    start_s: float
    end_s: float
    queries: tuple[tuple[str, float], ...]
    setting: object | None = None
    stretch_s: float = 0.0

    @property
    def service_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class QedPartitionStats:
    """Batch/merge accounting for one QED partition (or node queue).

    ``queries``/``batches``/``max_batch`` count *dispatches* out of the
    admission queue; the window counters record what the scheduler
    actually placed: ``merged_windows`` disjunctive executions,
    ``singleton_windows`` single-query executions (size-1 batches,
    pass-through queries, and fallback members), and
    ``fallback_batches`` batches the aggregator rejected
    (``NotMergeableError``) that degraded to back-to-back singletons
    instead of crashing the schedule.
    """

    partition: str
    queries: int = 0
    batches: int = 0
    max_batch: int = 0
    merged_windows: int = 0
    singleton_windows: int = 0
    fallback_batches: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.queries / self.batches if self.batches else 0.0


@dataclass
class QedReport:
    """Fleet-wide QED accounting for one run, per partition.

    ``mode`` is ``"master"`` (one coordinator queue partitioned by
    mergeable template) or ``"node"`` (a private queue per node, keyed
    ``node:<name>``).
    """

    mode: str
    partitions: list[QedPartitionStats] = field(default_factory=list)

    def get(self, partition: str) -> QedPartitionStats | None:
        for stats in self.partitions:
            if stats.partition == partition:
                return stats
        return None

    @property
    def queries(self) -> int:
        return sum(p.queries for p in self.partitions)

    @property
    def batches(self) -> int:
        return sum(p.batches for p in self.partitions)

    @property
    def merged_windows(self) -> int:
        return sum(p.merged_windows for p in self.partitions)

    @property
    def singleton_windows(self) -> int:
        return sum(p.singleton_windows for p in self.partitions)

    @property
    def fallback_batches(self) -> int:
        return sum(p.fallback_batches for p in self.partitions)

    @property
    def mean_batch_size(self) -> float:
        return self.queries / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "merged_windows": self.merged_windows,
            "singleton_windows": self.singleton_windows,
            "fallback_batches": self.fallback_batches,
            "partitions": {
                p.partition: {
                    "queries": p.queries,
                    "batches": p.batches,
                    "mean_batch_size": p.mean_batch_size,
                    "max_batch": p.max_batch,
                    "merged_windows": p.merged_windows,
                    "singleton_windows": p.singleton_windows,
                    "fallback_batches": p.fallback_batches,
                }
                for p in self.partitions
            },
        }


@dataclass
class FaultReport:
    """What the fault plan did to one run, and what recovery cost.

    ``crashes``/``failed_wakes`` count injected events that actually
    fired; ``requeued`` counts queries pulled out of lost in-flight
    work or crashed per-node queues; ``retries`` counts re-dispatch
    attempts the retry policy scheduled; ``dead_lettered`` counts
    queries shed after exhausting their attempts (they appear in the
    measurement's ``shed`` list, so SLA accounting already treats them
    as misses).  ``wasted_busy_s``/``wasted_joules`` charge the partial
    work burnt before a mid-batch crash (busy-watt energy the fleet
    spent on answers it never delivered).  ``affected`` identifies the
    ``(sql, arrival_s)`` pairs that were retried or dead-lettered, so
    SLA attainment can be split by fault exposure.

    Under a placement map a crash additionally triggers re-replication
    of the shards the dead node held: ``re_replications`` counts shard
    copies started, ``copy_s`` their combined busy seconds across both
    endpoints (source read+ship, destination ship+write), and
    ``copy_joules`` the modeled busy-watt energy of those windows --
    recovery traffic the fleet bills on top of serving the workload.
    """

    crashes: int = 0
    failed_wakes: int = 0
    requeued: int = 0
    retries: int = 0
    dead_lettered: int = 0
    wasted_busy_s: float = 0.0
    wasted_joules: float = 0.0
    re_replications: int = 0
    copy_s: float = 0.0
    copy_joules: float = 0.0
    affected: set = field(default_factory=set)

    def to_dict(self) -> dict:
        return {
            "crashes": self.crashes,
            "failed_wakes": self.failed_wakes,
            "requeued": self.requeued,
            "retries": self.retries,
            "dead_lettered": self.dead_lettered,
            "wasted_busy_s": self.wasted_busy_s,
            "wasted_joules": self.wasted_joules,
            "re_replications": self.re_replications,
            "copy_s": self.copy_s,
            "copy_joules": self.copy_joules,
            "affected_queries": len(self.affected),
        }


@dataclass(frozen=True)
class ResponseColumns:
    """Served queries in structure-of-arrays form (vectorized playback).

    The columnar analogue of a measurement's ``responses`` list, sorted
    by (arrival, completion): per-query arrays plus the distinct-template
    and node-name tables the index columns point into.  A 1M-arrival run
    cannot afford per-query objects, so every consumer -- percentiles,
    SLA accounting, phase windows -- reads these arrays directly.
    """

    distinct: tuple[str, ...]
    node_names: tuple[str, ...]
    sql_idx: np.ndarray
    node_idx: np.ndarray
    arrival_s: np.ndarray
    start_s: np.ndarray
    completion_s: np.ndarray

    def __len__(self) -> int:
        return len(self.arrival_s)

    @property
    def response_s(self) -> np.ndarray:
        """Full sojourn time per query: arrival to completion."""
        return self.completion_s - self.arrival_s

    def iter_responses(self):
        """Materialize :class:`QueryResponse` objects row by row.

        For identity tests and small-run inspection only -- the point
        of the columnar form is that large runs never do this.
        """
        for k in range(len(self.arrival_s)):
            yield QueryResponse(
                sql=self.distinct[int(self.sql_idx[k])],
                node=self.node_names[int(self.node_idx[k])],
                arrival_s=float(self.arrival_s[k]),
                start_s=float(self.start_s[k]),
                completion_s=float(self.completion_s[k]),
            )


@dataclass
class NodeUsage:
    """One node's share of a cluster run.

    The span fields carry the node's timeline shape (busy windows,
    sleep spans, wake transitions, each as ``(start_s, end_s)`` pairs)
    plus its linear power envelope, so phase-sliced reporting can
    attribute modeled energy to arbitrary time windows after the fact.
    A vectorized run carries its busy windows as a ``(starts, ends)``
    array pair in ``busy_columns`` instead of materializing tuples.
    """

    name: str
    queries: int
    busy_s: float
    wake_s: float
    sleep_s: float
    horizon_s: float
    playback: RunMeasurement
    sleep_joules: float
    re_sleeps: int = 0
    busy_windows: tuple[tuple[float, float], ...] = ()
    sleep_spans: tuple[tuple[float, float], ...] = ()
    wake_spans: tuple[tuple[float, float], ...] = ()
    idle_wall_w: float = 0.0
    busy_wall_w: float = 0.0
    sleep_wall_w: float = 0.0
    busy_columns: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def idle_s(self) -> float:
        """Awake-but-idle time (includes any pre/post-run idling)."""
        return max(0.0, self.playback.duration_s - self.busy_s - self.wake_s)

    @property
    def utilization(self) -> float:
        return self.busy_s / self.horizon_s if self.horizon_s else 0.0

    @property
    def wall_joules(self) -> float:
        """Playback wall energy plus the sleep-state draw."""
        return self.playback.wall_joules + self.sleep_joules

    def energy_breakdown(self) -> dict[str, float]:
        """Per-phase modeled joules under the linear power envelope.

        The four phases tile the node's horizon exactly -- busy windows
        at busy watts, wake transitions and awake-idle time at idle
        watts, sleep spans at sleep watts -- so their sum equals the
        envelope integral :attr:`ClusterMeasurement.modeled_wall_joules`
        computes independently (the attribution reconciliation).  The
        residual idle term is clamped at zero against float tiling
        noise only; phase spans never truly overlap.
        """
        idle_s = max(
            0.0, self.horizon_s - self.sleep_s - self.wake_s - self.busy_s
        )
        return {
            "busy_j": self.busy_wall_w * self.busy_s,
            "idle_j": self.idle_wall_w * idle_s,
            "wake_j": self.idle_wall_w * self.wake_s,
            "sleep_j": self.sleep_wall_w * self.sleep_s,
        }

    @property
    def modeled_joules(self) -> float:
        """Envelope-modeled node energy (sum of the phase breakdown)."""
        return sum(self.energy_breakdown().values())


@dataclass(frozen=True)
class PhaseWindow:
    """One time slice of a cluster run (phase-sliced reporting).

    ``modeled_joules`` integrates the per-node linear power envelope
    (sleep watts asleep, idle watts awake -- wake transitions included
    -- plus the busy delta inside busy windows) over the window; the
    playback totals remain the exact energy, this attributes them in
    time.  ``awake_node_s`` counts node-seconds any node spent out of
    the sleep state; ``re_sleeps`` counts sleep states *entered* inside
    the window.
    """

    start_s: float
    end_s: float
    arrivals: int
    served: int
    modeled_joules: float
    awake_node_s: float
    busy_node_s: float
    wake_node_s: float
    sleep_node_s: float
    re_sleeps: int
    p95_response_s: float

    @property
    def span_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def avg_power_w(self) -> float:
        return self.modeled_joules / self.span_s if self.span_s else 0.0

    @property
    def awake_nodes_avg(self) -> float:
        return self.awake_node_s / self.span_s if self.span_s else 0.0


def _overlap(spans, lo: float, hi: float) -> float:
    """Total length of ``spans`` clipped to the window ``[lo, hi)``."""
    return sum(
        max(0.0, min(end, hi) - max(start, lo)) for start, end in spans
    )


def _overlap_columns(
    starts: np.ndarray, ends: np.ndarray, lo: float, hi: float
) -> float:
    """Vectorized :func:`_overlap` for SoA ``(starts, ends)`` windows."""
    return float(
        np.clip(
            np.minimum(ends, hi) - np.maximum(starts, lo), 0.0, None
        ).sum()
    )


@dataclass
class ClusterMeasurement:
    """A completed cluster simulation: energy, time, and service quality."""

    horizon_s: float
    nodes: list[NodeUsage]
    responses: list[QueryResponse]
    shed: list[ShedQuery] = field(default_factory=list)
    peak_power_w: float = 0.0
    cap_w: float | None = None
    qed: QedReport | None = None
    faults: FaultReport | None = None
    #: Deterministic identity of the run's full configuration (fleet,
    #: policy, faults, arrival stream, scale factor); stamped by the
    #: simulator so reports and bench history are attributable.
    run_id: str | None = None
    fingerprint: dict | None = None
    #: Vectorized runs keep served queries columnar here and leave
    #: ``responses`` empty; every consumer below reads whichever form
    #: is present.
    response_columns: ResponseColumns | None = None

    # -- energy -----------------------------------------------------------

    @property
    def total(self) -> RunMeasurement:
        """Composed playback of every node (sleep energy excluded)."""
        out = zero_measurement()
        for node in self.nodes:
            out = out + node.playback
        return out

    @property
    def wall_joules(self) -> float:
        """Cluster wall energy over the horizon, sleep states included."""
        return sum(n.wall_joules for n in self.nodes)

    @property
    def cpu_joules(self) -> float:
        return sum(n.playback.cpu_joules for n in self.nodes)

    @property
    def modeled_wall_joules(self) -> float:
        """Envelope-modeled cluster energy over the horizon.

        The integral of each node's linear power envelope: sleep watts
        asleep, idle watts awake (wake transitions included), plus the
        busy delta inside busy windows.  Computed independently of
        :meth:`NodeUsage.energy_breakdown` so the observability layer's
        per-phase attribution has a genuine reconciliation target
        rather than a restatement of itself.
        """
        total = 0.0
        for n in self.nodes:
            awake_s = n.horizon_s - n.sleep_s
            total += (
                n.sleep_wall_w * n.sleep_s
                + n.idle_wall_w * awake_s
                + (n.busy_wall_w - n.idle_wall_w) * n.busy_s
            )
        return total

    @property
    def edp(self) -> float:
        """Cluster EDP: wall energy x makespan."""
        return self.wall_joules * self.horizon_s

    @property
    def avg_power_w(self) -> float:
        return self.wall_joules / self.horizon_s if self.horizon_s else 0.0

    # -- service quality --------------------------------------------------

    @property
    def served(self) -> int:
        if self.response_columns is not None:
            return len(self.response_columns)
        return len(self.responses)

    def iter_responses(self) -> Iterator[QueryResponse]:
        """Every served query as a :class:`QueryResponse`, whichever
        form the run produced (columnar runs materialize row by row --
        identity tests and small-run inspection only)."""
        if self.response_columns is not None:
            yield from self.response_columns.iter_responses()
        else:
            yield from self.responses

    @cached_property
    def _response_values(self) -> np.ndarray:
        """Response times as one array (memoized; every percentile and
        mean reads it, and the measurement is effectively immutable
        once composed)."""
        if self.response_columns is not None:
            return self.response_columns.response_s
        return np.array([r.response_s for r in self.responses])

    def response_percentile(self, q: float) -> float:
        if self.served == 0:
            return 0.0
        return float(np.percentile(self._response_values, q))

    @property
    def p50_response_s(self) -> float:
        return self.response_percentile(50.0)

    @property
    def p95_response_s(self) -> float:
        return self.response_percentile(95.0)

    @property
    def p99_response_s(self) -> float:
        return self.response_percentile(99.0)

    @property
    def mean_response_s(self) -> float:
        if self.served == 0:
            return 0.0
        return float(self._response_values.mean())

    def sla_violations(self, sla_s: float) -> int:
        """Served queries over the response-time SLA, plus shed queries
        (a refused query is the hardest SLA miss of all)."""
        if sla_s < 0:
            raise ValueError("sla_s must be non-negative")
        late = int((self._response_values > sla_s).sum())
        return late + len(self.shed)

    def sla_split(self, sla_s: float) -> dict[str, float]:
        """SLA attainment split by fault exposure.

        A query is *affected* when the fault report marks its
        ``(sql, arrival_s)`` identity (retried or dead-lettered);
        everything else -- including every query of a fault-free run --
        is unaffected.  Shed queries count against their side's
        attainment the same way :meth:`sla_violations` counts them.
        """
        if sla_s < 0:
            raise ValueError("sla_s must be non-negative")
        affected = self.faults.affected if self.faults else set()
        totals = {True: 0, False: 0}
        met = {True: 0, False: 0}
        if self.response_columns is not None:
            # Vectorized runs never carry a fault plan, so every served
            # query sits on the unaffected side.
            values = self._response_values
            totals[False] = int(values.size)
            met[False] = int((values <= sla_s).sum())
        else:
            for r in self.responses:
                side = (r.sql, r.arrival_s) in affected
                totals[side] += 1
                met[side] += r.response_s <= sla_s
        for q in self.shed:
            totals[(q.sql, q.arrival_s) in affected] += 1
        return {
            "affected_total": float(totals[True]),
            "affected_met": float(met[True]),
            "affected_attainment": (
                met[True] / totals[True] if totals[True] else 1.0
            ),
            "unaffected_total": float(totals[False]),
            "unaffected_met": float(met[False]),
            "unaffected_attainment": (
                met[False] / totals[False] if totals[False] else 1.0
            ),
        }

    # -- power cap --------------------------------------------------------

    @property
    def power_cap_overshoot_w(self) -> float:
        """Modeled peak power above the cap (0 when capped or uncapped).

        The cap router's feasibility check grants float-noise slack
        (1e-9 W); anything under a micro-watt here is that same noise,
        not a violation.
        """
        if self.cap_w is None:
            return 0.0
        overshoot = self.peak_power_w - self.cap_w
        return overshoot if overshoot > 1e-6 else 0.0

    # -- reporting --------------------------------------------------------

    @property
    def awake_nodes(self) -> int:
        return sum(1 for n in self.nodes if n.playback.duration_s > 0)

    @property
    def re_sleeps(self) -> int:
        """Fleet-wide count of re-entered sleep states (dynamic
        re-consolidation activity; zero for the one-shot policies)."""
        return sum(n.re_sleeps for n in self.nodes)

    @property
    def awake_node_s(self) -> float:
        """Node-seconds spent out of the sleep state over the horizon --
        the quantity consolidation policies minimize."""
        return sum(
            n.horizon_s - n.sleep_s for n in self.nodes
        )

    def window_report(self, window_s: float) -> list[PhaseWindow]:
        """Slice the run into fixed windows (per-phase diurnal report).

        Each window attributes modeled energy, awake/busy/wake/sleep
        node-seconds, arrivals, completions, re-sleeps, and the p95
        response time of queries *completing* inside it.  Windows tile
        ``[0, horizon_s)``; the last one closes at the horizon.  The
        window count backs off a hair of float noise so a horizon that
        is K windows up to accumulated rounding (3 x 0.1 = 0.30000...04)
        yields K windows, not K plus a degenerate zero-width tail that
        would also steal the horizon-time completions from the real
        final window.  A zero-horizon measurement (nothing ever ran)
        still reports one well-formed ``[0, 0]`` window rather than
        silently dropping the run.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        count = (
            max(1, int(np.ceil(self.horizon_s / window_s - 1e-9)))
            if self.horizon_s > 0 else 1
        )
        # Response times as arrays once, outside the window sweep
        # (columnar runs already carry them; legacy lists convert
        # here), so slicing is O(windows x nodes + responses).
        if self.response_columns is not None:
            r_arrival = self.response_columns.arrival_s
            r_completion = self.response_columns.completion_s
        else:
            r_arrival = np.array([r.arrival_s for r in self.responses])
            r_completion = np.array(
                [r.completion_s for r in self.responses]
            )
        r_values = r_completion - r_arrival
        out: list[PhaseWindow] = []
        for k in range(count):
            lo = k * window_s
            last = k == count - 1
            hi = (
                max(0.0, self.horizon_s) if last
                else min((k + 1) * window_s, self.horizon_s)
            )
            span = hi - lo

            # Windows are half-open except the last, which closes at
            # the horizon -- the horizon IS the final completion time,
            # so an exclusive bound would drop the last query served.
            def inside(t: float) -> bool:
                return lo <= t < hi or (last and t == hi)

            def inside_mask(t: np.ndarray) -> np.ndarray:
                mask = (t >= lo) & (t < hi)
                if last:
                    mask |= t == hi
                return mask
            busy = wake = sleep = joules = 0.0
            re_sleeps = 0
            for n in self.nodes:
                if n.busy_columns is not None:
                    b = _overlap_columns(*n.busy_columns, lo, hi)
                else:
                    b = _overlap(n.busy_windows, lo, hi)
                w = _overlap(n.wake_spans, lo, hi)
                s = _overlap(n.sleep_spans, lo, hi)
                busy += b
                wake += w
                sleep += s
                awake = span - s
                joules += (
                    n.sleep_wall_w * s
                    + n.idle_wall_w * (awake - b)
                    + n.busy_wall_w * b
                )
                re_sleeps += sum(
                    1 for start, _ in n.sleep_spans
                    if start > 0.0 and inside(start)
                )
            completed = inside_mask(r_completion)
            window_responses = r_values[completed]
            arrivals = int(inside_mask(r_arrival).sum()) + sum(
                1 for q in self.shed if inside(q.arrival_s)
            )
            out.append(PhaseWindow(
                start_s=lo,
                end_s=hi,
                arrivals=arrivals,
                served=int(completed.sum()),
                modeled_joules=joules,
                awake_node_s=len(self.nodes) * span - sleep,
                busy_node_s=busy,
                wake_node_s=wake,
                sleep_node_s=sleep,
                re_sleeps=re_sleeps,
                p95_response_s=(
                    float(np.percentile(window_responses, 95.0))
                    if window_responses.size else 0.0
                ),
            ))
        return out

    def summary(self) -> dict[str, float]:
        """Flat scalar summary (CLI table / benchmark artifacts).

        Carries the run's deterministic ``run_id`` (the one non-float
        entry) when the simulator stamped one, so summaries -- and the
        artifacts built from them -- are attributable to exact configs.
        """
        out: dict = {}
        if self.run_id is not None:
            out["run_id"] = self.run_id
        out.update({
            "horizon_s": self.horizon_s,
            "served": float(self.served),
            "shed": float(len(self.shed)),
            "awake_nodes": float(self.awake_nodes),
            "wall_joules": self.wall_joules,
            "cpu_joules": self.cpu_joules,
            "edp": self.edp,
            "avg_power_w": self.avg_power_w,
            "peak_power_w": self.peak_power_w,
            "p50_response_s": self.p50_response_s,
            "p95_response_s": self.p95_response_s,
            "p99_response_s": self.p99_response_s,
            "mean_utilization": (
                sum(n.utilization for n in self.nodes) / len(self.nodes)
                if self.nodes else 0.0
            ),
            "awake_node_s": self.awake_node_s,
            "re_sleeps": float(self.re_sleeps),
        })
        if self.qed is not None:
            out.update({
                "qed_batches": float(self.qed.batches),
                "qed_mean_batch_size": self.qed.mean_batch_size,
                "qed_merged_windows": float(self.qed.merged_windows),
                "qed_singleton_windows": float(
                    self.qed.singleton_windows
                ),
                "qed_fallback_batches": float(self.qed.fallback_batches),
            })
        if self.faults is not None:
            out.update({
                "fault_crashes": float(self.faults.crashes),
                "fault_failed_wakes": float(self.faults.failed_wakes),
                "fault_requeued": float(self.faults.requeued),
                "fault_retries": float(self.faults.retries),
                "fault_dead_lettered": float(self.faults.dead_lettered),
                "fault_wasted_joules": self.faults.wasted_joules,
                "fault_re_replications": float(
                    self.faults.re_replications
                ),
                "fault_copy_joules": self.faults.copy_joules,
            })
        return out
