"""Data placement: partitioned tables with k replicas across the fleet.

The seed cluster model assumed full replication -- any node could serve
any query.  This module drops that assumption.  A :class:`PlacementMap`
assigns each table hash- or range-partitioned shards with ``replicas``
copies spread over named nodes; the simulator consults it to restrict
routing to nodes that hold every shard a statement's predicates may
touch, consolidating routers consult it to keep a quorum of every shard
awake before sleeping a node, and the fault layer uses it to synthesize
re-replication copy traffic after a crash (see
:func:`replication_copy_trace`).

Shard resolution is *conservative*: a statement narrows to specific
shards only when its WHERE clause provably pins the partition column to
literal values (``col = lit``, ``col IN (...)``, and AND/OR
combinations thereof).  Anything the walker cannot prove -- range
predicates on a hash-partitioned column, unparseable SQL, expressions
over the column -- falls back to *all* shards of the table, which is
always correct (merely less local).
"""

from __future__ import annotations

import json
import math
import zlib
from bisect import bisect_right
from dataclasses import dataclass

from repro.db.errors import DatabaseError
from repro.db.sql import ast
from repro.db.sql.parser import parse
from repro.hardware.trace import CompiledTrace, CpuWork, DiskAccess, Trace

__all__ = [
    "PlacementMap",
    "TablePlacement",
    "generate_placement",
    "load_placement",
    "quorum_cover",
    "quorum_wake_candidates",
    "replication_copy_trace",
    "sleep_would_break_quorum",
    "stable_hash",
]

PARTITION_KINDS = ("hash", "range")


def stable_hash(value: object) -> int:
    """Deterministic value hash (``PYTHONHASHSEED`` randomizes builtin
    ``hash`` for strings, which would make shard maps -- and therefore
    every simulated energy number -- unreproducible across runs)."""
    return zlib.crc32(repr(value).encode())


@dataclass(frozen=True)
class TablePlacement:
    """One table's shard layout: ``shards`` partitions of ``column``,
    each held by the ``replicas`` nodes named in ``replica_map``.

    ``kind="hash"`` maps a partition value to ``stable_hash(v) %
    shards``; ``kind="range"`` maps it by binary search over the
    ``shards - 1`` ascending ``bounds`` (shard ``i`` covers values in
    ``(bounds[i-1], bounds[i]]``-style half-open buckets via
    ``bisect_right``).  ``quorum`` is how many replicas of every shard
    a consolidating router must keep awake (1 = availability floor,
    ``replicas // 2 + 1`` = majority).
    """

    table: str
    column: str
    shards: int
    replicas: int
    replica_map: tuple[tuple[str, ...], ...]
    kind: str = "hash"
    bounds: tuple[float, ...] = ()
    quorum: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.kind not in PARTITION_KINDS:
            raise ValueError(
                f"unknown partition kind {self.kind!r}; "
                f"known: {PARTITION_KINDS}"
            )
        if self.kind == "range":
            if len(self.bounds) != self.shards - 1:
                raise ValueError(
                    "range partitioning needs shards - 1 bounds "
                    f"({self.shards - 1}), got {len(self.bounds)}"
                )
            if any(a >= b for a, b in zip(self.bounds, self.bounds[1:])):
                raise ValueError("range bounds must be strictly ascending")
        elif self.bounds:
            raise ValueError("hash partitioning takes no bounds")
        if len(self.replica_map) != self.shards:
            raise ValueError(
                f"replica_map covers {len(self.replica_map)} shards, "
                f"expected {self.shards}"
            )
        for shard, holders in enumerate(self.replica_map):
            if len(holders) != self.replicas:
                raise ValueError(
                    f"shard {shard} of {self.table!r} has "
                    f"{len(holders)} replicas, expected {self.replicas}"
                )
            if len(set(holders)) != len(holders):
                raise ValueError(
                    f"shard {shard} of {self.table!r} repeats a node"
                )
        if not 1 <= self.quorum <= self.replicas:
            raise ValueError("quorum must be in [1, replicas]")

    def shard_of(self, value: object) -> int:
        """The shard holding partition-column value ``value``."""
        if self.kind == "range":
            return bisect_right(self.bounds, value)
        return stable_hash(value) % self.shards

    def nodes_for(self, shard: int) -> tuple[str, ...]:
        return self.replica_map[shard]

    def to_dict(self) -> dict:
        out = {
            "table": self.table,
            "column": self.column,
            "kind": self.kind,
            "shards": self.shards,
            "replicas": self.replicas,
            "quorum": self.quorum,
            "replica_map": [list(names) for names in self.replica_map],
        }
        if self.kind == "range":
            out["bounds"] = list(self.bounds)
        return out

    _KNOWN_KEYS = frozenset(
        ("table", "column", "kind", "shards", "replicas", "quorum",
         "replica_map", "bounds")
    )

    @classmethod
    def from_dict(cls, doc: dict) -> "TablePlacement":
        if not isinstance(doc, dict):
            raise ValueError(f"table placement must be an object: {doc!r}")
        unknown = set(doc) - cls._KNOWN_KEYS
        if unknown:
            raise ValueError(
                f"unknown placement keys: {sorted(unknown)}; "
                f"known: {sorted(cls._KNOWN_KEYS)}"
            )
        for required in ("table", "column", "shards", "replicas",
                         "replica_map"):
            if required not in doc:
                raise ValueError(f"table placement needs {required!r}")
        return cls(
            table=str(doc["table"]),
            column=str(doc["column"]),
            shards=int(doc["shards"]),
            replicas=int(doc["replicas"]),
            replica_map=tuple(
                tuple(str(n) for n in names)
                for names in doc["replica_map"]
            ),
            kind=str(doc.get("kind", "hash")),
            bounds=tuple(float(b) for b in doc.get("bounds", ())),
            quorum=int(doc.get("quorum", 1)),
        )


class PlacementMap:
    """The fleet's data layout: one :class:`TablePlacement` per table.

    Tables absent from the map stay fully replicated (any node serves
    them), so an empty map reproduces the seed model exactly.  Shard
    requirements per statement (:meth:`required_shards`) are memoized --
    the map is immutable once built, so the SQL walk happens once per
    distinct template.
    """

    def __init__(self, tables: list[TablePlacement] | tuple = ()):
        self.tables: dict[str, TablePlacement] = {}
        for tp in tables:
            if tp.table in self.tables:
                raise ValueError(f"duplicate placement for {tp.table!r}")
            self.tables[tp.table] = tp
        self._shards_cache: dict[str, frozenset | None] = {}

    # -- construction / serialization ---------------------------------

    def to_dict(self) -> dict:
        return {
            "tables": [
                self.tables[name].to_dict() for name in sorted(self.tables)
            ]
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "PlacementMap":
        if not isinstance(doc, dict) or "tables" not in doc:
            raise ValueError(
                'a placement plan is {"tables": [...]}; '
                f"got {type(doc).__name__}"
            )
        unknown = set(doc) - {"tables"}
        if unknown:
            raise ValueError(f"unknown plan keys: {sorted(unknown)}")
        return cls([TablePlacement.from_dict(t) for t in doc["tables"]])

    @property
    def node_names(self) -> frozenset[str]:
        """Every node name the replica maps reference."""
        return frozenset(
            name
            for tp in self.tables.values()
            for holders in tp.replica_map
            for name in holders
        )

    def for_table(self, name: str) -> TablePlacement | None:
        return self.tables.get(name)

    def quorum_for(self, table: str) -> int:
        tp = self.tables.get(table)
        return tp.quorum if tp is not None else 0

    def shards_of(self, node_name: str) -> frozenset[tuple[str, int]]:
        """The ``(table, shard)`` pairs ``node_name`` initially holds."""
        held = set()
        for tp in self.tables.values():
            for shard, holders in enumerate(tp.replica_map):
                if node_name in holders:
                    held.add((tp.table, shard))
        return frozenset(held)

    # -- statement -> shards ------------------------------------------

    def required_shards(self, sql: str) -> frozenset[tuple[str, int]] | None:
        """The ``(table, shard)`` pairs ``sql`` may touch, or ``None``
        when it references no placed table (any node can serve it)."""
        try:
            return self._shards_cache[sql]
        except KeyError:
            pass
        required = self._required_shards(sql)
        self._shards_cache[sql] = required
        return required

    def _required_shards(self, sql: str):
        try:
            select = parse(sql)
        except DatabaseError:
            select = None
        if select is None or not isinstance(select, ast.Select):
            # Cannot prove locality; require every shard of every
            # placed table (correct, maximally conservative).
            required = frozenset(
                (tp.table, shard)
                for tp in self.tables.values()
                for shard in range(tp.shards)
            )
            return required or None
        required = set()
        placed = False
        for ref in select.tables:
            tp = self.tables.get(ref.name)
            if tp is None:
                continue
            placed = True
            for shard in self._predicate_shards(tp, select.where):
                required.add((tp.table, shard))
        if not placed:
            return None
        return frozenset(required)

    def _predicate_shards(self, tp: TablePlacement, where) -> frozenset[int]:
        values = _column_values(tp.column, where) if where is not None \
            else None
        if values is None:
            return frozenset(range(tp.shards))
        shards = set()
        for value in values:
            try:
                shards.add(tp.shard_of(value))
            except TypeError:
                # A value the partition scheme cannot order/hash
                # against (e.g. string vs numeric range bounds).
                return frozenset(range(tp.shards))
        return frozenset(shards)


def _column_values(column: str, expr) -> frozenset | None:
    """The provable value set of ``column`` under ``expr``.

    Returns a frozenset S meaning "rows satisfying ``expr`` have
    ``column`` in S", or ``None`` when no constraint can be derived
    (the caller must then assume all shards).
    """
    if isinstance(expr, ast.Comparison) and expr.op == "=":
        value = _equality_value(column, expr.left, expr.right)
        if value is None:
            value = _equality_value(column, expr.right, expr.left)
        return None if value is None else frozenset([value[0]])
    if isinstance(expr, ast.InList):
        if (isinstance(expr.operand, ast.ColumnRef)
                and expr.operand.name == column
                and all(isinstance(i, ast.Literal) for i in expr.items)):
            return frozenset(i.value for i in expr.items)
        return None
    if isinstance(expr, ast.And):
        left = _column_values(column, expr.left)
        right = _column_values(column, expr.right)
        if left is None:
            return right
        if right is None:
            return left
        return left & right
    if isinstance(expr, ast.Or):
        left = _column_values(column, expr.left)
        right = _column_values(column, expr.right)
        if left is None or right is None:
            return None
        return left | right
    return None


def _equality_value(column: str, col_side, lit_side):
    """``(value,)`` when ``col_side = lit_side`` pins ``column``."""
    if (isinstance(col_side, ast.ColumnRef) and col_side.name == column
            and isinstance(lit_side, ast.Literal)):
        return (lit_side.value,)
    return None


# -- generated defaults and JSON plans --------------------------------


def generate_placement(
    nodes,
    shards: int,
    replicas: int,
    table: str = "lineitem",
    column: str = "l_quantity",
    kind: str = "hash",
    quorum: int | str = 1,
    bounds: tuple[float, ...] = (),
) -> PlacementMap:
    """The CLI's ``--shards N --replicas k`` default layout.

    Shard ``i`` is held by ``replicas`` consecutive nodes starting at
    ``i mod n`` (chained declustering), which spreads both primaries
    and recovery load evenly.  ``nodes`` accepts ``NodeSpec``-likes or
    plain names; ``quorum`` accepts ``"majority"``.
    """
    names = [
        n if isinstance(n, str)
        else getattr(n, "name", None) or n.spec.name
        for n in nodes
    ]
    if replicas > len(names):
        raise ValueError(
            f"replicas ({replicas}) cannot exceed the fleet size "
            f"({len(names)})"
        )
    if quorum == "majority":
        quorum = replicas // 2 + 1
    replica_map = tuple(
        tuple(names[(i + j) % len(names)] for j in range(replicas))
        for i in range(shards)
    )
    return PlacementMap([
        TablePlacement(
            table=table, column=column, shards=shards, replicas=replicas,
            replica_map=replica_map, kind=kind, bounds=tuple(bounds),
            quorum=int(quorum),
        )
    ])


def load_placement(path: str) -> PlacementMap:
    """Load a JSON placement plan (see :meth:`PlacementMap.to_dict`)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    return PlacementMap.from_dict(doc)


# -- quorum constraints for consolidating routers ---------------------


def _holds(node, key: tuple[str, int]) -> bool:
    shards = getattr(node, "shards", None)
    return shards is not None and key in shards


def sleep_would_break_quorum(placement, node, fleet, now_s: float) -> bool:
    """Whether sleeping ``node`` leaves one of its shards with fewer
    than quorum awake serviceable replicas among the rest of ``fleet``.

    The guard consolidating routers run before every re-sleep: a hot
    shard's last awake replica can never be put to sleep, no matter how
    low the measured demand is.
    """
    if placement is None:
        return False
    shards = getattr(node, "shards", None)
    if not shards:
        return False
    for key in shards:
        quorum = placement.quorum_for(key[0])
        awake = sum(
            1 for other in fleet
            if other is not node and other.awake
            and other.can_serve(now_s) and _holds(other, key)
        )
        if awake < quorum:
            return True
    return False


def quorum_cover(placement, nodes) -> set[str]:
    """A deterministic set of node names keeping >= quorum replicas of
    every shard awake; always includes the first node (matching the
    consolidate routers' placement-free starting set)."""
    cover = {nodes[0].spec.name}
    fleet = {n.spec.name for n in nodes}
    for name in sorted(placement.tables):
        tp = placement.tables[name]
        for shard in range(tp.shards):
            holders = [h for h in tp.nodes_for(shard) if h in fleet]
            need = tp.quorum - sum(1 for h in holders if h in cover)
            for holder in holders:
                if need <= 0:
                    break
                if holder not in cover:
                    cover.add(holder)
                    need -= 1
    return cover


def quorum_wake_candidates(placement, fleet, now_s: float) -> list:
    """Sleeping serviceable nodes whose wake is needed to restore
    >= quorum awake replicas for some shard (crashes and failed wakes
    open such gaps mid-run).  Ordered deterministically by fleet order;
    each candidate is counted against the gaps it closes so the list is
    minimal, not the whole sleeping holder set."""
    if placement is None:
        return []
    deficits: dict[tuple[str, int], int] = {}
    for name in sorted(placement.tables):
        tp = placement.tables[name]
        for shard in range(tp.shards):
            key = (tp.table, shard)
            awake = sum(
                1 for node in fleet
                if node.awake and node.can_serve(now_s)
                and _holds(node, key)
            )
            if awake < tp.quorum:
                deficits[key] = tp.quorum - awake
    if not deficits:
        return []
    candidates = []
    for node in fleet:
        if node.awake or not node.can_serve(now_s):
            continue
        closed = False
        for key, need in deficits.items():
            if need > 0 and _holds(node, key):
                deficits[key] = need - 1
                closed = True
        if closed:
            candidates.append(node)
    return candidates


# -- re-replication copy work -----------------------------------------

#: CPU spent marshalling/shipping each copied byte, at the light duty
#: cycle of a background transfer.
COPY_CPU_CYCLES_PER_BYTE = 0.5
COPY_CPU_UTILIZATION = 0.30
#: Sequential transfer chunk size (one disk op per chunk).
COPY_IO_OP_BYTES = 1 << 20


def replication_copy_trace(shard_bytes: float) -> CompiledTrace:
    """Compiled copy work for re-replicating one shard.

    Billed on *both* endpoints: the source performs the sequential read
    and ships rows, the destination receives and performs the
    sequential write.  The same trace runs on each end (each node bills
    its own modeled duration/energy for it), which keeps the joule
    attribution symmetric without modeling a network link the hardware
    layer does not have.
    """
    if shard_bytes < 0:
        raise ValueError("shard_bytes must be non-negative")
    ops = max(1, math.ceil(shard_bytes / COPY_IO_OP_BYTES))
    return Trace([
        DiskAccess(ops, shard_bytes, sequential=True, write=False,
                   label="re-replicate read"),
        CpuWork(shard_bytes * COPY_CPU_CYCLES_PER_BYTE,
                COPY_CPU_UTILIZATION, label="re-replicate ship"),
        DiskAccess(ops, shard_bytes, sequential=True, write=True,
                   label="re-replicate write"),
    ]).compiled()
