"""Routing policies: where (and when) each arrival runs.

The paper's *global* techniques -- "change the job scheduling method for
the entire system" and "turn entire servers off when not required" --
become routing policies over the simulated fleet:

``RoundRobinRouter``
    The traditional load balancer (``Fleet.spread`` over time): every
    node stays awake, arrivals rotate across the fleet.
``LeastLoadedRouter``
    Shortest-completion-time routing: pick the node that would finish
    the query earliest given its backlog.
``ConsolidateRouter``
    Energy-aware packing (``Fleet.consolidate`` over time): keep as few
    nodes awake as possible, wake the next node only when every awake
    node's backlog exceeds the cap, and pay the wake-latency penalty --
    work never starts on a waking node before its transition completes.
``DynamicConsolidateRouter``
    Consolidate under *time-varying* load: an EWMA of the observed
    arrival rate (optionally cross-checked against a known
    :class:`~repro.workloads.arrivals.RateSchedule`) sizes the awake
    set online -- drained nodes re-sleep when demand drops below a
    hysteresis band, and nodes re-wake *ahead* of scheduled peaks by
    their wake latency.
``AdaptivePvcRouter``
    Per-node online PVC control: every node walks the adaptation ladder
    (:data:`~repro.core.pvc.adaptive.DEFAULT_LADDER`) using its own
    backlog as deadline feedback -- loaded nodes speed up to protect
    response times, idle nodes sink to the cheapest stable setting.
``PowerCapRouter``
    Cap-aware admission: schedule work so the fleet's modeled power
    (linear per-node envelope) never exceeds a wall-power cap, delaying
    queries into power headroom or shedding them when the delay would
    exceed the budget.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from repro.cluster.node import SimulatedNode
from repro.cluster.placement import (
    quorum_cover,
    quorum_wake_candidates,
    sleep_would_break_quorum,
)
from repro.core.pvc.adaptive import DEFAULT_LADDER, ladder_step
from repro.workloads.arrivals import RateSchedule


@dataclass(frozen=True)
class Decision:
    """Where one arrival goes: a node (or None = shed) and the earliest
    time the node may begin servicing it."""

    node: SimulatedNode | None
    dispatch_s: float


class Router:
    """Base policy: all nodes awake, subclass picks the target.

    Stateless-over-arrivals policies may additionally implement
    ``route_chunk`` -- the vectorized fast path the simulator uses to
    route whole structure-of-arrays chunks at once (see
    :func:`sequence_chunk_on_nodes`).  Policies whose decisions depend
    on evolving per-arrival state the chunk form cannot express (sleep
    and wake transitions, EWMA load tracking, power-cap admission)
    simply omit it and keep the exact per-arrival loop.

    When a :class:`~repro.cluster.placement.PlacementMap` is active the
    simulator installs it as ``placement`` (before ``prepare``) and
    narrows the ``nodes`` list passed to ``route`` to the arrival's
    eligible replica set; consolidating subclasses additionally consult
    the map's quorum constraints before sleeping nodes.  Routers whose
    ``route_chunk`` honors an ``eligible`` node mask advertise it via
    ``placement_chunk`` so placement-constrained runs can stay on the
    vectorized path.
    """

    #: Installed by the simulator when a placement map constrains the
    #: run; None reproduces the fully-replicated seed behavior.
    placement = None
    #: Whether ``route_chunk`` accepts the ``eligible`` mask.
    placement_chunk = False

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        """Reset per-run state; called once before the event loop."""
        for node in nodes:
            node.reset(awake=True)

    def route(self, sql: str, now_s: float,
              service_by_node: dict[str, float],
              nodes: list[SimulatedNode]) -> Decision:
        raise NotImplementedError

    def describe(self) -> dict:
        """Scalar configuration for run fingerprints.

        Public scalar attributes only (plus lists whose elements
        describe themselves as scalars, e.g. an adaptive router's PVC
        ladder); underscore-prefixed state is per-run and excluded so
        the fingerprint is stable across runs of the same policy.
        """
        out: dict = {"policy": type(self).__name__}
        for key, value in sorted(vars(self).items()):
            if key.startswith("_"):
                continue
            if value is None or isinstance(value, (bool, int, float, str)):
                out[key] = value
            elif isinstance(value, (list, tuple)):
                parts = [
                    v.describe() if hasattr(v, "describe") else v
                    for v in value
                ]
                if all(
                    isinstance(p, (bool, int, float, str)) for p in parts
                ):
                    out[key] = list(parts)
        return out


def sequence_chunk_on_nodes(
    times: np.ndarray,
    service_s: np.ndarray,
    node_idx: np.ndarray,
    nodes: list[SimulatedNode],
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form FIFO sequencing of an already-routed chunk.

    Given each arrival's target node and service time, computes the
    start/end times the per-arrival loop's ``node.assign`` recurrence
    (``end_i = max(t_i, end_{i-1}) + s_i`` per node) produces, without
    iterating arrivals in Python: with ``S_i = cumsum(s)`` the
    recurrence solves to ``end_i = S_i + cummax(max(t_i, e0) - S_{i-1})``
    where ``e0`` is the node's busy horizon entering the chunk.  Each
    node's ``busy_until`` advances to its last end so consecutive
    chunks chain exactly.
    """
    starts = np.empty_like(times)
    ends = np.empty_like(times)
    for j, node in enumerate(nodes):
        mask = node_idx == j
        t = times[mask]
        if t.size == 0:
            continue
        s = service_s[mask]
        csum = np.cumsum(s)
        anchor = np.maximum(t, node.busy_until) - (csum - s)
        e = csum + np.maximum.accumulate(anchor)
        ends[mask] = e
        # Starts come from the recurrence itself (max of arrival and
        # the previous end), not ``e - s``: re-deriving the max keeps
        # back-to-back pieces exactly contiguous where the closed-form
        # subtraction can land an ulp off and momentarily double-count
        # the node in power-step sweeps.
        prev_e = np.empty_like(e)
        prev_e[0] = node.busy_until
        prev_e[1:] = e[:-1]
        starts[mask] = np.maximum(t, prev_e)
        node.busy_until = float(e[-1])
    return starts, ends


class RoundRobinRouter(Router):
    """Spread placement over time: rotate arrivals across the fleet."""

    def __init__(self) -> None:
        self._next = 0

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        super().prepare(nodes)
        self._next = 0

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        # Rotate past crashed/unavailable nodes; a full cycle with no
        # serviceable node refuses the arrival (the simulator's retry
        # policy takes over when a fault plan is active).
        for _ in range(len(nodes)):
            node = nodes[self._next % len(nodes)]
            self._next += 1
            if not node.can_serve(now_s):
                continue
            if not node.awake:
                # A recovered node rejoins through its wake transition.
                node.wake(now_s)
                if not node.awake:
                    continue
            return Decision(node, now_s)
        return Decision(None, now_s)

    def route_chunk(self, times, sql_idx, service, distinct, nodes):
        """Vectorized spread: arrival ``k`` lands on ``(next+k) mod N``."""
        node_idx = (self._next + np.arange(len(times))) % len(nodes)
        self._next += len(times)
        service_s = service[sql_idx, node_idx]
        starts, ends = sequence_chunk_on_nodes(
            times, service_s, node_idx, nodes
        )
        return node_idx, starts, ends


def earliest_completion_node(
    nodes: list[SimulatedNode],
    now_s: float,
    service_by_node: dict[str, float],
) -> SimulatedNode:
    """The node that would finish the query soonest (ties: node order)."""
    return min(
        nodes,
        key=lambda n: (
            max(now_s, n.ready_s) + service_by_node[n.spec.name]
        ),
    )


class LeastLoadedRouter(Router):
    """Route to the node that would complete the query earliest."""

    placement_chunk = True

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        # Earliest completion first (stable, so fault-free runs pick
        # the same node min() used to); a crashed-then-recovered node
        # rejoins through its wake transition, and if the wake fails
        # the next-best node takes the query.
        pool = sorted(
            (n for n in nodes if n.can_serve(now_s)),
            key=lambda n: (
                max(now_s, n.ready_s) + service_by_node[n.spec.name]
            ),
        )
        for node in pool:
            if not node.awake:
                node.wake(now_s)
                if not node.awake:
                    continue
            return Decision(node, now_s)
        return Decision(None, now_s)

    def route_chunk(self, times, sql_idx, service, distinct, nodes,
                    eligible=None):
        """Argmin form of the earliest-completion rule.

        Exact, not approximate: per arrival, the candidate completion
        vector ``max(busy, t) + service`` is the same float expression
        the loop sorts on, and ``np.argmin`` returns the *first*
        minimum -- the stable sort's node-order tie-break.  The state
        recurrence stays sequential (each choice feeds the next) but
        runs as O(nodes) array ops per arrival instead of building and
        sorting a Python candidate list.

        ``eligible`` (a ``(distinct, nodes)`` bool mask) expresses the
        placement constraint: ineligible completions become ``+inf``,
        which reproduces the loop's sorted-subset choice exactly --
        node order is preserved, so the tie-break is unchanged.
        """
        busy = np.array([node.busy_until for node in nodes])
        node_idx = np.empty(len(times), dtype=np.intp)
        starts = np.empty_like(times)
        ends = np.empty_like(times)
        for k in range(len(times)):
            ready = np.maximum(busy, times[k])
            completion = ready + service[sql_idx[k]]
            if eligible is not None:
                completion = np.where(
                    eligible[sql_idx[k]], completion, np.inf
                )
            j = int(np.argmin(completion))
            node_idx[k] = j
            starts[k] = ready[j]
            ends[k] = completion[j]
            busy[j] = completion[j]
        for j, node in enumerate(nodes):
            node.busy_until = float(busy[j])
        return node_idx, starts, ends


class HashSplitRouter(Router):
    """Template-affinity spread: hash each statement to its home node.

    The routed analogue of QED's :class:`HashSplitPlacement`: a stable
    hash of the SQL text pins every distinct template to one node, so
    repeat arrivals of a template always land where its working set is
    already hot.  All nodes stay awake (like spread); a crashed home
    node falls through to the next slot in hash order until recovery.

    Under a placement map this is real shard routing: the simulator
    narrows ``nodes`` to the owning replica set, so the hash pins each
    template to a *replica* of its shard (falling through to the other
    replicas when that one is down).
    """

    placement_chunk = True

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        first = _stable_hash(sql) % len(nodes)
        for k in range(len(nodes)):
            node = nodes[(first + k) % len(nodes)]
            if not node.can_serve(now_s):
                continue
            if not node.awake:
                node.wake(now_s)
                if not node.awake:
                    continue
            return Decision(node, now_s)
        return Decision(None, now_s)

    def route_chunk(self, times, sql_idx, service, distinct, nodes,
                    eligible=None):
        """Vectorized affinity: hash each template once, then gather.

        With an ``eligible`` mask, each template hashes over its own
        eligible node list (in node order) -- exactly the subset the
        loop path receives from the simulator -- and the chosen index
        maps back to the fleet position.
        """
        if eligible is None:
            home = np.array(
                [_stable_hash(sql) % len(nodes) for sql in distinct],
                dtype=np.intp,
            )
        else:
            home = np.empty(len(distinct), dtype=np.intp)
            for d, sql in enumerate(distinct):
                pool = np.flatnonzero(eligible[d])
                home[d] = pool[_stable_hash(sql) % len(pool)]
        node_idx = home[sql_idx]
        service_s = service[sql_idx, node_idx]
        starts, ends = sequence_chunk_on_nodes(
            times, service_s, node_idx, nodes
        )
        return node_idx, starts, ends


class ConsolidateRouter(Router):
    """Pack arrivals onto the fewest awake nodes; the rest sleep.

    A node accepts work while its backlog (time until it would start
    this query, plus the query itself) stays within ``max_backlog_s``
    scaled by the node's relative ``capacity`` -- the time-domain
    analogue of ``Fleet.consolidate``'s utilization cap.
    When every awake node is over the cap, a sleeping node is woken
    *only if* waking it (wake latency + service) would answer the query
    sooner than the least-loaded awake node -- a short burst therefore
    rides out on the awake set instead of stampeding the whole fleet
    out of sleep.  Otherwise the least-loaded awake node takes the
    overflow (the closed-form model's fall-back-to-spread).
    """

    def __init__(self, max_backlog_s: float):
        if max_backlog_s <= 0:
            raise ValueError("max_backlog_s must be positive")
        self.max_backlog_s = max_backlog_s

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        if not nodes:
            raise ValueError("router needs at least one node")
        self._fleet = list(nodes)
        if self.placement is None:
            awake_names = {nodes[0].spec.name}
        else:
            # Quorum cover: the run starts with every shard's quorum of
            # replicas awake instead of a single node, so consolidation
            # never begins with a shard entirely asleep.
            awake_names = quorum_cover(self.placement, nodes)
        for node in nodes:
            node.reset(awake=node.spec.name in awake_names)

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        usable = [n for n in nodes if n.can_serve(now_s)]
        awake = [n for n in usable if n.awake]
        for node in awake:
            backlog = (
                max(node.ready_s, now_s) - now_s
                + service_by_node[node.spec.name]
            )
            if backlog <= self.max_backlog_s * node.spec.capacity:
                return Decision(node, now_s)
        best_awake = (
            earliest_completion_node(awake, now_s, service_by_node)
            if awake else None
        )
        best_completion = (
            max(now_s, best_awake.ready_s)
            + service_by_node[best_awake.spec.name]
            if best_awake is not None else math.inf
        )
        # Cheapest wake first (stable, so fault-free runs pick the same
        # node the one-shot min() used to).  A wake may *fail* under a
        # fault plan; fall through to the next candidate, and with no
        # awake node at all keep trying sleepers regardless of cost.
        sleepers = sorted(
            (n for n in usable if not n.awake),
            key=lambda n: (
                n.spec.wake_latency_s + service_by_node[n.spec.name]
            ),
        )
        for candidate in sleepers:
            wake_completion = (
                now_s + candidate.spec.wake_latency_s
                + service_by_node[candidate.spec.name]
            )
            if wake_completion >= best_completion:
                break
            candidate.wake(now_s)
            if candidate.awake:
                return Decision(candidate, now_s)
        if best_awake is None:
            return Decision(None, now_s)
        return Decision(best_awake, now_s)


class DynamicConsolidateRouter(ConsolidateRouter):
    """Re-consolidate under time-varying load.

    The one-shot :class:`ConsolidateRouter` only ever *grows* the awake
    set; under a diurnal profile that leaves the whole daytime fleet
    burning idle watts all night.  This policy sizes the awake set
    online from the *offered load* (arrival-rate EWMA x service-time
    EWMA, in Erlangs) against a target utilization:

    * **re-sleep**: when the awake capacity exceeds the needed capacity
      by the ``hysteresis`` band, *drained* nodes (no backlog, no
      queued work) are put back to sleep, never below ``min_awake``;
    * **pre-wake**: when a ``schedule`` is supplied, the policy also
      evaluates the known rate curve one wake-latency *ahead* of now,
      so capacity for a scheduled peak is awake (and through its wake
      transition) by the time the peak arrives;
    * the parent's reactive overflow path remains as the safety valve
      for unscheduled bursts.

    The hysteresis band is what prevents sleep/wake thrash around a
    slowly moving rate; decisions happen at arrival times (the event
    loop's clock), which suffices because an empty stream costs only
    idle/sleep power anyway.
    """

    def __init__(
        self,
        max_backlog_s: float,
        target_utilization: float = 0.7,
        hysteresis: float = 0.3,
        ewma_alpha: float = 0.2,
        schedule: RateSchedule | None = None,
        min_awake: int = 1,
    ):
        super().__init__(max_backlog_s)
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if min_awake < 1:
            raise ValueError("min_awake must be >= 1")
        self.target_utilization = target_utilization
        self.hysteresis = hysteresis
        self.ewma_alpha = ewma_alpha
        self.schedule = schedule
        self.min_awake = min_awake

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        if len(nodes) < self.min_awake:
            raise ValueError("min_awake exceeds the fleet size")
        self._fleet = list(nodes)
        awake_names = {n.spec.name for n in nodes[:self.min_awake]}
        if self.placement is not None:
            awake_names |= quorum_cover(self.placement, nodes)
        for node in nodes:
            node.reset(awake=node.spec.name in awake_names)
        self._last_arrival_s: float | None = None
        self._gap_ewma: float | None = None
        self._service_ewma: float | None = None

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        self._observe(now_s, service_by_node, nodes)
        self._resize_awake_set(now_s, nodes)
        return super().route(sql, now_s, service_by_node, nodes)

    # -- load observation -------------------------------------------------

    def _observe(self, now_s, service_by_node, nodes) -> None:
        alpha = self.ewma_alpha
        if self._last_arrival_s is not None:
            gap = now_s - self._last_arrival_s
            self._gap_ewma = (
                gap if self._gap_ewma is None
                else alpha * gap + (1 - alpha) * self._gap_ewma
            )
        self._last_arrival_s = now_s
        service = sum(
            service_by_node[n.spec.name] for n in nodes
        ) / len(nodes)
        self._service_ewma = (
            service if self._service_ewma is None
            else alpha * service + (1 - alpha) * self._service_ewma
        )

    def _demand_erlangs(self, now_s: float,
                        nodes: list[SimulatedNode]) -> float | None:
        """Offered load (busy-node equivalents): rate x service time.

        Uses the larger of the observed EWMA rate and -- when a rate
        schedule is known -- the scheduled rate one wake latency ahead,
        which is exactly the horizon at which waking a node now pays
        off.  Returns None until both EWMAs have observations.
        """
        if self._gap_ewma is None or self._service_ewma is None:
            return None
        rate = 1.0 / max(self._gap_ewma, 1e-9)
        if self.schedule is not None:
            lookahead = max(
                (n.spec.wake_latency_s for n in nodes if not n.awake),
                default=0.0,
            )
            rate = max(rate, self.schedule.rate_at(now_s + lookahead))
        return rate * self._service_ewma

    # -- awake-set sizing -------------------------------------------------

    def _resize_awake_set(self, now_s: float,
                          nodes: list[SimulatedNode]) -> None:
        usable = [n for n in nodes if n.can_serve(now_s)]
        awake = [n for n in usable if n.awake]
        sleepers = [n for n in usable if not n.awake]

        # Replacement floor: when a crash (or unavailability window)
        # drops the serviceable awake set below ``min_awake``, re-wake
        # the cheapest sleeping replacement immediately -- before the
        # EWMAs have warmed up, and regardless of measured demand.
        while len(awake) < self.min_awake and sleepers:
            node = min(sleepers, key=lambda n: n.spec.wake_latency_s)
            node.wake(now_s)
            sleepers.remove(node)
            if node.awake:  # the wake may fail under a fault plan
                awake.append(node)

        # Quorum floor: crashes and failed wakes can strip a shard of
        # its quorum of awake replicas even while ``min_awake`` holds
        # fleet-wide; re-wake the sleeping holders that close the gap.
        # The check runs over the whole fleet (``prepare``'s node
        # list), not the eligible subset this arrival routed over --
        # the gap may be on shards this arrival never touches.
        if self.placement is not None:
            for node in quorum_wake_candidates(
                self.placement, self._fleet, now_s
            ):
                node.wake(now_s)
                if node in sleepers:
                    sleepers.remove(node)
                    if node.awake:
                        awake.append(node)

        demand = self._demand_erlangs(now_s, nodes)
        if demand is None:
            return
        needed_cap = demand / self.target_utilization
        awake_cap = sum(n.spec.capacity for n in awake)

        # Pre-wake: cheapest transition first (its capacity is usable
        # soonest), until the awake capacity covers the demand.
        while sleepers and awake_cap < needed_cap:
            node = min(sleepers, key=lambda n: n.spec.wake_latency_s)
            node.wake(now_s)
            sleepers.remove(node)
            if not node.awake:  # failed wake adds no capacity
                continue
            awake.append(node)
            awake_cap += node.spec.capacity

        # Re-sleep: walk the awake tail (keep the head nodes hot) and
        # sleep drained nodes while the remaining capacity still clears
        # the demand by the full hysteresis band.  Under a placement
        # map a node additionally stays awake while it is the last
        # awake quorum replica of any shard it holds.
        for node in reversed(awake[self.min_awake:]):
            surplus_ok = (
                awake_cap - node.spec.capacity
                >= needed_cap * (1.0 + self.hysteresis)
            )
            if (
                surplus_ok and node.drained(now_s)
                and not sleep_would_break_quorum(
                    self.placement, node, self._fleet, now_s
                )
            ):
                node.sleep(now_s)
                awake_cap -= node.spec.capacity


class AdaptivePvcRouter(Router):
    """Route least-loaded while adapting each node's PVC level online.

    The single-machine :func:`~repro.core.pvc.adaptive.ladder_step`
    controller, applied per node with *backlog* as the feedback signal:
    before dispatching to the earliest-completion node, the router
    projects this query's response time (queue wait + service at the
    node's current level) against ``deadline_s`` and steps the node's
    ladder level -- up (faster, costlier) when the projection busts the
    deadline, down (cheaper) when it sits under ``slack_threshold x
    deadline``.  A level change applies from the window being
    dispatched onward (the triggering query itself runs -- and is
    costed -- under the stepped setting); playback costs every window
    under the setting it was scheduled at, so batched and loop
    playback stay identical.
    """

    def __init__(self, deadline_s: float,
                 ladder: list | None = None,
                 slack_threshold: float = 0.85):
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.ladder = list(DEFAULT_LADDER) if ladder is None else list(ladder)
        if not self.ladder:
            raise ValueError("ladder must not be empty")
        if not 0.0 < slack_threshold <= 1.0:
            raise ValueError("slack_threshold must be in (0, 1]")
        self.deadline_s = deadline_s
        self.slack_threshold = slack_threshold

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        super().prepare(nodes)
        # Start every node at the cheapest stable setting, as the
        # single-machine controller does; load walks them up.
        self._level = {n.spec.name: len(self.ladder) - 1 for n in nodes}
        for node in nodes:
            node.set_setting(self.ladder[self._level[node.spec.name]],
                             0.0)

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        pool = sorted(
            (n for n in nodes if n.can_serve(now_s)),
            key=lambda n: (
                max(now_s, n.ready_s) + service_by_node[n.spec.name]
            ),
        )
        node = None
        for candidate in pool:
            if not candidate.awake:
                # A recovered node rejoins through its wake transition.
                candidate.wake(now_s)
                if not candidate.awake:
                    continue
            node = candidate
            break
        if node is None:
            return Decision(None, now_s)
        name = node.spec.name
        projected = (
            max(now_s, node.ready_s) - now_s + service_by_node[name]
        )
        level = self._level[name]
        stepped = ladder_step(level, projected, self.deadline_s,
                              len(self.ladder), self.slack_threshold)
        if stepped != level:
            self._level[name] = stepped
            node.set_setting(self.ladder[stepped], now_s)
        return Decision(node, now_s)


# -- master-queue batch placement ------------------------------------------


def _stable_hash(value: object) -> int:
    """Process-independent hash of a routing value (``PYTHONHASHSEED``
    randomizes builtin ``hash`` for strings, which would make shard
    placement -- and therefore every simulated energy number --
    unreproducible across runs)."""
    return zlib.crc32(repr(value).encode())


class BatchPlacement:
    """Where a master-queue batch runs: a policy over *whole batches*.

    The master queue (see :mod:`repro.cluster.master_queue`) dispatches
    merged batches rather than single queries, so placement is a
    separate policy axis from per-arrival routing: ``place`` maps one
    dispatched batch to one or more ``(node, queries)`` assignments.
    Splitting a batch keeps each shard mergeable (shards of a mergeable
    partition share its template).

    ``service_by_node`` estimates one representative query of the batch
    on every node -- enough for load comparison; the exact merged cost
    is resolved per node when the shard is scheduled.
    """

    def prepare(self, router: Router,
                nodes: list[SimulatedNode]) -> None:
        """Bind the run's router (called once before the event loop,
        after ``router.prepare``)."""
        self.router = router

    @property
    def placement(self):
        """The run's data-placement map (via the bound router); None
        until ``prepare`` binds a router or when no map is active."""
        return getattr(self.router, "placement", None)

    def place(self, batch, merged, now_s: float,
              service_by_node, nodes: list[SimulatedNode]):
        """``[(node, queries), ...]`` covering every query in ``batch``
        exactly once (empty list: shed the whole batch).  Under a
        placement map the simulator pre-groups batches by shard and
        passes the owning replica set as ``nodes``."""
        raise NotImplementedError

    @staticmethod
    def _usable(nodes: list[SimulatedNode],
                now_s: float) -> list[SimulatedNode]:
        """Serviceable awake nodes, else serviceable sleepers (a fully
        asleep fleet falls back to waking); crashed/unavailable nodes
        never appear."""
        pool = [n for n in nodes if n.can_serve(now_s)]
        awake = [n for n in pool if n.awake]
        return awake or pool

    def _place_least_loaded(self, batch, now_s, service_by_node, nodes):
        """Whole batch to the earliest-completion usable node; a
        sleeper whose wake fails under a fault plan is skipped, and an
        empty list sheds the batch into the simulator's retry path."""
        pool = sorted(
            self._usable(nodes, now_s),
            key=lambda n: (
                max(now_s, n.ready_s) + service_by_node[n.spec.name]
            ),
        )
        for node in pool:
            if not node.awake:
                node.wake(now_s)
            if not node.awake:
                continue
            return [(node, batch.queries)]
        return []


class LeastLoadedPlacement(BatchPlacement):
    """The whole batch goes to the awake node finishing it soonest."""

    def place(self, batch, merged, now_s, service_by_node, nodes):
        return self._place_least_loaded(
            batch, now_s, service_by_node, nodes
        )


class ConsolidatePlacement(BatchPlacement):
    """Delegate placement to the run's (consolidate-family) router.

    Each dispatched batch is routed like one arrival, so a
    :class:`DynamicConsolidateRouter` keeps doing its awake-set sizing
    -- EWMA observation, re-sleeping drained nodes, pre-waking ahead of
    scheduled peaks -- off the master queue's *dispatch* stream.  Fewer,
    larger dispatches concentrate work, which is exactly what lets the
    awake set shrink below what per-arrival routing sustains.
    """

    def place(self, batch, merged, now_s, service_by_node, nodes):
        decision = self.router.route(
            batch.queries[0].sql, now_s, service_by_node, nodes
        )
        if decision.node is None:
            return []
        return [(decision.node, batch.queries)]


class HashSplitPlacement(BatchPlacement):
    """Split one merged batch across awake nodes by routing value.

    When the merged query is hash-routable (every predicate
    ``column = literal``; :attr:`MergedQuery.routing_column`), the
    batch's queries shard by ``hash(value) % k`` over the ``k``
    least-loaded awake nodes -- one smaller merged execution per shard,
    in parallel, the way a real deployment would fan a fleet-wide batch
    out over replicas.  Non-routable (or singleton) batches fall back
    to least-loaded whole-batch placement.
    """

    def __init__(self, fanout: int | None = None):
        if fanout is not None and fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = fanout

    def place(self, batch, merged, now_s, service_by_node, nodes):
        if self.placement is not None:
            # Real shard routing: the simulator has already split the
            # dispatched batch by shard and narrowed ``nodes`` to the
            # owning replica set, so the remaining decision is which
            # live replica serves the piece -- the least-loaded one.
            return self._place_least_loaded(
                batch, now_s, service_by_node, nodes
            )
        targets = sorted(
            self._usable(nodes, now_s),
            key=lambda n: (
                max(now_s, n.ready_s) + service_by_node[n.spec.name],
                n.spec.name,
            ),
        )
        if not targets:
            return []
        k = min(len(targets), self.fanout or len(targets), batch.size)
        if merged is None or not merged.hash_routable or k < 2:
            for node in targets:
                if not node.awake:
                    node.wake(now_s)
                if not node.awake:  # wake failed; try the next target
                    continue
                return [(node, batch.queries)]
            return []
        targets = targets[:k]
        shards: list[list] = [[] for _ in range(k)]
        for query, value in zip(batch.queries, merged.routing_values):
            # Builtin hash() is randomized per process for strings;
            # shard placement must be reproducible across runs.
            shards[_stable_hash(value) % k].append(query)
        out = []
        orphans: list = []
        for node, shard in zip(targets, shards):
            if not shard:
                continue
            if not node.awake:
                node.wake(now_s)
            if not node.awake:  # wake failed; reassign this shard
                orphans.extend(shard)
                continue
            out.append((node, shard))
        if orphans:
            if not out:
                return []
            node, shard = out[0]
            out[0] = (node, list(shard) + orphans)
        return out


@dataclass(frozen=True)
class _Interval:
    start_s: float
    end_s: float
    delta_w: float


class PowerCapRouter(Router):
    """Keep the fleet's modeled wall power under ``cap_w``.

    Every node stays awake (the cap constrains *activity*, not
    provisioning); each busy window adds its node's ``busy - idle``
    power delta on top of the all-idle baseline.  A query is placed on
    the node that can complete it earliest without the fleet's modeled
    power exceeding the cap at any instant -- delaying its start into
    headroom if needed.  If the required delay exceeds ``max_delay_s``
    the query is shed (``Decision(node=None)``).
    """

    def __init__(self, cap_w: float, max_delay_s: float | None = None):
        if cap_w <= 0:
            raise ValueError("cap_w must be positive")
        if max_delay_s is not None and max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self.cap_w = cap_w
        self.max_delay_s = max_delay_s
        self._baseline_w = 0.0
        self._deltas: dict[str, float] = {}
        self._intervals: list[_Interval] = []

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        super().prepare(nodes)
        if any(node.queue is not None for node in nodes):
            # A per-node QED queue re-times work after routing (merged
            # batch windows the router never saw), which would silently
            # void the cap guarantee.
            raise ValueError(
                "PowerCapRouter cannot cap nodes with QED queues; "
                "drop the queue policy or use another router"
            )
        self._intervals = []
        self._deltas = {}
        self._baseline_w = 0.0
        for node in nodes:
            est = node.power_estimate()
            self._deltas[node.spec.name] = est.busy_wall_w - est.idle_wall_w
            self._baseline_w += est.idle_wall_w
        if self._baseline_w > self.cap_w:
            raise ValueError(
                f"cap {self.cap_w} W is below the fleet's idle floor "
                f"{self._baseline_w:.1f} W"
            )
        if self._baseline_w + min(self._deltas.values()) > self.cap_w:
            raise ValueError(
                "cap leaves no headroom for any node to serve a query"
            )

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        # Completed windows can never constrain future placements.
        self._intervals = [
            iv for iv in self._intervals if iv.end_s > now_s
        ]
        best: tuple[float, float, SimulatedNode] | None = None
        for node in nodes:
            if not node.can_serve(now_s):
                continue
            if not node.awake:
                # A recovered node rejoins through its wake transition.
                node.wake(now_s)
                if not node.awake:
                    continue
            delta = self._deltas[node.spec.name]
            if self._baseline_w + delta > self.cap_w:
                continue  # this node alone would breach the cap
            service = service_by_node[node.spec.name]
            s0 = max(now_s, node.ready_s)
            start = self._earliest_feasible(s0, service, delta)
            if (
                self.max_delay_s is not None
                and start - now_s > self.max_delay_s
            ):
                continue  # this node can't start soon enough
            completion = start + service
            if best is None or completion < best[0]:
                best = (completion, start, node)
        if best is None:
            # No node both fits under the cap and meets the delay bound.
            return Decision(None, now_s)
        completion, start, node = best
        self._intervals.append(
            _Interval(start, completion, self._deltas[node.spec.name])
        )
        return Decision(node, start)

    def _earliest_feasible(self, s0: float, service_s: float,
                           delta_w: float) -> float:
        """Earliest start >= s0 keeping modeled power <= cap throughout.

        Candidate starts are ``s0`` and the ends of currently scheduled
        windows -- modeled power only drops at window ends, so the first
        feasible candidate is (conservatively) the earliest placement.
        """
        active = [iv for iv in self._intervals if iv.end_s > s0]
        headroom = self.cap_w - self._baseline_w - delta_w
        candidates = sorted(
            {s0} | {iv.end_s for iv in active if iv.end_s > s0}
        )
        for start in candidates:
            if self._peak_overlap(active, start,
                                  start + service_s) <= headroom + 1e-9:
                return start
        # Unreachable: after the last active window ends nothing overlaps,
        # and prepare() guarantees baseline + delta <= cap.
        return candidates[-1]  # pragma: no cover

    @staticmethod
    def _peak_overlap(active: list[_Interval], start_s: float,
                      end_s: float) -> float:
        """Peak concurrent power delta from ``active`` inside a window."""
        events: list[tuple[float, float]] = []
        for iv in active:
            a = max(iv.start_s, start_s)
            b = min(iv.end_s, end_s)
            if b > a:
                events.append((a, iv.delta_w))
                events.append((b, -iv.delta_w))
        events.sort(key=lambda e: (e[0], e[1]))
        run = peak = 0.0
        for _, d in events:
            run += d
            peak = max(peak, run)
        return peak
