"""Routing policies: where (and when) each arrival runs.

The paper's *global* techniques -- "change the job scheduling method for
the entire system" and "turn entire servers off when not required" --
become routing policies over the simulated fleet:

``RoundRobinRouter``
    The traditional load balancer (``Fleet.spread`` over time): every
    node stays awake, arrivals rotate across the fleet.
``LeastLoadedRouter``
    Shortest-completion-time routing: pick the node that would finish
    the query earliest given its backlog.
``ConsolidateRouter``
    Energy-aware packing (``Fleet.consolidate`` over time): keep as few
    nodes awake as possible, wake the next node only when every awake
    node's backlog exceeds the cap, and pay the wake-latency penalty --
    work never starts on a waking node before its transition completes.
``PowerCapRouter``
    Cap-aware admission: schedule work so the fleet's modeled power
    (linear per-node envelope) never exceeds a wall-power cap, delaying
    queries into power headroom or shedding them when the delay would
    exceed the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import SimulatedNode


@dataclass(frozen=True)
class Decision:
    """Where one arrival goes: a node (or None = shed) and the earliest
    time the node may begin servicing it."""

    node: SimulatedNode | None
    dispatch_s: float


class Router:
    """Base policy: all nodes awake, subclass picks the target."""

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        """Reset per-run state; called once before the event loop."""
        for node in nodes:
            node.reset(awake=True)

    def route(self, sql: str, now_s: float,
              service_by_node: dict[str, float],
              nodes: list[SimulatedNode]) -> Decision:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Spread placement over time: rotate arrivals across the fleet."""

    def __init__(self) -> None:
        self._next = 0

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        super().prepare(nodes)
        self._next = 0

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        node = nodes[self._next % len(nodes)]
        self._next += 1
        return Decision(node, now_s)


def earliest_completion_node(
    nodes: list[SimulatedNode],
    now_s: float,
    service_by_node: dict[str, float],
) -> SimulatedNode:
    """The node that would finish the query soonest (ties: node order)."""
    return min(
        nodes,
        key=lambda n: (
            max(now_s, n.ready_s) + service_by_node[n.spec.name]
        ),
    )


class LeastLoadedRouter(Router):
    """Route to the node that would complete the query earliest."""

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        return Decision(
            earliest_completion_node(nodes, now_s, service_by_node),
            now_s,
        )


class ConsolidateRouter(Router):
    """Pack arrivals onto the fewest awake nodes; the rest sleep.

    A node accepts work while its backlog (time until it would start
    this query, plus the query itself) stays within ``max_backlog_s`` --
    the time-domain analogue of ``Fleet.consolidate``'s utilization cap.
    When every awake node is over the cap, a sleeping node is woken
    *only if* waking it (wake latency + service) would answer the query
    sooner than the least-loaded awake node -- a short burst therefore
    rides out on the awake set instead of stampeding the whole fleet
    out of sleep.  Otherwise the least-loaded awake node takes the
    overflow (the closed-form model's fall-back-to-spread).
    """

    def __init__(self, max_backlog_s: float):
        if max_backlog_s <= 0:
            raise ValueError("max_backlog_s must be positive")
        self.max_backlog_s = max_backlog_s

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        if not nodes:
            raise ValueError("router needs at least one node")
        nodes[0].reset(awake=True)
        for node in nodes[1:]:
            node.reset(awake=False)

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        awake = [n for n in nodes if n.awake]
        for node in awake:
            backlog = (
                max(node.ready_s, now_s) - now_s
                + service_by_node[node.spec.name]
            )
            if backlog <= self.max_backlog_s:
                return Decision(node, now_s)
        best_awake = earliest_completion_node(
            awake, now_s, service_by_node
        )
        best_completion = (
            max(now_s, best_awake.ready_s)
            + service_by_node[best_awake.spec.name]
        )
        sleepers = [n for n in nodes if not n.awake]
        if sleepers:
            candidate = min(
                sleepers,
                key=lambda n: (
                    n.spec.wake_latency_s
                    + service_by_node[n.spec.name]
                ),
            )
            wake_completion = (
                now_s + candidate.spec.wake_latency_s
                + service_by_node[candidate.spec.name]
            )
            if wake_completion < best_completion:
                candidate.wake(now_s)
                return Decision(candidate, now_s)
        return Decision(best_awake, now_s)


@dataclass(frozen=True)
class _Interval:
    start_s: float
    end_s: float
    delta_w: float


class PowerCapRouter(Router):
    """Keep the fleet's modeled wall power under ``cap_w``.

    Every node stays awake (the cap constrains *activity*, not
    provisioning); each busy window adds its node's ``busy - idle``
    power delta on top of the all-idle baseline.  A query is placed on
    the node that can complete it earliest without the fleet's modeled
    power exceeding the cap at any instant -- delaying its start into
    headroom if needed.  If the required delay exceeds ``max_delay_s``
    the query is shed (``Decision(node=None)``).
    """

    def __init__(self, cap_w: float, max_delay_s: float | None = None):
        if cap_w <= 0:
            raise ValueError("cap_w must be positive")
        if max_delay_s is not None and max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self.cap_w = cap_w
        self.max_delay_s = max_delay_s
        self._baseline_w = 0.0
        self._deltas: dict[str, float] = {}
        self._intervals: list[_Interval] = []

    def prepare(self, nodes: list[SimulatedNode]) -> None:
        super().prepare(nodes)
        if any(node.queue is not None for node in nodes):
            # A per-node QED queue re-times work after routing (merged
            # batch windows the router never saw), which would silently
            # void the cap guarantee.
            raise ValueError(
                "PowerCapRouter cannot cap nodes with QED queues; "
                "drop the queue policy or use another router"
            )
        self._intervals = []
        self._deltas = {}
        self._baseline_w = 0.0
        for node in nodes:
            est = node.power_estimate()
            self._deltas[node.spec.name] = est.busy_wall_w - est.idle_wall_w
            self._baseline_w += est.idle_wall_w
        if self._baseline_w > self.cap_w:
            raise ValueError(
                f"cap {self.cap_w} W is below the fleet's idle floor "
                f"{self._baseline_w:.1f} W"
            )
        if self._baseline_w + min(self._deltas.values()) > self.cap_w:
            raise ValueError(
                "cap leaves no headroom for any node to serve a query"
            )

    def route(self, sql, now_s, service_by_node, nodes) -> Decision:
        # Completed windows can never constrain future placements.
        self._intervals = [
            iv for iv in self._intervals if iv.end_s > now_s
        ]
        best: tuple[float, float, SimulatedNode] | None = None
        for node in nodes:
            delta = self._deltas[node.spec.name]
            if self._baseline_w + delta > self.cap_w:
                continue  # this node alone would breach the cap
            service = service_by_node[node.spec.name]
            s0 = max(now_s, node.ready_s)
            start = self._earliest_feasible(s0, service, delta)
            if (
                self.max_delay_s is not None
                and start - now_s > self.max_delay_s
            ):
                continue  # this node can't start soon enough
            completion = start + service
            if best is None or completion < best[0]:
                best = (completion, start, node)
        if best is None:
            # No node both fits under the cap and meets the delay bound.
            return Decision(None, now_s)
        completion, start, node = best
        self._intervals.append(
            _Interval(start, completion, self._deltas[node.spec.name])
        )
        return Decision(node, start)

    def _earliest_feasible(self, s0: float, service_s: float,
                           delta_w: float) -> float:
        """Earliest start >= s0 keeping modeled power <= cap throughout.

        Candidate starts are ``s0`` and the ends of currently scheduled
        windows -- modeled power only drops at window ends, so the first
        feasible candidate is (conservatively) the earliest placement.
        """
        active = [iv for iv in self._intervals if iv.end_s > s0]
        headroom = self.cap_w - self._baseline_w - delta_w
        candidates = sorted(
            {s0} | {iv.end_s for iv in active if iv.end_s > s0}
        )
        for start in candidates:
            if self._peak_overlap(active, start,
                                  start + service_s) <= headroom + 1e-9:
                return start
        # Unreachable: after the last active window ends nothing overlaps,
        # and prepare() guarantees baseline + delta <= cap.
        return candidates[-1]  # pragma: no cover

    @staticmethod
    def _peak_overlap(active: list[_Interval], start_s: float,
                      end_s: float) -> float:
        """Peak concurrent power delta from ``active`` inside a window."""
        events: list[tuple[float, float]] = []
        for iv in active:
            a = max(iv.start_s, start_s)
            b = min(iv.end_s, end_s)
            if b > a:
                events.append((a, iv.delta_w))
                events.append((b, -iv.delta_w))
        events.sort(key=lambda e: (e[0], e[1]))
        run = peak = 0.0
        for _, d in events:
            run += d
            peak = max(peak, run)
        return peak
