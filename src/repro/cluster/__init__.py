"""Cluster simulation: arrival streams served across a simulated fleet.

The paper's *global* energy techniques made concrete: a discrete-event
simulator routes an :class:`~repro.workloads.arrivals.Arrival` stream
across nodes that each wrap a
:class:`~repro.hardware.system.SystemUnderTest` with its own PVC
setting (and optionally a per-node QED queue), under pluggable routing
policies -- spread, least-loaded, consolidate-with-sleep, *dynamic*
re-consolidation (EWMA-sized awake set that re-sleeps drained nodes
and pre-wakes ahead of scheduled peaks), adaptive per-node PVC
control, power-cap.  QED can instead run the paper's actual deployment
design: a :class:`MasterQueue` on the always-on coordinator partitions
the whole arrival stream by mergeable template and hands merged
batches to a :class:`BatchPlacement` policy (least-loaded,
consolidate-cooperating, or hash-split across nodes).  Fleets may be heterogeneous: node groups differ
in hardware profile, PVC setting, capacity, and sleep/wake
characteristics.  The hot path is batched compiled-trace playback:
every node's whole timeline plays as one stacked array operation per
distinct (hardware profile, setting) pair.
"""

from repro.cluster.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    load_fault_plan,
)
from repro.cluster.master_queue import (
    DispatchedBatch,
    MasterQueue,
    PASSTHROUGH,
)
from repro.cluster.measure import (
    ClusterMeasurement,
    FaultReport,
    NodeUsage,
    PhaseWindow,
    QedPartitionStats,
    QedReport,
    QueryResponse,
    ResponseColumns,
    ShedQuery,
)
from repro.cluster.placement import (
    PlacementMap,
    TablePlacement,
    generate_placement,
    load_placement,
)
from repro.cluster.node import (
    NodeGroup,
    NodeSpec,
    SUT_FACTORIES,
    SimulatedNode,
    hetero_fleet,
    uniform_fleet,
)
from repro.cluster.playback import (
    play_batched,
    play_columnar,
    play_loop,
    playback_groups,
)
from repro.cluster.routing import (
    AdaptivePvcRouter,
    BatchPlacement,
    ConsolidatePlacement,
    ConsolidateRouter,
    Decision,
    DynamicConsolidateRouter,
    HashSplitPlacement,
    HashSplitRouter,
    LeastLoadedPlacement,
    LeastLoadedRouter,
    PowerCapRouter,
    RoundRobinRouter,
    Router,
)
from repro.cluster.simulator import (
    ClusterSchedule,
    ClusterSimulator,
    ColumnarSchedule,
)

__all__ = [
    "AdaptivePvcRouter",
    "BatchPlacement",
    "ClusterMeasurement",
    "ClusterSchedule",
    "ClusterSimulator",
    "ColumnarSchedule",
    "ConsolidatePlacement",
    "ConsolidateRouter",
    "Decision",
    "DispatchedBatch",
    "DynamicConsolidateRouter",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "HashSplitPlacement",
    "HashSplitRouter",
    "LeastLoadedPlacement",
    "LeastLoadedRouter",
    "MasterQueue",
    "NodeGroup",
    "NodeSpec",
    "NodeUsage",
    "PASSTHROUGH",
    "PhaseWindow",
    "PlacementMap",
    "PowerCapRouter",
    "QedPartitionStats",
    "QedReport",
    "QueryResponse",
    "ResponseColumns",
    "RetryPolicy",
    "RoundRobinRouter",
    "Router",
    "SUT_FACTORIES",
    "ShedQuery",
    "SimulatedNode",
    "TablePlacement",
    "generate_placement",
    "hetero_fleet",
    "load_fault_plan",
    "load_placement",
    "play_batched",
    "play_columnar",
    "play_loop",
    "playback_groups",
    "uniform_fleet",
]
