"""Cluster simulation: arrival streams served across a simulated fleet.

The paper's *global* energy techniques made concrete: a discrete-event
simulator routes an :class:`~repro.workloads.arrivals.Arrival` stream
across nodes that each wrap a
:class:`~repro.hardware.system.SystemUnderTest` with its own PVC
setting (and optionally a per-node QED queue), under pluggable routing
policies -- spread, least-loaded, consolidate-with-sleep, power-cap.
The hot path is batched compiled-trace playback: every node's whole
timeline plays as one stacked array operation per distinct setting.
"""

from repro.cluster.measure import (
    ClusterMeasurement,
    NodeUsage,
    QueryResponse,
    ShedQuery,
)
from repro.cluster.node import NodeSpec, SimulatedNode, uniform_fleet
from repro.cluster.playback import play_batched, play_loop, playback_groups
from repro.cluster.routing import (
    ConsolidateRouter,
    Decision,
    LeastLoadedRouter,
    PowerCapRouter,
    RoundRobinRouter,
    Router,
)
from repro.cluster.simulator import ClusterSchedule, ClusterSimulator

__all__ = [
    "ClusterMeasurement",
    "ClusterSchedule",
    "ClusterSimulator",
    "ConsolidateRouter",
    "Decision",
    "LeastLoadedRouter",
    "NodeSpec",
    "NodeUsage",
    "PowerCapRouter",
    "QueryResponse",
    "RoundRobinRouter",
    "Router",
    "ShedQuery",
    "SimulatedNode",
    "play_batched",
    "play_loop",
    "playback_groups",
    "uniform_fleet",
]
