"""Discrete-event cluster simulation over batched compiled-trace playback.

The paper's deployment story at production scale: an arrival stream of
queries hits a master, a routing policy places each query on a node
(possibly waking it, delaying it, or shedding it), per-node QED queues
may batch arrivals into merged executions, and every node is the
calibrated machine model pinned to its own PVC operating point.

The simulation is split into two phases so the hot path stays a handful
of array operations:

1. :meth:`ClusterSimulator.schedule` -- resolve each arrival to a cached
   :class:`~repro.workloads.runner.QueryExecution` (execute-once: each
   distinct statement hits the database once, results are evicted once
   the trace compiles), pre-cost each distinct query per playback group
   with one ``run_compiled_batch`` call, then run the event loop in pure
   Python over floats.  Produces a :class:`ClusterSchedule`: per-node
   timelines (busy windows + idle/wake gaps) as compiled-trace pieces.
2. :meth:`ClusterSimulator.playback` -- play every node's whole timeline
   with one stacked array call per distinct PVC setting
   (:func:`~repro.cluster.playback.play_batched`), or per piece
   (:func:`~repro.cluster.playback.play_loop`, the perf baseline), and
   compose the :class:`~repro.cluster.measure.ClusterMeasurement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.measure import (
    ClusterMeasurement,
    NodeUsage,
    QueryResponse,
    ShedQuery,
)
from repro.cluster.node import NodeSpec, SimulatedNode, TimelineAccounting
from repro.cluster.playback import play_batched, play_loop, playback_groups
from repro.cluster.routing import Router
from repro.core.qed.aggregator import merge_queries
from repro.core.qed.executor import merged_batch_execution
from repro.core.qed.queue import Batch
from repro.db.engine import Database
from repro.hardware.profiles import paper_sut
from repro.hardware.system import SystemUnderTest
from repro.hardware.trace import CompiledTrace
from repro.workloads.arrivals import Arrival
from repro.workloads.client import ClientModel
from repro.workloads.runner import TraceCache, WorkloadRunner


@dataclass(frozen=True)
class NodeTimeline(TimelineAccounting):
    """Immutable snapshot of one node's run, taken at schedule time.

    ``ClusterSchedule`` must not alias live :class:`SimulatedNode`
    state: a later ``schedule()`` call on the same simulator resets the
    nodes, and playing back an earlier schedule would otherwise mix two
    runs' bookkeeping.
    """

    spec: NodeSpec
    sut: SystemUnderTest
    scheduled: tuple
    started_awake: bool
    wake_called_s: float | None
    wake_ready_s: float

    @classmethod
    def snapshot(cls, node: SimulatedNode) -> "NodeTimeline":
        return cls(
            spec=node.spec,
            sut=node.sut,
            scheduled=tuple(node.scheduled),
            started_awake=node.started_awake,
            wake_called_s=node.wake_called_s,
            wake_ready_s=node.wake_ready_s,
        )


@dataclass
class ClusterSchedule:
    """The event loop's outcome: who runs what, when, on which node."""

    nodes: list[NodeTimeline]
    table: dict[str, CompiledTrace]
    pieces_by_node: dict[str, list[CompiledTrace]]
    horizon_s: float
    shed: list[ShedQuery]
    peak_power_w: float
    cap_w: float | None
    workload_class: str

    @property
    def scheduled_pieces(self) -> int:
        return sum(len(p) for p in self.pieces_by_node.values())


class ClusterSimulator:
    """Serve an arrival stream across a simulated fleet.

    Every node's machine comes from ``sut_factory`` (default: the
    calibrated paper machine) with its spec's PVC setting applied, which
    keeps same-setting nodes playback-equivalent -- the property batched
    playback exploits.  The shared database models fully replicated
    data: any node can serve any query.
    """

    def __init__(
        self,
        db: Database,
        specs: list[NodeSpec],
        router: Router,
        sut_factory: Callable[[], SystemUnderTest] | None = None,
        client: ClientModel | None = None,
        trace_cache: TraceCache | None = None,
    ):
        if not specs:
            raise ValueError("a cluster needs at least one node")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        factory = sut_factory if sut_factory is not None else paper_sut
        self.db = db
        self.router = router
        self.runner = WorkloadRunner(
            db, factory(), client=client, trace_cache=trace_cache
        )
        self.nodes: list[SimulatedNode] = []
        for spec in specs:
            sut = factory()
            sut.apply_setting(spec.setting)
            self.nodes.append(SimulatedNode(spec, sut))

    # -- phase 1: event loop ---------------------------------------------

    def schedule(self, arrivals: list[Arrival]) -> ClusterSchedule:
        """Route every arrival; returns the fleet's scheduled timelines."""
        if not arrivals:
            raise ValueError("need at least one arrival")
        arrivals = sorted(arrivals, key=lambda a: a.time_s)
        workload_class = self.db.workload_class

        # Execute-once: each distinct statement hits the database once;
        # row data is evicted as soon as the trace is compiled.
        table: dict[str, CompiledTrace] = {}
        for i, sql in enumerate(dict.fromkeys(a.sql for a in arrivals)):
            execution = self.runner.cached_execution(
                sql, label=f"c{i}", keep_result=False
            )
            table[sql] = execution.compiled_trace()

        # Pre-cost each distinct query per playback group: one stacked
        # call per distinct setting replaces a per-(query, node) loop.
        groups = playback_groups(self.nodes)
        group_of = {
            node.spec.name: gi
            for gi, group in enumerate(groups)
            for node in group
        }
        distinct = list(table)
        durations: list[dict[str, float]] = []
        for group in groups:
            batch = group[0].sut.run_compiled_batch(
                [table[sql] for sql in distinct], workload_class
            )
            durations.append({
                sql: m.duration_s for sql, m in zip(distinct, batch)
            })

        # Per-distinct-SQL service maps, shared across arrivals (the
        # event loop would otherwise rebuild an identical dict ~10k
        # times); routers only read them.
        service_maps = {
            sql: {
                node.spec.name: durations[group_of[node.spec.name]][sql]
                for node in self.nodes
            }
            for sql in distinct
        }

        self.router.prepare(self.nodes)
        shed: list[ShedQuery] = []
        queued = [n for n in self.nodes if n.queue is not None]
        for arrival in arrivals:
            now = arrival.time_s
            for node in queued:  # timeout-based QED dispatches
                batch = self._expire_queue(node, now)
                if batch is not None:
                    self._schedule_batch(
                        node, batch, table, durations,
                        group_of, workload_class,
                    )
            service_by_node = service_maps[arrival.sql]
            decision = self.router.route(
                arrival.sql, now, service_by_node, self.nodes
            )
            if decision.node is None:
                shed.append(ShedQuery(arrival.sql, now))
                continue
            node = decision.node
            if node.queue is not None:
                batch = node.queue.submit(arrival.sql, now)
                if batch is not None:
                    self._schedule_batch(
                        node, batch, table, durations,
                        group_of, workload_class,
                    )
            else:
                node.assign(
                    arrival.sql, decision.dispatch_s,
                    service_by_node[node.spec.name],
                    ((arrival.sql, now),),
                )
        end_of_arrivals = arrivals[-1].time_s
        for node in queued:  # trailing partial batches drain
            if len(node.queue) == 0:
                continue
            # A timeout policy would fire on its own at the oldest
            # query's expiry (possibly after the last arrival); a
            # threshold-only queue is drained at end of arrivals.
            flush_at = self._queue_expiry(node)
            if flush_at is None or flush_at < end_of_arrivals:
                flush_at = end_of_arrivals
            batch = node.queue.flush(flush_at)
            if batch is not None:
                self._schedule_batch(
                    node, batch, table, durations, group_of,
                    workload_class,
                )

        horizon = end_of_arrivals
        for node in self.nodes:
            horizon = max(horizon, node.busy_until)
            if node.awake:
                horizon = max(horizon, node.wake_ready_s)
        pieces_by_node = {
            node.spec.name: node.pieces(table, horizon)
            for node in self.nodes
        }
        return ClusterSchedule(
            nodes=[NodeTimeline.snapshot(n) for n in self.nodes],
            table=table,
            pieces_by_node=pieces_by_node,
            horizon_s=horizon,
            shed=shed,
            peak_power_w=self._peak_model_power_w(horizon),
            cap_w=getattr(self.router, "cap_w", None),
            workload_class=workload_class,
        )

    @staticmethod
    def _queue_expiry(node: SimulatedNode) -> float | None:
        """When the node's queue timeout would fire (None: no timeout)."""
        policy = node.spec.queue_policy
        if policy is None or policy.max_wait_s is None:
            return None
        oldest = node.queue.oldest_arrival_s
        if oldest is None:
            return None
        return oldest + policy.max_wait_s

    def _expire_queue(self, node: SimulatedNode, now_s: float):
        """Dispatch a timed-out batch *at its expiry*, not at ``now``.

        Between sparse arrivals the queue's timeout fires on its own;
        ticking it at the next arrival's timestamp would charge the
        whole inter-arrival gap to the batch's response times.
        """
        expiry = self._queue_expiry(node)
        if expiry is None or expiry > now_s:
            return None
        # flush (not tick): float addition noise in the expiry must not
        # leave the policy un-fired and the batch stranded.
        return node.queue.flush(expiry)

    def _schedule_batch(
        self,
        node: SimulatedNode,
        batch: Batch,
        table: dict[str, CompiledTrace],
        durations: list[dict[str, float]],
        group_of: dict[str, int],
        workload_class: str,
    ) -> None:
        """Serve a dispatched QED batch as one merged execution.

        The batch becomes a single disjunctive query plus the
        client-side split work (built by the same
        :func:`~repro.core.qed.executor.merged_batch_execution` helper
        the QED experiment uses), and every query in the batch completes
        when the merged window does.
        """
        merged = merge_queries(batch.sqls)
        key = merged.sql
        if key not in table:
            execution, trace = merged_batch_execution(
                self.runner, merged
            )
            table[key] = trace.compiled()
            execution.release_result()
        gi = group_of[node.spec.name]
        if key not in durations[gi]:
            durations[gi][key] = node.sut.run_compiled(
                table[key], workload_class
            ).duration_s
        node.assign(
            key, batch.dispatch_s, durations[gi][key],
            tuple((q.sql, q.arrival_s) for q in batch.queries),
        )

    def _peak_model_power_w(self, horizon_s: float) -> float:
        """Peak fleet power under the linear per-node envelope.

        The same model the power-cap router schedules against: awake
        nodes draw idle watts (wake transitions included), busy windows
        add ``busy - idle``, sleeping nodes draw their sleep watts.
        """
        power = 0.0
        events: list[tuple[float, float]] = []
        for node in self.nodes:
            est = node.power_estimate()
            if node.started_awake:
                power += est.idle_wall_w
            else:
                power += node.spec.sleep_wall_w
                if node.wake_called_s is not None:
                    events.append((
                        node.wake_called_s,
                        est.idle_wall_w - node.spec.sleep_wall_w,
                    ))
            delta = est.busy_wall_w - est.idle_wall_w
            for work in node.scheduled:
                events.append((work.start_s, delta))
                events.append((work.end_s, -delta))
        events.sort(key=lambda e: (e[0], e[1]))
        peak = power
        for _, d in events:
            power += d
            peak = max(peak, power)
        return peak

    # -- phase 2: playback -------------------------------------------------

    def playback(self, schedule: ClusterSchedule,
                 mode: str = "batched") -> ClusterMeasurement:
        """Turn scheduled timelines into energy: the vectorized hot path
        (``batched``) or the per-query replay loop (``loop``)."""
        if mode == "batched":
            measurements = play_batched(
                schedule.nodes, schedule.pieces_by_node,
                schedule.workload_class,
            )
        elif mode == "loop":
            measurements = play_loop(
                schedule.nodes, schedule.pieces_by_node,
                schedule.workload_class,
            )
        else:
            raise ValueError(f"unknown playback mode {mode!r}")
        usages: list[NodeUsage] = []
        responses: list[QueryResponse] = []
        for node in schedule.nodes:
            name = node.spec.name
            sleep_s = node.sleep_s(schedule.horizon_s)
            usages.append(NodeUsage(
                name=name,
                queries=sum(len(w.queries) for w in node.scheduled),
                busy_s=node.busy_s,
                wake_s=node.wake_s,
                sleep_s=sleep_s,
                horizon_s=schedule.horizon_s,
                playback=measurements[name],
                sleep_joules=node.spec.sleep_wall_w * sleep_s,
            ))
            for work in node.scheduled:
                for sql, arrival_s in work.queries:
                    responses.append(QueryResponse(
                        sql=sql, node=name, arrival_s=arrival_s,
                        start_s=work.start_s, completion_s=work.end_s,
                    ))
        responses.sort(key=lambda r: (r.arrival_s, r.completion_s))
        return ClusterMeasurement(
            horizon_s=schedule.horizon_s,
            nodes=usages,
            responses=responses,
            shed=list(schedule.shed),
            peak_power_w=schedule.peak_power_w,
            cap_w=schedule.cap_w,
        )

    def run(self, arrivals: list[Arrival],
            mode: str = "batched") -> ClusterMeasurement:
        """Schedule and play an arrival stream end to end."""
        return self.playback(self.schedule(arrivals), mode=mode)
