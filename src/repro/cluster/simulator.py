"""Discrete-event cluster simulation over batched compiled-trace playback.

The paper's deployment story at production scale: an arrival stream of
queries hits a master, a routing policy places each query on a node
(possibly waking it, re-sleeping it, delaying it, or shedding it),
QED queues may batch arrivals into merged executions -- either a
private queue per node, or the paper's actual design, one
:class:`~repro.cluster.master_queue.MasterQueue` on the always-on
coordinator partitioned by mergeable template and feeding merged
batches to a batch-placement policy -- and every node is a calibrated
machine model -- possibly from a different hardware profile per node
group -- pinned to (or walked through) its own PVC operating points.

The simulation is split into two phases so the hot path stays a handful
of array operations:

1. :meth:`ClusterSimulator.schedule` -- resolve each arrival to a cached
   :class:`~repro.workloads.runner.QueryExecution` (execute-once: each
   distinct statement hits the database once, results are evicted once
   the trace compiles), pre-cost each distinct query once per distinct
   ``(hardware profile, PVC setting)`` pair with one
   ``run_compiled_batch`` call -- including every ladder setting an
   adaptive router may apply -- then run the event loop in pure Python
   over floats.  Produces a :class:`ClusterSchedule`: per-node timelines
   (busy windows + idle/wake gaps, minus sleep spans) as compiled-trace
   pieces, each tagged with the setting it was scheduled under.
2. :meth:`ClusterSimulator.playback` -- play every node's whole timeline
   with one stacked array call per distinct (hw, setting) pair
   (:func:`~repro.cluster.playback.play_batched`), or per piece
   (:func:`~repro.cluster.playback.play_loop`, the perf baseline), and
   compose the :class:`~repro.cluster.measure.ClusterMeasurement`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.cluster.faults import FaultPlan, RetryPolicy
from repro.cluster.master_queue import DispatchedBatch, MasterQueue
from repro.cluster.measure import (
    ClusterMeasurement,
    FaultReport,
    NodeUsage,
    QedPartitionStats,
    QedReport,
    QueryResponse,
    ResponseColumns,
    ShedQuery,
)
from repro.cluster.node import (
    NodeSpec,
    SimulatedNode,
    SUT_FACTORIES,
    TimelineAccounting,
    node_timeline_pieces,
)
from repro.cluster.placement import PlacementMap, replication_copy_trace
from repro.cluster.playback import play_batched, play_columnar, play_loop
from repro.cluster.routing import (
    AdaptivePvcRouter,
    ConsolidatePlacement,
    ConsolidateRouter,
    Decision,
    Router,
)
from repro.core.qed.aggregator import NotMergeableError, merge_queries
from repro.core.qed.executor import merged_batch_execution
from repro.core.qed.queue import Batch, QueuedQuery
from repro.db.engine import Database
from repro.hardware.cpu import PvcSetting
from repro.obs.fingerprint import config_fingerprint, run_id_for
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import MASTER_TRACK, NULL_TRACER, Tracer
from repro.hardware.system import SystemUnderTest
from repro.hardware.trace import CompiledTrace
from repro.workloads.arrivals import Arrival
from repro.workloads.client import ClientModel
from repro.workloads.runner import TraceCache, WorkloadRunner

#: Key under which a query's duration is pre-costed: the node's
#: hardware profile plus the PVC setting it currently holds.
CostKey = tuple[str, PvcSetting]


@dataclass(frozen=True)
class NodeTimeline(TimelineAccounting):
    """Immutable snapshot of one node's run, taken at schedule time.

    ``ClusterSchedule`` must not alias live :class:`SimulatedNode`
    state: a later ``schedule()`` call on the same simulator resets the
    nodes, and playing back an earlier schedule would otherwise mix two
    runs' bookkeeping.
    """

    spec: NodeSpec
    sut: SystemUnderTest
    scheduled: tuple
    started_awake: bool
    sleep_log: tuple
    wake_log: tuple
    setting_log: tuple

    @classmethod
    def snapshot(cls, node: SimulatedNode) -> "NodeTimeline":
        return cls(
            spec=node.spec,
            sut=node.sut,
            scheduled=tuple(node.scheduled),
            started_awake=node.started_awake,
            sleep_log=tuple(node.sleep_log),
            wake_log=tuple(node.wake_log),
            setting_log=tuple(node.setting_log),
        )


@dataclass
class ColumnarSchedule:
    """Structure-of-arrays form of a vectorized scheduling run.

    One row per arrival, in arrival order: which node it landed on,
    which distinct template it is, and the start/end the chunked
    routing recurrence assigned.  ``order``/``offsets`` give each
    node's rows (``order[offsets[j]:offsets[j+1]]``, arrival-ordered
    within a node via the stable sort), and ``costed`` carries the
    schedule phase's pre-costed per-distinct measurements so playback
    can re-cost the whole fleet as counts-times-measurement dot
    products without re-playing any trace.
    """

    distinct: list[str]
    arrival_s: np.ndarray
    node_idx: np.ndarray
    sql_idx: np.ndarray
    start_s: np.ndarray
    end_s: np.ndarray
    order: np.ndarray
    offsets: np.ndarray
    costed: dict = field(repr=False, default_factory=dict)

    def __len__(self) -> int:
        return len(self.arrival_s)

    def rows_for(self, j: int) -> np.ndarray:
        """Indices of node ``j``'s arrivals, in arrival order."""
        return self.order[self.offsets[j]:self.offsets[j + 1]]


@dataclass
class ClusterSchedule:
    """The event loop's outcome: who runs what, when, on which node.

    Produced in one of two shapes: the legacy per-arrival loop fills
    ``pieces_by_node`` (compiled-trace timeline pieces per node); the
    vectorized fast path fills ``columnar`` instead and leaves the
    piece maps empty -- at 1M arrivals materializing per-arrival piece
    objects would cost more than the event loop itself.
    """

    nodes: list[NodeTimeline]
    table: dict[str, CompiledTrace]
    pieces_by_node: dict[str, list[CompiledTrace]]
    settings_by_node: dict[str, list[PvcSetting]]
    horizon_s: float
    shed: list[ShedQuery]
    peak_power_w: float
    cap_w: float | None
    workload_class: str
    qed: QedReport | None = None
    faults: FaultReport | None = None
    run_id: str | None = None
    fingerprint: dict | None = None
    columnar: ColumnarSchedule | None = None

    @property
    def scheduled_pieces(self) -> int:
        if self.columnar is not None:
            return len(self.columnar)
        return sum(len(p) for p in self.pieces_by_node.values())


class _ServiceView(Mapping):
    """Live node-name -> service-time mapping for one statement.

    Reads each node's *current* PVC setting on every lookup, so a
    router that retunes a node mid-stream (``AdaptivePvcRouter``)
    immediately sees -- and the simulator immediately schedules --
    service times under the new setting.  Routers index it exactly like
    the plain dict it replaces.
    """

    __slots__ = ("_durations", "_nodes", "_sql")

    def __init__(self, durations: dict[CostKey, dict[str, float]],
                 nodes: dict[str, SimulatedNode], sql: str):
        self._durations = durations
        self._nodes = nodes
        self._sql = sql

    def __getitem__(self, name: str) -> float:
        node = self._nodes[name]
        try:
            return self._durations[(node.spec.hw, node.setting)][self._sql]
        except KeyError:
            raise KeyError(
                f"no pre-costed duration for node {name!r} under setting "
                f"{node.setting.describe()!r}; routers that retune nodes "
                "must expose the settings they use via a `ladder` attribute"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


class ClusterSimulator:
    """Serve an arrival stream across a simulated fleet.

    Every node's machine comes from its spec's hardware profile
    (``hw``, resolved through ``sut_factories`` with
    :data:`~repro.cluster.node.SUT_FACTORIES` as the base registry)
    with the spec's PVC setting applied, which keeps same-(hw, setting)
    nodes playback-equivalent -- the property batched playback
    exploits.  ``sut_factory`` (single-profile fleets) overrides the
    ``"paper"`` profile, preserving the homogeneous-fleet call shape.
    Without a ``placement`` map the shared database models fully
    replicated data: any node can serve any query.  With one, each
    placed table is sharded with k replicas across named nodes
    (:class:`~repro.cluster.placement.PlacementMap`); an arrival is
    routable only to nodes holding every shard its predicates may
    touch, consolidating routers keep a quorum of every shard awake,
    and a crash triggers re-replication copy traffic billed on both
    endpoints.
    """

    def __init__(
        self,
        db: Database,
        specs: list[NodeSpec],
        router: Router,
        sut_factory: Callable[[], SystemUnderTest] | None = None,
        client: ClientModel | None = None,
        trace_cache: TraceCache | None = None,
        sut_factories: dict[str, Callable[[], SystemUnderTest]] | None = None,
        master_queue: MasterQueue | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        placement: PlacementMap | None = None,
    ):
        if not specs:
            raise ValueError("a cluster needs at least one node")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        if placement is not None:
            unknown = placement.node_names - set(names)
            if unknown:
                raise ValueError(
                    "placement map references unknown nodes: "
                    f"{sorted(unknown)}"
                )
        if master_queue is not None:
            if any(s.queue_policy is not None for s in specs):
                raise ValueError(
                    "a master admission queue replaces per-node QED "
                    "queues; drop the node specs' queue_policy"
                )
            if getattr(router, "cap_w", None) is not None:
                # Same reasoning as PowerCapRouter's per-node-queue
                # check: batch dispatch re-times work the cap never saw.
                raise ValueError(
                    "PowerCapRouter cannot cap a master-queued cluster; "
                    "drop the master queue or use another router"
                )
            stateful = (ConsolidateRouter, AdaptivePvcRouter)
            if isinstance(router, stateful) and not isinstance(
                master_queue.placement, ConsolidatePlacement
            ):
                # These routers only act from route() -- which the
                # master loop never calls.  A consolidate family would
                # funnel the whole stream onto its one awake node; an
                # adaptive-PVC router would pin every node to the
                # cheapest ladder rung and never adapt.
                raise ValueError(
                    "a consolidate- or adaptive-family router under a "
                    "master queue needs ConsolidatePlacement (the "
                    "router only acts on routed dispatches)"
                )
        self.master_queue = master_queue
        factories = dict(SUT_FACTORIES)
        if sut_factories:
            factories.update(sut_factories)
        if sut_factory is not None:
            factories["paper"] = sut_factory
        for spec in specs:
            if spec.hw not in factories:
                raise ValueError(
                    f"node {spec.name!r} references unknown hardware "
                    f"profile {spec.hw!r}; known: {sorted(factories)}"
                )
        self.db = db
        self.router = router
        self.placement = placement
        #: Bumped whenever shard ownership changes mid-run (a
        #: re-replication copy lands); invalidates memoized
        #: eligible-node lists.
        self._owner_gen = 0
        self._eligible_cache: dict = {}
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        #: Observability hooks.  The default tracer is the shared no-op
        #: (``enabled=False``), so the event loop only ever pays dead
        #: branch checks; a metrics registry is sampled on simulated
        #: window boundaries when attached.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._factories = factories
        self.runner = WorkloadRunner(
            db, factories[specs[0].hw](), client=client,
            trace_cache=trace_cache,
        )
        self.nodes: list[SimulatedNode] = []
        for spec in specs:
            sut = factories[spec.hw]()
            sut.apply_setting(spec.setting)
            self.nodes.append(SimulatedNode(spec, sut))

    # -- phase 1: event loop ---------------------------------------------

    def _cost_keys(self) -> list[CostKey]:
        """Every (hw, setting) pair the event loop may need durations
        for: each node's pinned setting, plus -- when the router walks
        nodes along a PVC ladder -- every ladder rung on every hardware
        profile in the fleet."""
        keys: dict[CostKey, None] = {}
        for node in self.nodes:
            keys.setdefault((node.spec.hw, node.spec.setting))
        ladder = getattr(self.router, "ladder", None) or ()
        if ladder:
            for hw in dict.fromkeys(n.spec.hw for n in self.nodes):
                for setting in ladder:
                    keys.setdefault((hw, setting))
        return list(keys)

    def _sut_for(self, hw: str) -> SystemUnderTest:
        """A representative machine for ``hw`` (any node of that
        profile; factories make them interchangeable)."""
        for node in self.nodes:
            if node.spec.hw == hw:
                return node.sut
        raise KeyError(hw)  # pragma: no cover - keys come from nodes

    def _execute_once_table(
        self, arrivals: list[Arrival]
    ) -> dict[str, CompiledTrace]:
        """Execute-once: each distinct statement hits the database once;
        row data is evicted as soon as the trace is compiled."""
        table: dict[str, CompiledTrace] = {}
        for i, sql in enumerate(dict.fromkeys(a.sql for a in arrivals)):
            execution = self.runner.cached_execution(
                sql, label=f"c{i}", keep_result=False
            )
            table[sql] = execution.compiled_trace()
        return table

    def _precost(
        self, table: dict[str, CompiledTrace], workload_class: str
    ) -> tuple[dict[CostKey, dict[str, float]], dict[CostKey, list]]:
        """Pre-cost each distinct query per (hw, setting) pair: one
        stacked call per pair replaces a per-(query, node) loop.  The
        full per-distinct measurements ride along so columnar playback
        can reuse them as counts-times-measurement dot products."""
        distinct = list(table)
        durations: dict[CostKey, dict[str, float]] = {}
        costed: dict[CostKey, list] = {}
        for hw, setting in self._cost_keys():
            sut = self._sut_for(hw)
            original = sut.setting
            sut.apply_setting(setting)
            try:
                batch = sut.run_compiled_batch(
                    [table[sql] for sql in distinct], workload_class
                )
            finally:
                sut.apply_setting(original)
            durations[(hw, setting)] = {
                sql: m.duration_s for sql, m in zip(distinct, batch)
            }
            costed[(hw, setting)] = batch
        return durations, costed

    def vectorized_ineligibility(self) -> str | None:
        """Why this configuration cannot take the vectorized fast path
        (``None`` when it can).

        The chunked form can only express stateless-over-arrivals
        routing on an always-awake fleet: no QED queues (master or
        per-node), no fault/retry interleaving, no tracing or metrics
        hooks (both sample per arrival), and a router that implements
        ``route_chunk``.
        """
        if self.master_queue is not None:
            return "a master QED queue batches arrivals statefully"
        if any(n.spec.queue_policy is not None for n in self.nodes):
            return "per-node QED queues batch arrivals statefully"
        if self.faults is not None and not self.faults.empty:
            return "an active fault plan interleaves crashes and retries"
        if self.tracer.enabled:
            return "span tracing records per-arrival events"
        if self.metrics is not None:
            return "streaming metrics sample per-arrival fleet state"
        if not callable(getattr(self.router, "route_chunk", None)):
            return (
                f"router {type(self.router).__name__} has no "
                "route_chunk fast path"
            )
        if (
            self.placement is not None
            and not getattr(self.router, "placement_chunk", False)
            and self._placement_constrains()
        ):
            return (
                "a placement map constrains routing and router "
                f"{type(self.router).__name__} has no placement-masked "
                "route_chunk"
            )
        return None

    def _placement_constrains(self) -> bool:
        """Whether the map can ever narrow a routing pool.

        A fully replicated map (every node holds every shard) is
        vacuous: all pools stay full-fleet, so routers without a
        masked ``route_chunk`` may still take the fast path and stay
        bitwise identical to the no-placement run.
        """
        all_keys = {
            (tp.table, shard)
            for tp in self.placement.tables.values()
            for shard in range(tp.shards)
        }
        return any(
            not all_keys <= self.placement.shards_of(n.spec.name)
            for n in self.nodes
        )

    # -- data placement ---------------------------------------------------

    def _install_placement(self) -> None:
        """Pin the run's shard ownership onto the fleet.

        Called at the top of every ``schedule()``: each node gets a
        fresh (mutable) copy of its initial shard set -- re-replication
        grows a destination's set mid-run, so a prior run's copies must
        not leak into this one -- and the router learns the map so its
        quorum logic and ``prepare`` cover can see it.  With no map
        this resets both to None, reproducing the seed behavior.
        """
        placement = self.placement
        if placement is None:
            # Leave the class-level ``placement = None`` in charge: an
            # instance attribute -- even None -- would show up in
            # ``Router.describe()`` and shift the run fingerprint of
            # placement-free runs.
            self.router.__dict__.pop("placement", None)
        else:
            self.router.placement = placement
        self._owner_gen += 1
        for node in self.nodes:
            node.shards = (
                set(placement.shards_of(node.spec.name))
                if placement is not None else None
            )

    def _eligible_nodes(self, sql: str) -> list[SimulatedNode] | None:
        """Nodes holding every shard ``sql`` may touch, or None when
        the map does not constrain the statement (including the case
        where every node qualifies -- full-fleet routing is then both
        correct and identical to the no-placement run)."""
        if self.placement is None:
            return None
        entry = self._eligible_cache.get(sql)
        if entry is not None and entry[0] == self._owner_gen:
            return entry[1]
        required = self.placement.required_shards(sql)
        if required is None:
            pool = None
        else:
            pool = [
                n for n in self.nodes
                if n.shards is not None and required <= n.shards
            ]
            if len(pool) == len(self.nodes):
                pool = None
        self._eligible_cache[sql] = (self._owner_gen, pool)
        return pool

    def _route(self, sql: str, now_s: float, service_by_node) -> Decision:
        """Route one arrival through the placement constraint.

        The router sees only the eligible replica set (in fleet order,
        so tie-breaks match the vectorized mask form); a statement no
        live combination of nodes can serve degrades to a refusal --
        the caller's retry/shed policy takes over, rows are never
        silently dropped.
        """
        pool = self._eligible_nodes(sql)
        if pool is None:
            return self.router.route(sql, now_s, service_by_node,
                                     self.nodes)
        if not pool:
            return Decision(None, now_s)
        return self.router.route(sql, now_s, service_by_node, pool)

    def _eligibility_mask(self, distinct: list[str]) -> np.ndarray | None:
        """The ``(distinct, nodes)`` bool mask for masked route_chunk,
        or None when no statement is actually constrained."""
        if self.placement is None:
            return None
        rows = np.ones((len(distinct), len(self.nodes)), dtype=bool)
        constrained = False
        for d, sql in enumerate(distinct):
            required = self.placement.required_shards(sql)
            if required is None:
                continue
            for j, node in enumerate(self.nodes):
                if node.shards is None or not required <= node.shards:
                    rows[d, j] = False
                    constrained = True
        return rows if constrained else None

    def schedule(self, arrivals: list[Arrival],
                 vectorized: bool | None = None) -> ClusterSchedule:
        """Route every arrival; returns the fleet's scheduled timelines.

        ``vectorized=None`` (the default) takes the chunked fast path
        whenever the configuration is eligible (see
        :meth:`vectorized_ineligibility`) and falls back to the exact
        per-arrival loop otherwise; ``False`` forces the loop (the
        oracle for identity tests, and the only form ``playback`` can
        replay in ``loop`` mode); ``True`` demands the fast path and
        raises when the configuration cannot take it.
        """
        reason = self.vectorized_ineligibility()
        if vectorized is True and reason is not None:
            raise ValueError(
                f"vectorized scheduling unavailable: {reason}"
            )
        if not arrivals:
            # NHPP generators legitimately produce empty streams in
            # low-rate windows; an empty stream is an empty schedule
            # (zero energy, zero horizon), not an error.
            return self._schedule_empty()
        use_fast = (reason is None) if vectorized is None else vectorized
        arrivals = sorted(arrivals, key=lambda a: a.time_s)
        workload_class = self.db.workload_class
        self._install_placement()
        if use_fast and self.placement is not None:
            # The columnar path cannot shed/queue: a statement with no
            # eligible node (no node holds all its shards) needs the
            # loop's degrade policy.
            unroutable = any(
                self._eligible_nodes(sql) == []
                for sql in dict.fromkeys(a.sql for a in arrivals)
            )
            if unroutable and vectorized is True:
                raise ValueError(
                    "vectorized scheduling unavailable: the placement "
                    "map leaves some statement with no eligible node "
                    "(the loop path queues or sheds it)"
                )
            use_fast = use_fast and not unroutable

        # Every run is stamped with a deterministic identity derived
        # from its full configuration; same config => same run_id.
        fingerprint = config_fingerprint(
            [node.spec for node in self.nodes], self.router,
            master_queue=self.master_queue, faults=self.faults,
            retry=self.retry, arrivals=arrivals,
            workload_class=workload_class,
            scale_factor=getattr(self.db, "scale_factor", None),
            placement=self.placement,
        )
        run_id = run_id_for(fingerprint)
        if use_fast:
            return self._schedule_vectorized(
                arrivals, workload_class, fingerprint, run_id
            )
        tracer = self.tracer
        tracing = tracer.enabled
        if tracing:
            tracer.begin_run(
                {"run_id": run_id, "fingerprint": fingerprint}
            )
        metrics = self.metrics
        if metrics is not None:
            metrics.begin_run(run_id)
            self._next_sample_s = 0.0

        table = self._execute_once_table(arrivals)
        distinct = list(table)
        durations, _costed = self._precost(table, workload_class)

        # Per-distinct-SQL live service views, shared across arrivals
        # (the event loop would otherwise rebuild an identical mapping
        # ~10k times); routers only read them.
        nodes_by_name = {node.spec.name: node for node in self.nodes}
        service_views = {
            sql: _ServiceView(durations, nodes_by_name, sql)
            for sql in distinct
        }

        # Fault layer: install the plan on every node *before* the
        # router's prepare (node resets preserve it), seed the run's
        # fault RNG, and lay the crash events out as a time heap.  With
        # no plan -- or an empty one -- none of the hooks below run and
        # the event loop is byte-identical to the fault-free simulator.
        plan = self.faults
        active = plan is not None and not plan.empty
        shed: list[ShedQuery] = []
        report = FaultReport() if active else None
        self._fault_active = active
        self._fault_report = report
        for node in self.nodes:
            node.faults = plan if active else None
        if active:
            fleet = {n.spec.name for n in self.nodes}
            unknown = {s.node for s in plan.specs} - fleet
            if unknown:
                raise ValueError(
                    f"fault plan targets unknown nodes: {sorted(unknown)}"
                )
            plan.begin_run()
            self._fault_events: list = []
            self._fault_seq = 0
            for node in self.nodes:
                for spec in plan.crashes_for(node.spec.name):
                    heapq.heappush(
                        self._fault_events,
                        (spec.at_s, self._fault_seq, "crash", node, spec),
                    )
                    self._fault_seq += 1
            self._retries: list = []
            self._retry_seq = 0
            self._retry_ctx = (
                table, durations, service_views, workload_class, shed
            )

        self.router.prepare(self.nodes)
        qed: QedReport | None = None
        end_of_arrivals = arrivals[-1].time_s
        if self.master_queue is not None:
            qed = QedReport(mode="master")
            self._run_master_loop(
                arrivals, end_of_arrivals, table, durations,
                service_views, workload_class, shed, qed,
            )
        else:
            queued = [n for n in self.nodes if n.queue is not None]
            if queued:
                qed = QedReport(mode="node")
            for arrival in arrivals:
                now = arrival.time_s
                if tracing:
                    tracer.arrival(arrival.sql, now)
                if metrics is not None:
                    self._sample_metrics_until(now)
                    metrics.counter("arrivals").inc()
                if active:
                    self._advance_faults(now)
                for node in queued:  # timeout-based QED dispatches
                    batch = self._expire_queue(node, now)
                    if batch is not None:
                        self._dispatch_node_batch(
                            node, batch, table, durations,
                            workload_class, qed,
                        )
                service_by_node = service_views[arrival.sql]
                decision = self._route(arrival.sql, now, service_by_node)
                if decision.node is None:
                    if active:
                        # No serviceable node right now; the retry
                        # policy re-offers the query after backoff.
                        self._push_retry(arrival.sql, now, now, 1,
                                         requeue=False)
                    else:
                        shed.append(ShedQuery(arrival.sql, now))
                    continue
                node = decision.node
                if node.queue is not None:
                    batch = node.queue.submit(arrival.sql, now)
                    if batch is not None:
                        self._dispatch_node_batch(
                            node, batch, table, durations,
                            workload_class, qed,
                        )
                else:
                    if tracing and decision.dispatch_s - now > 1e-12:
                        # Admission delay (power-cap headroom wait).
                        tracer.span(
                            "queue-wait", MASTER_TRACK, now,
                            decision.dispatch_s,
                            parent=tracer.parent_of(arrival.sql, now),
                            sql=arrival.sql,
                        )
                    node.assign(
                        arrival.sql, decision.dispatch_s,
                        service_by_node[node.spec.name],
                        ((arrival.sql, now),),
                    )
            for node in queued:  # trailing partial batches drain
                batch = node.queue.drain(end_of_arrivals)
                if batch is not None:
                    self._dispatch_node_batch(
                        node, batch, table, durations, workload_class,
                        qed,
                    )

        if active:
            self._finish_faults(end_of_arrivals)
            report.failed_wakes = sum(
                len(n.failed_wakes) for n in self.nodes
            )

        horizon = end_of_arrivals
        for node in self.nodes:
            horizon = max(horizon, node.busy_until)
            if node.awake:
                horizon = max(horizon, node.wake_ready_s)

        if tracing:
            # Timeline spans are emitted post-hoc from the node logs --
            # the hot loop never touches the tracer for them.  Every
            # served query gets its terminal here; under an active
            # fault plan the shed list is exactly the dead-letter set
            # (terminals already emitted at dead-letter time), so the
            # shed pass below covers fault-free refusals only.
            for node in self.nodes:
                track = node.spec.name
                for t in node.failed_wakes:
                    tracer.instant("wake-failure", track, t)
                for called, ready in node.wake_log:
                    tracer.span("wake", track, called, ready)
                for start, end in node.sleep_spans(horizon):
                    tracer.span("sleep", track, start, end)
                for work in node.scheduled:
                    window_id = tracer.span(
                        "playback", track, work.start_s, work.end_s,
                        queries=len(work.queries),
                        stretch_s=work.stretch_s,
                    )
                    for sql, arrival_s in work.queries:
                        tracer.terminal(
                            "served", sql, arrival_s, work.end_s,
                            track=track, window=window_id,
                        )
            if not active:
                for q in shed:
                    tracer.terminal("shed", q.sql, q.arrival_s,
                                    q.arrival_s)
            tracer.finish(horizon)
        if metrics is not None:
            self._sample_metrics_until(horizon)
            response = metrics.histogram("response_s")
            for node in self.nodes:
                for work in node.scheduled:
                    for _sql, arrival_s in work.queries:
                        response.observe(work.end_s - arrival_s)

        pieces_by_node: dict[str, list[CompiledTrace]] = {}
        settings_by_node: dict[str, list[PvcSetting]] = {}
        for node in self.nodes:
            pieces, settings = node_timeline_pieces(node, table, horizon)
            pieces_by_node[node.spec.name] = pieces
            settings_by_node[node.spec.name] = settings
        return ClusterSchedule(
            nodes=[NodeTimeline.snapshot(n) for n in self.nodes],
            table=table,
            pieces_by_node=pieces_by_node,
            settings_by_node=settings_by_node,
            horizon_s=horizon,
            shed=shed,
            peak_power_w=self._peak_model_power_w(horizon),
            cap_w=getattr(self.router, "cap_w", None),
            workload_class=workload_class,
            qed=qed,
            faults=report,
            run_id=run_id,
            fingerprint=fingerprint,
        )

    #: Arrivals routed per ``route_chunk`` call: large enough to
    #: amortize per-chunk numpy overhead, small enough to bound the
    #: transient per-chunk arrays.
    SCHEDULE_CHUNK = 131072

    def _schedule_vectorized(
        self,
        arrivals: list[Arrival],
        workload_class: str,
        fingerprint: dict,
        run_id: str,
    ) -> ClusterSchedule:
        """The chunked fast path: arrivals as structure-of-arrays.

        Arrival times, template indices, and pre-costed service
        durations become numpy arrays; the router places whole chunks
        at once (``route_chunk``), and the outcome stays columnar all
        the way into playback -- no per-arrival Python objects exist at
        any point, which is what makes 1M arrivals x 100 nodes a
        seconds-scale run.
        """
        table = self._execute_once_table(arrivals)
        distinct = list(table)
        durations, costed = self._precost(table, workload_class)
        self._fault_active = False
        self._fault_report = None
        self.router.prepare(self.nodes)

        n = len(arrivals)
        n_nodes = len(self.nodes)
        times = np.fromiter(
            (a.time_s for a in arrivals), np.float64, count=n
        )
        index_of = {sql: d for d, sql in enumerate(distinct)}
        sql_idx = np.fromiter(
            (index_of[a.sql] for a in arrivals), np.int64, count=n
        )
        service = np.empty((len(distinct), n_nodes), dtype=np.float64)
        for j, node in enumerate(self.nodes):
            per = durations[(node.spec.hw, node.spec.setting)]
            service[:, j] = [per[sql] for sql in distinct]

        node_idx = np.empty(n, dtype=np.int64)
        starts = np.empty(n, dtype=np.float64)
        ends = np.empty(n, dtype=np.float64)
        # Placement constraint as a per-template eligibility mask; None
        # when no template is constrained, keeping the unconstrained
        # call shape (and its floats) bit-identical to the seed path.
        mask = self._eligibility_mask(distinct)
        route_kwargs = {} if mask is None else {"eligible": mask}
        for lo in range(0, n, self.SCHEDULE_CHUNK):
            hi = min(lo + self.SCHEDULE_CHUNK, n)
            idx, st, en = self.router.route_chunk(
                times[lo:hi], sql_idx[lo:hi], service, distinct,
                self.nodes, **route_kwargs,
            )
            node_idx[lo:hi] = idx
            starts[lo:hi] = st
            ends[lo:hi] = en

        order = np.argsort(node_idx, kind="stable")
        offsets = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(node_idx, minlength=n_nodes), out=offsets[1:]
        )
        columnar = ColumnarSchedule(
            distinct=distinct, arrival_s=times, node_idx=node_idx,
            sql_idx=sql_idx, start_s=starts, end_s=ends,
            order=order, offsets=offsets, costed=costed,
        )
        horizon = float(max(times[-1], ends.max()))
        return ClusterSchedule(
            nodes=[NodeTimeline.snapshot(node) for node in self.nodes],
            table=table,
            pieces_by_node={n_.spec.name: [] for n_ in self.nodes},
            settings_by_node={n_.spec.name: [] for n_ in self.nodes},
            horizon_s=horizon,
            shed=[],
            peak_power_w=self._peak_power_columnar(
                node_idx, starts, ends
            ),
            cap_w=getattr(self.router, "cap_w", None),
            workload_class=workload_class,
            qed=None,
            faults=None,
            run_id=run_id,
            fingerprint=fingerprint,
            columnar=columnar,
        )

    def _peak_power_columnar(
        self, node_idx: np.ndarray, starts: np.ndarray, ends: np.ndarray
    ) -> float:
        """Peak fleet power for an always-awake columnar run.

        The same power-step sweep as :meth:`_peak_model_power_w`,
        vectorized: the baseline is every node's idle draw, each busy
        window steps by its node's (busy - idle) delta, and a lexsort
        on (time, delta) reproduces the legacy sweep's tie order.
        """
        baseline = 0.0
        deltas = np.empty(len(self.nodes))
        for j, node in enumerate(self.nodes):
            est = node.power_estimate()
            baseline += est.idle_wall_w
            deltas[j] = est.busy_wall_w - est.idle_wall_w
        per_arrival = deltas[node_idx]
        ev_t = np.concatenate([starts, ends])
        ev_d = np.concatenate([per_arrival, -per_arrival])
        running = np.cumsum(ev_d[np.lexsort((ev_d, ev_t))])
        if running.size == 0:
            return baseline
        return baseline + max(0.0, float(running.max()))

    def _schedule_empty(self) -> ClusterSchedule:
        """A well-formed zero-arrival schedule: zero energy, zero
        horizon, empty trace table (the measurement side renders one
        ``[0, 0]`` phase window, mirroring the zero-horizon report)."""
        workload_class = self.db.workload_class
        self._install_placement()
        fingerprint = config_fingerprint(
            [node.spec for node in self.nodes], self.router,
            master_queue=self.master_queue, faults=self.faults,
            retry=self.retry, arrivals=[],
            workload_class=workload_class,
            scale_factor=getattr(self.db, "scale_factor", None),
            placement=self.placement,
        )
        run_id = run_id_for(fingerprint)
        self._fault_active = False
        self._fault_report = None
        self.router.prepare(self.nodes)
        if self.tracer.enabled:
            self.tracer.begin_run(
                {"run_id": run_id, "fingerprint": fingerprint}
            )
            self.tracer.finish(0.0)
        if self.metrics is not None:
            self.metrics.begin_run(run_id)
            self._next_sample_s = 0.0
            self._sample_metrics_until(0.0)
        qed: QedReport | None = None
        if self.master_queue is not None:
            qed = QedReport(mode="master")
        elif any(n.queue is not None for n in self.nodes):
            qed = QedReport(mode="node")
        active = self.faults is not None and not self.faults.empty
        return ClusterSchedule(
            nodes=[NodeTimeline.snapshot(n) for n in self.nodes],
            table={},
            pieces_by_node={n.spec.name: [] for n in self.nodes},
            settings_by_node={n.spec.name: [] for n in self.nodes},
            horizon_s=0.0,
            shed=[],
            peak_power_w=self._peak_model_power_w(0.0),
            cap_w=getattr(self.router, "cap_w", None),
            workload_class=workload_class,
            qed=qed,
            faults=FaultReport() if active else None,
            run_id=run_id,
            fingerprint=fingerprint,
        )

    def _expire_queue(self, node: SimulatedNode, now_s: float):
        """Dispatch a timed-out batch *at its expiry*, not at ``now``.

        Between sparse arrivals the queue's timeout fires on its own;
        ticking it at the next arrival's timestamp would charge the
        whole inter-arrival gap to the batch's response times.
        """
        expiry = node.queue.expiry_s
        if expiry is None or expiry > now_s:
            return None
        # flush (not tick): float addition noise in the expiry must not
        # leave the policy un-fired and the batch stranded.
        return node.queue.flush(expiry)

    # -- streaming metrics -------------------------------------------------

    def _sample_metrics_until(self, now_s: float) -> None:
        """Snapshot the registry at every window boundary <= ``now_s``
        (the same ``k * window_s`` tiling ``window_report`` slices on)."""
        while self._next_sample_s <= now_s + 1e-12:
            self._sample_metrics(self._next_sample_s)
            self._next_sample_s += self.metrics.window_s

    def _sample_metrics(self, t_s: float) -> None:
        """Read the live fleet state into the gauges and snapshot."""
        reg = self.metrics
        awake = 0
        for node in self.nodes:
            name = node.spec.name
            reg.gauge(f"node_watts.{name}").set(node.modeled_power_w(t_s))
            if node.awake:
                awake += 1
            if node.queue is not None:
                reg.gauge(f"queue_depth.node:{name}").set(
                    float(len(node.queue))
                )
        reg.gauge("awake_nodes").set(float(awake))
        if self.master_queue is not None:
            depths = self.master_queue.depths()
            reg.gauge("master_queue_depth").set(
                float(sum(depths.values()))
            )
            for label, depth in depths.items():
                reg.gauge(f"queue_depth.{label}").set(float(depth))
        if self._fault_active:
            reg.gauge("retry_backlog").set(float(len(self._retries)))
        reg.sample(t_s)

    # -- fault injection & recovery ---------------------------------------

    def _advance_faults(self, now_s: float) -> bool:
        """Fire every pending fault event and due retry up to ``now_s``,
        interleaved in time order (a retry dispatched at its ready time
        sees exactly the crashes/recoveries that preceded it)."""
        fired = False
        while True:
            fault_t = (
                self._fault_events[0][0] if self._fault_events
                else math.inf
            )
            retry_t = self._retries[0][0] if self._retries else math.inf
            if min(fault_t, retry_t) > now_s + 1e-12:
                return fired
            fired = True
            if fault_t <= retry_t:
                self._fire_fault_event()
            else:
                ready, _, sql, arrival_s, attempt = heapq.heappop(
                    self._retries
                )
                self._dispatch_retry(sql, arrival_s, ready, attempt)

    def _fire_fault_event(self) -> None:
        """Apply the earliest pending crash/recover event."""
        at_s, _, kind, node, spec = heapq.heappop(self._fault_events)
        if kind == "recover":
            node.recover(at_s)
            if self.tracer.enabled:
                self.tracer.instant("recover", node.spec.name, at_s)
            return
        if node.crashed_s is not None:
            return  # already down; an overlapping crash is absorbed
        lost, wasted = node.crash(at_s)
        if self.tracer.enabled:
            self.tracer.instant(
                "crash", node.spec.name, at_s,
                lost=len(lost), wasted_s=wasted,
            )
        if self.metrics is not None:
            self.metrics.counter("crashes").inc()
        report = self._fault_report
        report.crashes += 1
        report.wasted_busy_s += wasted
        # Modeled write-off: the partial burn ran at busy watts before
        # the crash threw its results away.
        report.wasted_joules += node.power_estimate().busy_wall_w * wasted
        for sql, arrival_s in lost:
            self._push_retry(sql, arrival_s, at_s, 1, requeue=True)
        if self.placement is not None:
            self._start_re_replication(node, at_s)
        if spec.recover_s is not None:
            heapq.heappush(
                self._fault_events,
                (spec.recover_s, self._fault_seq, "recover", node, spec),
            )
            self._fault_seq += 1

    def _shard_bytes(self, tname: str, tp) -> float:
        """One shard's storage footprint (table bytes / shards); zero
        for placed tables the database does not actually hold."""
        if not self.db.catalog.has_table(tname):
            return 0.0
        return self.db.catalog.table(tname).size_bytes / tp.shards

    @staticmethod
    def _copy_endpoint(candidates, at_s: float):
        """The cheapest live endpoint for a re-replication copy:
        awake-first, then earliest-ready (stable, fleet order breaks
        ties).  Sleeping candidates are woken -- a wake may fail under
        the fault plan, falling through to the next candidate."""
        ranked = sorted(
            candidates, key=lambda n: (not n.awake, n.ready_s)
        )
        for node in ranked:
            if not node.awake:
                node.wake(at_s)
                if not node.awake:
                    continue
            return node
        return None

    def _start_re_replication(self, crashed, at_s: float) -> None:
        """Restore replication for the shards a dead node held.

        For every shard the crash pushed below its replication target,
        a live source replica streams a copy to a live node not yet
        holding the shard.  The copy is compiled-trace work
        (:func:`~repro.cluster.placement.replication_copy_trace` sized
        by the shard's storage footprint) assigned to *both* endpoints
        at crash time, so its busy windows bill joules through normal
        playback and delay queries queued behind them.  The destination
        owns the shard from the copy's start -- queries routed there
        queue behind the in-flight copy (FIFO), which models catch-up
        reads without a completion callback.  Shards with no live
        source stay under-replicated: queries for them keep retrying
        until recovery or dead-letter, never silently dropping rows.
        """
        table, durations, _views, workload_class, _shed = self._retry_ctx
        report = self._fault_report
        for key in sorted(crashed.shards or ()):
            tname, shard = key
            tp = self.placement.for_table(tname)
            if tp is None:
                continue
            holders = [
                n for n in self.nodes
                if n is not crashed and n.shards is not None
                and key in n.shards
            ]
            live = [n for n in holders if n.crashed_s is None]
            if len(live) >= tp.replicas:
                continue  # replication target still met
            source = self._copy_endpoint(
                [n for n in live if n.can_serve(at_s)], at_s
            )
            dest = self._copy_endpoint(
                [
                    n for n in self.nodes
                    if n is not crashed and n.shards is not None
                    and key not in n.shards and n.can_serve(at_s)
                ],
                at_s,
            )
            if source is None or dest is None:
                continue  # no live copy (or no room): degrade, retry
            copy_key = f"<re-replicate {tname}#{shard}>"
            if copy_key not in table:
                table[copy_key] = replication_copy_trace(
                    self._shard_bytes(tname, tp)
                )
            for endpoint in (source, dest):
                service = self._duration_for(
                    endpoint, copy_key, table, durations, workload_class
                )
                endpoint.assign(copy_key, at_s, service, ())
                report.copy_s += service
                report.copy_joules += (
                    endpoint.power_estimate().busy_wall_w * service
                )
            dest.shards.add(key)
            self._owner_gen += 1
            report.re_replications += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "re-replicate", dest.spec.name, at_s,
                    table=tname, shard=shard, source=source.spec.name,
                )
            if self.metrics is not None:
                self.metrics.counter("re_replications").inc()

    def _push_retry(self, sql: str, arrival_s: float, now_s: float,
                    attempt: int, requeue: bool) -> None:
        """Queue retry number ``attempt`` after its backoff delay.

        ``requeue=True`` marks work pulled back from a crashed node (as
        opposed to an arrival no node would take); both flow through
        the same heap and count toward ``retries``.
        """
        ready = now_s + self.retry.delay_s(attempt)
        self._retry_seq += 1
        heapq.heappush(
            self._retries, (ready, self._retry_seq, sql, arrival_s, attempt)
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "retry", MASTER_TRACK, now_s,
                parent=self.tracer.parent_of(sql, arrival_s),
                sql=sql, attempt=attempt, ready_s=ready,
            )
        if self.metrics is not None:
            self.metrics.counter("retries").inc()
        report = self._fault_report
        report.retries += 1
        if requeue:
            report.requeued += 1
        report.affected.add((sql, arrival_s))

    def _dispatch_retry(self, sql: str, arrival_s: float,
                        ready_s: float, attempt: int) -> None:
        """Re-offer one lost/refused query to the router at its ready
        time.  Retries bypass QED queues (a second queueing pass would
        double-charge latency the backoff already modeled) and keep the
        query's *original* arrival time, so its response time includes
        the whole ordeal.  A failed attempt backs off again until the
        policy dead-letters it: shed, with accounting."""
        table, durations, service_views, workload_class, shed = (
            self._retry_ctx
        )
        decision = self._route(sql, ready_s, service_views[sql])
        node = decision.node
        if node is not None and node.awake and node.can_serve(ready_s):
            service = self._duration_for(
                node, sql, table, durations, workload_class
            )
            node.assign(
                sql, decision.dispatch_s, service, ((sql, arrival_s),)
            )
            return
        if self.retry.exhausted(attempt):
            shed.append(ShedQuery(sql, arrival_s))
            self._fault_report.dead_lettered += 1
            if self.tracer.enabled:
                self.tracer.terminal(
                    "dead-letter", sql, arrival_s, ready_s,
                    attempt=attempt,
                )
            if self.metrics is not None:
                self.metrics.counter("dead_lettered").inc()
            return
        self._push_retry(sql, arrival_s, ready_s, attempt + 1,
                         requeue=False)

    def _finish_faults(self, end_of_arrivals: float) -> None:
        """Run the fault/retry machinery past the last arrival.

        Backoffs can push retries beyond the stream's end, and crashes
        can strike work still draining there; keep advancing to the
        fleet's moving activity bound (plus the earliest pending retry)
        until nothing more can fire.  Crash events beyond all activity
        never fire -- the run is over."""
        while True:
            bound = end_of_arrivals
            for node in self.nodes:
                bound = max(bound, node.busy_until)
                if node.awake:
                    bound = max(bound, node.wake_ready_s)
            if self._retries:
                bound = max(bound, self._retries[0][0])
            if not self._advance_faults(bound):
                return

    # -- QED batch serving -------------------------------------------------

    @staticmethod
    def _qed_stats_for(qed: QedReport | None,
                       partition: str) -> QedPartitionStats | None:
        if qed is None:
            return None
        stats = qed.get(partition)
        if stats is None:
            stats = QedPartitionStats(partition)
            qed.partitions.append(stats)
        return stats

    @staticmethod
    def _record_dispatch(stats: QedPartitionStats | None,
                         batch: Batch) -> None:
        if stats is None:
            return
        stats.queries += batch.size
        stats.batches += 1
        stats.max_batch = max(stats.max_batch, batch.size)

    def _run_master_loop(
        self,
        arrivals: list[Arrival],
        end_of_arrivals: float,
        table: dict[str, CompiledTrace],
        durations: dict[CostKey, dict[str, float]],
        service_views: dict[str, "_ServiceView"],
        workload_class: str,
        shed: list[ShedQuery],
        qed: QedReport,
    ) -> None:
        """The master-queue phase: every arrival queues centrally.

        Per-partition timeouts fire between arrivals *at their expiry*
        (mirroring the per-node path), the arrival itself may trip its
        partition's threshold, and trailing partials drain once the
        stream ends.  Dispatched batches go to the queue's
        batch-placement policy instead of the per-arrival router.
        """
        self.master_queue.reset()
        placement = self.master_queue.placement
        placement.prepare(self.router, self.nodes)
        tracer = self.tracer
        metrics = self.metrics
        for arrival in arrivals:
            now = arrival.time_s
            if tracer.enabled:
                tracer.arrival(arrival.sql, now)
            if metrics is not None:
                self._sample_metrics_until(now)
                metrics.counter("arrivals").inc()
            if self._fault_active:
                self._advance_faults(now)
            for dispatched in self.master_queue.expired(now):
                self._place_dispatched(
                    dispatched, table, durations, service_views,
                    workload_class, shed, qed,
                )
            for dispatched in self.master_queue.submit(arrival.sql, now):
                self._place_dispatched(
                    dispatched, table, durations, service_views,
                    workload_class, shed, qed,
                )
        for dispatched in self.master_queue.drain(end_of_arrivals):
            self._place_dispatched(
                dispatched, table, durations, service_views,
                workload_class, shed, qed,
            )

    def _place_dispatched(
        self,
        dispatched: DispatchedBatch,
        table: dict[str, CompiledTrace],
        durations: dict[CostKey, dict[str, float]],
        service_views: dict[str, "_ServiceView"],
        workload_class: str,
        shed: list[ShedQuery],
        qed: QedReport,
    ) -> None:
        """Hand one master-queue batch to the placement policy."""
        batch = dispatched.batch
        stats = self._qed_stats_for(qed, dispatched.partition)
        self._record_dispatch(stats, batch)
        if self.tracer.enabled:
            self.tracer.dispatch(dispatched.partition, batch)
        if self.metrics is not None:
            self.metrics.counter("qed_batches").inc()
            self.metrics.histogram("batch_size").observe(batch.size)
        merged = None
        if dispatched.mergeable and batch.size > 1:
            merged = merge_queries(batch.sqls)
        # Under a placement map the batch first splits by shard
        # signature -- each piece is servable by one replica set -- and
        # each piece is placed over its owning replicas only.  With no
        # map there is a single unconstrained group (the seed path).
        if self.placement is None:
            groups = [(batch, merged, None)]
        else:
            groups = self._shard_groups(batch, merged)
        for group_batch, group_merged, pool in groups:
            if pool is not None and not pool:
                assignments = []  # no live node holds all its shards
            else:
                assignments = self.master_queue.placement.place(
                    group_batch, group_merged, group_batch.dispatch_s,
                    service_views[group_batch.queries[0].sql],
                    self.nodes if pool is None else pool,
                )
            if not assignments:
                if self._fault_active:
                    # Unplaceable under faults (crashes/failed wakes,
                    # under-replicated shards): each query re-enters
                    # through the retry policy instead of being
                    # silently shed.
                    for q in group_batch.queries:
                        self._push_retry(
                            q.sql, q.arrival_s, group_batch.dispatch_s,
                            1, requeue=False,
                        )
                else:
                    shed.extend(
                        ShedQuery(q.sql, q.arrival_s)
                        for q in group_batch.queries
                    )
                continue
            for node, queries in assignments:
                shard = (
                    group_batch if len(queries) == group_batch.size
                    else Batch(list(queries), group_batch.dispatch_s)
                )
                self._schedule_batch(
                    node, shard, table, durations, workload_class,
                    stats=stats,
                    merged=(
                        group_merged if shard is group_batch else None
                    ),
                )

    def _pool_for_shards(self, required) -> list[SimulatedNode] | None:
        """Nodes holding every ``(table, shard)`` in ``required``; None
        when unconstrained (no placed table, or every node holds them
        all)."""
        if required is None:
            return None
        pool = [
            n for n in self.nodes
            if n.shards is not None and required <= n.shards
        ]
        if len(pool) == len(self.nodes):
            return None
        return pool

    def _shard_groups(self, batch: Batch, merged):
        """Split one dispatched batch by shard signature.

        Queries sharing a signature stay one (still mergeable) piece;
        a single-signature batch passes through whole, keeping its
        pre-computed merged form.  Returns ``[(batch, merged, pool),
        ...]`` where ``pool`` is the piece's eligible replica set (None
        = unconstrained).
        """
        order: list = []
        buckets: dict = {}
        for q in batch.queries:
            key = self.placement.required_shards(q.sql)
            if key not in buckets:
                order.append(key)
                buckets[key] = []
            buckets[key].append(q)
        if len(order) == 1:
            return [(batch, merged, self._pool_for_shards(order[0]))]
        return [
            (
                Batch(list(buckets[key]), batch.dispatch_s),
                None,
                self._pool_for_shards(key),
            )
            for key in order
        ]

    def _dispatch_node_batch(
        self,
        node: SimulatedNode,
        batch: Batch,
        table: dict[str, CompiledTrace],
        durations: dict[CostKey, dict[str, float]],
        workload_class: str,
        qed: QedReport | None,
    ) -> None:
        """Serve one per-node queue dispatch (stats keyed by node)."""
        stats = self._qed_stats_for(qed, f"node:{node.spec.name}")
        self._record_dispatch(stats, batch)
        if self.tracer.enabled:
            self.tracer.dispatch(f"node:{node.spec.name}", batch)
        if self.metrics is not None:
            self.metrics.counter("qed_batches").inc()
            self.metrics.histogram("batch_size").observe(batch.size)
        self._schedule_batch(
            node, batch, table, durations, workload_class, stats=stats,
        )

    def _assign_singletons(
        self,
        node: SimulatedNode,
        queries: tuple[QueuedQuery, ...] | list[QueuedQuery],
        dispatch_s: float,
        table: dict[str, CompiledTrace],
        durations: dict[CostKey, dict[str, float]],
        workload_class: str,
    ) -> None:
        """Serve queries back-to-back as plain single executions.

        Each query reuses its cached per-query compiled trace -- no
        re-rendered "merged" SQL, no re-parse, no re-compile -- and its
        pre-costed duration under the node's current setting (costed on
        demand for settings the pre-pass could not know about).
        """
        for query in queries:
            service = self._duration_for(
                node, query.sql, table, durations, workload_class
            )
            node.assign(
                query.sql, dispatch_s, service,
                ((query.sql, query.arrival_s),),
            )

    @staticmethod
    def _duration_for(
        node: SimulatedNode,
        key: str,
        table: dict[str, CompiledTrace],
        durations: dict[CostKey, dict[str, float]],
        workload_class: str,
    ) -> float:
        """``key``'s service time under the node's *current* setting.

        Served from the pre-costed table when possible; costed on
        demand (and memoized) for trace keys or settings the pre-pass
        could not know about -- merged-batch SQL, retuned nodes.
        """
        per_key = durations.setdefault((node.spec.hw, node.setting), {})
        if key not in per_key:
            original = node.sut.setting
            node.sut.apply_setting(node.setting)
            try:
                per_key[key] = node.sut.run_compiled(
                    table[key], workload_class
                ).duration_s
            finally:
                node.sut.apply_setting(original)
        return per_key[key]

    def _schedule_batch(
        self,
        node: SimulatedNode,
        batch: Batch,
        table: dict[str, CompiledTrace],
        durations: dict[CostKey, dict[str, float]],
        workload_class: str,
        stats: QedPartitionStats | None = None,
        merged=None,
    ) -> None:
        """Serve a dispatched QED batch as one merged execution.

        The batch becomes a single disjunctive query plus the
        client-side split work (built by the same
        :func:`~repro.core.qed.executor.merged_batch_execution` helper
        the QED experiment uses), and every query in the batch completes
        when the merged window does.

        Two degradations keep the schedule alive and cheap: a size-1
        batch bypasses merging entirely (its per-query trace is already
        in ``table``; re-rendering a "merged" singleton would re-parse
        and re-compile identical work), and a batch the aggregator
        rejects (mixed templates routed to one queue) is served as
        back-to-back singleton executions instead of crashing the whole
        ``schedule()``.
        """
        if batch.size == 1:
            self._assign_singletons(
                node, batch.queries, batch.dispatch_s, table,
                durations, workload_class,
            )
            if stats is not None:
                stats.singleton_windows += 1
            return
        if merged is None:
            try:
                merged = merge_queries(batch.sqls)
            except NotMergeableError:
                self._assign_singletons(
                    node, batch.queries, batch.dispatch_s, table,
                    durations, workload_class,
                )
                if stats is not None:
                    stats.fallback_batches += 1
                    stats.singleton_windows += batch.size
                return
        key = merged.sql
        if key not in table:
            execution, trace = merged_batch_execution(
                self.runner, merged
            )
            table[key] = trace.compiled()
            execution.release_result()
        service = self._duration_for(
            node, key, table, durations, workload_class
        )
        work = node.assign(
            key, batch.dispatch_s, service,
            tuple((q.sql, q.arrival_s) for q in batch.queries),
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "merge", node.spec.name, work.start_s, size=batch.size,
            )
        if stats is not None:
            stats.merged_windows += 1

    def _peak_model_power_w(self, horizon_s: float) -> float:
        """Peak fleet power under the linear per-node envelope.

        The same model the power-cap router schedules against: awake
        nodes draw idle watts (wake transitions included), busy windows
        add ``busy - idle``, sleeping nodes draw their sleep watts.
        Every sleep-to-wake and awake-to-sleep transition (dynamic
        re-consolidation can produce many per node) becomes a power
        step event.
        """
        power = 0.0
        events: list[tuple[float, float]] = []
        for node in self.nodes:
            est = node.power_estimate()
            sleep_step = est.idle_wall_w - node.spec.sleep_wall_w
            if node.started_awake:
                power += est.idle_wall_w
            else:
                power += node.spec.sleep_wall_w
            for called, _ready in node.wake_log:
                events.append((called, sleep_step))
            for start, _end in node.sleep_log:
                if start > 0.0:
                    events.append((start, -sleep_step))
            delta = est.busy_wall_w - est.idle_wall_w
            for work in node.scheduled:
                events.append((work.start_s, delta))
                events.append((work.end_s, -delta))
        events.sort(key=lambda e: (e[0], e[1]))
        peak = power
        for _, d in events:
            power += d
            peak = max(peak, power)
        return peak

    # -- phase 2: playback -------------------------------------------------

    def playback(self, schedule: ClusterSchedule,
                 mode: str = "batched") -> ClusterMeasurement:
        """Turn scheduled timelines into energy: the vectorized hot path
        (``batched``) or the per-query replay loop (``loop``)."""
        if schedule.columnar is not None:
            if mode != "batched":
                raise ValueError(
                    "a vectorized (columnar) schedule has no per-piece "
                    "timeline to replay in loop mode; schedule with "
                    "vectorized=False for the legacy loop"
                )
            return self._playback_columnar(schedule)
        if mode == "batched":
            measurements = play_batched(
                schedule.nodes, schedule.pieces_by_node,
                schedule.workload_class, schedule.settings_by_node,
            )
        elif mode == "loop":
            measurements = play_loop(
                schedule.nodes, schedule.pieces_by_node,
                schedule.workload_class, schedule.settings_by_node,
            )
        else:
            raise ValueError(f"unknown playback mode {mode!r}")
        usages: list[NodeUsage] = []
        responses: list[QueryResponse] = []
        for node in schedule.nodes:
            name = node.spec.name
            sleep_s = node.sleep_s(schedule.horizon_s)
            envelope = node.power_estimate()
            usages.append(NodeUsage(
                name=name,
                queries=sum(len(w.queries) for w in node.scheduled),
                busy_s=node.busy_s,
                wake_s=node.wake_s,
                sleep_s=sleep_s,
                horizon_s=schedule.horizon_s,
                playback=measurements[name],
                sleep_joules=node.spec.sleep_wall_w * sleep_s,
                re_sleeps=node.re_sleeps,
                busy_windows=tuple(
                    (w.start_s, w.end_s) for w in node.scheduled
                ),
                sleep_spans=tuple(node.sleep_spans(schedule.horizon_s)),
                wake_spans=tuple(node.wake_log),
                idle_wall_w=envelope.idle_wall_w,
                busy_wall_w=envelope.busy_wall_w,
                sleep_wall_w=node.spec.sleep_wall_w,
            ))
            for work in node.scheduled:
                for sql, arrival_s in work.queries:
                    responses.append(QueryResponse(
                        sql=sql, node=name, arrival_s=arrival_s,
                        start_s=work.start_s, completion_s=work.end_s,
                    ))
        responses.sort(key=lambda r: (r.arrival_s, r.completion_s))
        return ClusterMeasurement(
            horizon_s=schedule.horizon_s,
            nodes=usages,
            responses=responses,
            shed=list(schedule.shed),
            peak_power_w=schedule.peak_power_w,
            cap_w=schedule.cap_w,
            qed=schedule.qed,
            faults=schedule.faults,
            run_id=schedule.run_id,
            fingerprint=schedule.fingerprint,
        )

    def _playback_columnar(
        self, schedule: ClusterSchedule
    ) -> ClusterMeasurement:
        """Measurement for a vectorized schedule, staying columnar.

        Node energies come from :func:`play_columnar` (counts dot
        pre-costed measurements + linear idle); responses stay as
        arrays on the measurement (:class:`ResponseColumns`), which
        serves percentiles, SLA accounting, and phase windows without
        ever materializing per-query objects.
        """
        col = schedule.columnar
        measurements = play_columnar(
            schedule.nodes, col, schedule.horizon_s,
            schedule.workload_class,
        )
        usages: list[NodeUsage] = []
        for j, node in enumerate(schedule.nodes):
            name = node.spec.name
            rows = col.rows_for(j)
            starts = col.start_s[rows]
            ends = col.end_s[rows]
            envelope = node.power_estimate()
            usages.append(NodeUsage(
                name=name,
                queries=int(len(rows)),
                busy_s=float((ends - starts).sum()),
                wake_s=0.0,
                sleep_s=0.0,
                horizon_s=schedule.horizon_s,
                playback=measurements[name],
                sleep_joules=0.0,
                re_sleeps=0,
                busy_windows=(),
                sleep_spans=(),
                wake_spans=(),
                idle_wall_w=envelope.idle_wall_w,
                busy_wall_w=envelope.busy_wall_w,
                sleep_wall_w=node.spec.sleep_wall_w,
                busy_columns=(starts, ends),
            ))
        order = np.lexsort((col.end_s, col.arrival_s))
        response_columns = ResponseColumns(
            distinct=tuple(col.distinct),
            node_names=tuple(n.spec.name for n in schedule.nodes),
            sql_idx=col.sql_idx[order],
            node_idx=col.node_idx[order],
            arrival_s=col.arrival_s[order],
            start_s=col.start_s[order],
            completion_s=col.end_s[order],
        )
        return ClusterMeasurement(
            horizon_s=schedule.horizon_s,
            nodes=usages,
            responses=[],
            shed=list(schedule.shed),
            peak_power_w=schedule.peak_power_w,
            cap_w=schedule.cap_w,
            qed=schedule.qed,
            faults=schedule.faults,
            run_id=schedule.run_id,
            fingerprint=schedule.fingerprint,
            response_columns=response_columns,
        )

    def run(self, arrivals: list[Arrival], mode: str = "batched",
            vectorized: bool | None = None) -> ClusterMeasurement:
        """Schedule and play an arrival stream end to end.

        ``loop`` playback needs the legacy piece-based schedule, so it
        implies ``vectorized=False`` unless the caller forced the fast
        path explicitly (which then fails in :meth:`playback`).
        """
        if mode == "loop" and vectorized is None:
            vectorized = False
        return self.playback(
            self.schedule(arrivals, vectorized=vectorized), mode=mode
        )
