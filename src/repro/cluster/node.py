"""Per-node simulation state: a server wrapping a SystemUnderTest.

Each cluster node is the paper's machine (or any
:class:`~repro.hardware.system.SystemUnderTest`) pinned to its own PVC
operating point, with an optional per-node QED admission queue and a
sleep state for the consolidate policies.  The node tracks *when* things
happen (busy windows, wake transitions, sleep spans); *what* they cost
is resolved later by batched compiled-trace playback
(:mod:`repro.cluster.playback`).

Sleep model: a node alternates between asleep spans (billed at
``sleep_wall_w`` outside the hardware model) and awake spans.  Every
sleep-to-awake transition pays ``wake_latency_s`` of awake-idle power
during which the node cannot serve.  Dynamic re-consolidation uses the
full cycle -- wake under load, drain, re-sleep, wake again -- so spans
are lists, not a single one-shot transition.

Heterogeneous fleets: a :class:`NodeSpec` names its hardware profile
(``hw``, resolved through :data:`SUT_FACTORIES`), its PVC setting, a
relative ``capacity`` (how much backlog the consolidate policies let it
absorb), and its sleep/wake characteristics.  :func:`hetero_fleet`
expands per-group :class:`NodeGroup` descriptions into specs; nodes
sharing a ``(hw, setting)`` pair stay playback-equivalent, which is the
property batched playback exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.measure import ScheduledWork
from repro.core.fleet import ServerSpec, server_from_sut
from repro.core.qed.policy import BatchPolicy
from repro.core.qed.queue import QueryQueue
from repro.hardware.cpu import PvcSetting, STOCK_SETTING
from repro.hardware.profiles import paper_sut
from repro.hardware.system import SystemUnderTest
from repro.hardware.trace import CompiledTrace, Idle, Trace

#: Named hardware profiles a :class:`NodeSpec` may reference.  All are
#: variants of the calibrated paper machine; registering a new profile
#: is how a fleet mixes genuinely different hardware (the simulator
#: builds one SUT per node from its profile's factory).
SUT_FACTORIES: dict[str, Callable[[], SystemUnderTest]] = {
    "paper": paper_sut,
    "paper-nogpu": lambda: paper_sut(has_gpu=False),
    "paper-diskless": lambda: paper_sut(has_disk=False),
}


@dataclass(frozen=True)
class NodeSpec:
    """One node's static configuration."""

    name: str
    setting: PvcSetting = STOCK_SETTING
    sleep_wall_w: float = 3.5
    wake_latency_s: float = 30.0
    queue_policy: BatchPolicy | None = None
    hw: str = "paper"
    capacity: float = 1.0

    def __post_init__(self) -> None:
        if self.sleep_wall_w < 0:
            raise ValueError("sleep_wall_w must be non-negative")
        if self.wake_latency_s < 0:
            raise ValueError("wake_latency_s must be non-negative")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")


def uniform_fleet(
    count: int,
    setting: PvcSetting = STOCK_SETTING,
    sleep_wall_w: float = 3.5,
    wake_latency_s: float = 30.0,
    queue_policy: BatchPolicy | None = None,
    prefix: str = "node",
    hw: str = "paper",
    capacity: float = 1.0,
) -> list[NodeSpec]:
    """``count`` identical node specs (``node00``, ``node01``, ...)."""
    if count < 1:
        raise ValueError("a fleet needs at least one node")
    width = max(2, len(str(count - 1)))
    return [
        NodeSpec(
            name=f"{prefix}{i:0{width}d}",
            setting=setting,
            sleep_wall_w=sleep_wall_w,
            wake_latency_s=wake_latency_s,
            queue_policy=queue_policy,
            hw=hw,
            capacity=capacity,
        )
        for i in range(count)
    ]


@dataclass(frozen=True)
class NodeGroup:
    """A homogeneous slice of a heterogeneous fleet."""

    count: int
    prefix: str = "node"
    hw: str = "paper"
    setting: PvcSetting = STOCK_SETTING
    capacity: float = 1.0
    sleep_wall_w: float = 3.5
    wake_latency_s: float = 30.0
    queue_policy: BatchPolicy | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("a node group needs at least one node")
        if self.hw not in SUT_FACTORIES:
            raise ValueError(
                f"unknown hardware profile {self.hw!r}; "
                f"known: {sorted(SUT_FACTORIES)}"
            )


def hetero_fleet(groups: list[NodeGroup]) -> list[NodeSpec]:
    """Expand node groups into a flat spec list (names stay unique)."""
    if not groups:
        raise ValueError("a fleet needs at least one node group")
    specs: list[NodeSpec] = []
    for group in groups:
        specs.extend(uniform_fleet(
            group.count,
            setting=group.setting,
            sleep_wall_w=group.sleep_wall_w,
            wake_latency_s=group.wake_latency_s,
            queue_policy=group.queue_policy,
            prefix=group.prefix,
            hw=group.hw,
            capacity=group.capacity,
        ))
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError("node group prefixes collide; names must be unique")
    return specs


class TimelineAccounting:
    """Busy/wake/sleep accounting over ``scheduled`` work + span logs.

    Shared by the live :class:`SimulatedNode` and the frozen
    :class:`~repro.cluster.simulator.NodeTimeline` snapshot so
    schedule-time and playback-time accounting can never diverge.
    Expects ``spec``, ``sut``, ``scheduled``, ``started_awake``,
    ``sleep_log`` (``(start, end-or-None)`` spans, the open span being
    the current sleep), and ``wake_log`` (``(called, ready)`` spans).
    """

    @property
    def awake(self) -> bool:
        """Awake or in its wake transition (not serviceable until ready)."""
        return not (self.sleep_log and self.sleep_log[-1][1] is None)

    @property
    def busy_s(self) -> float:
        return sum(w.service_s for w in self.scheduled)

    @property
    def wake_s(self) -> float:
        return sum(ready - called for called, ready in self.wake_log)

    def sleep_s(self, horizon_s: float) -> float:
        return sum(end - start for start, end in self.sleep_spans(horizon_s))

    def sleep_spans(self, horizon_s: float) -> list[tuple[float, float]]:
        """Closed sleep spans clamped to ``[0, horizon_s]`` (a
        crash-forced sleep may be logged at or past the horizon when
        trailing retries are dead-lettered; it then bills nothing)."""
        spans = []
        for start, end in self.sleep_log:
            if start >= horizon_s - 1e-12:
                continue
            end = horizon_s if end is None else min(end, horizon_s)
            if end > start:
                spans.append((start, end))
        return spans

    @property
    def re_sleeps(self) -> int:
        """Sleeps entered *after* serving awake (dynamic consolidation);
        starting the run asleep is provisioning, not a re-sleep."""
        return sum(1 for start, _ in self.sleep_log if start > 0.0)

    # -- single-transition compatibility views ---------------------------

    @property
    def wake_called_s(self) -> float | None:
        """First wake call (None if the node never woke)."""
        return self.wake_log[0][0] if self.wake_log else None

    @property
    def wake_ready_s(self) -> float:
        """End of the latest wake transition (0.0 if none)."""
        return self.wake_log[-1][1] if self.wake_log else 0.0

    def modeled_power_w(self, now_s: float) -> float:
        """Instantaneous modeled wall power at ``now_s``.

        The same linear envelope playback integrates: sleep watts when
        asleep (or crashed -- the crash forces a sleep span), idle
        watts awake (wake transitions included), busy watts inside a
        busy window.  Read by the metrics sampler from inside the event
        loop, so it reflects the timeline *as scheduled so far* -- the
        standard discrete-event sampled-at-processing-time view.
        """
        if not self.awake:
            return self.spec.sleep_wall_w
        est = self.power_estimate()
        # Scheduled windows are time-ordered per node; walk from the
        # latest so samples near the loop's position stay O(1).
        for work in reversed(self.scheduled):
            if work.start_s <= now_s < work.end_s:
                return est.busy_wall_w
            if work.end_s <= now_s:
                break
        return est.idle_wall_w

    def power_estimate(self) -> ServerSpec:
        """Linear power envelope (Fan et al.) derived from the SUT.

        Memoized on the SUT object (shared between the live node and
        its frozen snapshots) because the derivation replays component
        models.
        """
        cache = getattr(self.sut, "_envelope_cache", None)
        if cache is None:
            cache = {}
            self.sut._envelope_cache = cache
        key = (self.spec.name, self.spec.sleep_wall_w)
        if key not in cache:
            cache[key] = server_from_sut(
                self.sut, self.spec.name, self.spec.sleep_wall_w
            )
        return cache[key]


class SimulatedNode(TimelineAccounting):
    """Mutable per-run state of one node.

    A node either starts the run awake or asleep; routers may wake it
    (paying ``wake_latency_s`` of unserviceable idle) and -- once it has
    drained -- put it back to sleep, any number of times.  Work routed
    to a waking node starts no earlier than the transition's end; work
    can never be assigned to a sleeping node at all.
    """

    def __init__(self, spec: NodeSpec, sut: SystemUnderTest):
        self.spec = spec
        self.sut = sut
        #: Active (non-empty) fault plan, installed by the simulator
        #: before the router's ``prepare``; survives ``reset`` so the
        #: router's node resets cannot drop it.  None: no faults.
        self.faults = None
        #: The ``(table, shard)`` pairs this node holds, installed by
        #: the simulator when a placement map is active (None: fully
        #: replicated, the seed model).  Survives ``reset`` like
        #: ``faults``; re-replication after a crash grows the set of
        #: the copy's destination mid-run.
        self.shards: set[tuple[str, int]] | None = None
        self.reset(awake=True)

    # -- life cycle -------------------------------------------------------

    def reset(self, awake: bool = True) -> None:
        """Fresh per-run state (called by the router's ``prepare``)."""
        self.started_awake = awake
        self.sleep_log: list[tuple[float, float | None]] = (
            [] if awake else [(0.0, None)]
        )
        self.wake_log: list[tuple[float, float]] = []
        self.busy_until = 0.0
        self.scheduled: list[ScheduledWork] = []
        self.setting = self.spec.setting
        self.setting_log: list[tuple[float, PvcSetting]] = [
            (0.0, self.spec.setting)
        ]
        self.queue = (
            QueryQueue(self.spec.queue_policy)
            if self.spec.queue_policy is not None else None
        )
        #: Fault state: when the node crashed (None = alive), every
        #: crash that fired, and every wake call a fault failed.
        self.crashed_s: float | None = None
        self.crash_log: list[float] = []
        self.failed_wakes: list[float] = []

    @property
    def ready_s(self) -> float:
        """Earliest time newly routed work could start (if awake)."""
        return max(self.busy_until, self.wake_ready_s)

    def can_serve(self, now_s: float) -> bool:
        """Routable at ``now_s``: neither crashed nor transiently
        unavailable.  (Being asleep is a separate, wakeable state.)"""
        if self.crashed_s is not None:
            return False
        if self.faults is not None and not self.faults.available(
            self.spec.name, now_s
        ):
            return False
        return True

    def wake(self, now_s: float) -> float:
        """Begin the wake transition (idempotent); returns ready time.

        Under a fault plan the attempt may *fail*: the node stays
        asleep (callers detect this via ``awake``) and the failure is
        logged.  Crashed nodes never wake until they recover.
        """
        if self.crashed_s is not None:
            return self.wake_ready_s
        if not self.awake:
            if self.faults is not None and not self.faults.wake_attempt(
                self.spec.name, now_s
            ):
                self.failed_wakes.append(now_s)
                return self.wake_ready_s
            start, _ = self.sleep_log[-1]
            if now_s < start:
                raise ValueError("cannot wake a node before it slept")
            self.sleep_log[-1] = (start, now_s)
            self.wake_log.append((now_s, now_s + self.spec.wake_latency_s))
        return self.wake_ready_s

    def set_setting(self, setting: PvcSetting, now_s: float) -> None:
        """Retune the node's PVC operating point from ``now_s`` on.

        The change is logged so playback can attribute idle time to the
        setting the node actually held; busy windows additionally stamp
        their setting at :meth:`assign` time (exact by construction).
        """
        if self.setting_log and now_s < self.setting_log[-1][0]:
            raise ValueError("setting changes must move forward in time")
        self.setting = setting
        self.setting_log.append((now_s, setting))

    def drained(self, now_s: float) -> bool:
        """No backlog, no queued work, nothing in flight at ``now_s``."""
        if self.queue is not None and len(self.queue) > 0:
            return False
        return self.awake and self.ready_s <= now_s + 1e-12

    def sleep(self, now_s: float) -> None:
        """Re-enter the sleep state (dynamic re-consolidation).

        Only a *drained* node may sleep -- the re-sleep-after-drain
        invariant: a sleeping node can never strand scheduled work.
        """
        if not self.awake:
            return
        if not self.drained(now_s):
            raise ValueError(
                f"cannot sleep node {self.spec.name!r} with pending work"
            )
        self.sleep_log.append((now_s, None))

    def crash(self, at_s: float) -> tuple[list[tuple[str, float]], float]:
        """Kill the node at ``at_s``; returns ``(lost, wasted_s)``.

        Every busy window still open at the crash is lost: its
        ``(sql, arrival_s)`` pairs come back for requeueing, and the
        partial burn of a window the crash interrupted *mid-batch*
        (started but unfinished) is returned as wasted busy seconds.
        Per-node queue content is lost (and returned) too.  The node
        then reads as powered off -- a forced sleep span the timeline
        bills at ``sleep_wall_w`` -- and stays unroutable until
        :meth:`recover`.
        """
        if self.crashed_s is not None:
            return [], 0.0
        lost: list[tuple[str, float]] = []
        wasted = 0.0
        kept: list[ScheduledWork] = []
        for work in self.scheduled:
            if work.end_s <= at_s + 1e-12:
                kept.append(work)
                continue
            lost.extend(work.queries)
            if work.start_s < at_s - 1e-12:
                wasted += at_s - work.start_s
        self.scheduled = kept
        self.busy_until = max((w.end_s for w in kept), default=0.0)
        if self.queue is not None and len(self.queue) > 0:
            batch = self.queue.flush(at_s)
            if batch is not None:
                lost.extend(
                    (q.sql, q.arrival_s) for q in batch.queries
                )
        if self.wake_log and self.wake_log[-1][1] > at_s:
            # Crashed mid-wake: the transition ends (unfinished) here.
            called, _ = self.wake_log[-1]
            self.wake_log[-1] = (called, at_s)
        if self.awake:
            self.sleep_log.append((at_s, None))
        self.crashed_s = at_s
        self.crash_log.append(at_s)
        return lost, wasted

    def recover(self, now_s: float) -> None:
        """Return a crashed node to the pool: powered off (its forced
        sleep span stays open) but wakeable and routable again."""
        if self.crashed_s is None:
            return
        if now_s < self.crashed_s:
            raise ValueError("cannot recover a node before it crashed")
        self.crashed_s = None

    def assign(
        self,
        trace_key: str,
        dispatch_s: float,
        service_s: float,
        queries: tuple[tuple[str, float], ...],
    ) -> ScheduledWork:
        """Schedule one busy window; returns the placed work.

        The window starts when the node is available: never before the
        dispatch time, the end of prior work, or -- the consolidate
        invariant -- the end of the wake transition.  The node's
        *current* PVC setting is stamped on the window so playback costs
        it under the setting its service time was computed for.
        """
        if self.crashed_s is not None:
            raise ValueError(
                f"cannot assign work to crashed node {self.spec.name!r}"
            )
        if not self.awake:
            raise ValueError(
                f"cannot assign work to sleeping node {self.spec.name!r}"
            )
        if service_s < 0:
            raise ValueError("service_s must be non-negative")
        start = max(dispatch_s, self.busy_until, self.wake_ready_s)
        stretch = 0.0
        if self.faults is not None:
            # Straggler fault: the window occupies longer than costed.
            factor = self.faults.slowdown(self.spec.name, start)
            if factor > 1.0:
                stretch = service_s * (factor - 1.0)
        work = ScheduledWork(
            trace_key=trace_key,
            start_s=start,
            end_s=start + service_s + stretch,
            queries=queries,
            setting=self.setting,
            stretch_s=stretch,
        )
        self.scheduled.append(work)
        self.busy_until = work.end_s
        return work

    # -- trace assembly ---------------------------------------------------
    # (busy_s/wake_s/sleep_s/power_estimate come from TimelineAccounting)


def node_timeline_pieces(
    node: TimelineAccounting,
    table: dict[str, CompiledTrace],
    horizon_s: float,
) -> tuple[list[CompiledTrace], list[PvcSetting]]:
    """A node's awake timeline as compiled-trace pieces + their settings.

    Busy windows resolve through ``table`` under the setting stamped at
    assign time; the gaps between them (and wake transitions) become
    ``Idle`` segments so playback charges awake-idle power, under the
    setting the node's retune log shows it held entering the gap (a
    gap containing a retune is attributed wholly to its entry setting).
    Sleep spans are *not* represented -- they are billed at
    ``sleep_wall_w`` outside the hardware model.
    """
    log = list(getattr(node, "setting_log", ())) or [
        (0.0, node.spec.setting)
    ]

    def setting_at(t: float) -> PvcSetting:
        current = log[0][1]
        for stamp, setting in log:
            if stamp > t + 1e-12:
                break
            current = setting
        return current

    events: list[tuple[float, float, str, object]] = []
    for start, end in node.sleep_spans(horizon_s):
        events.append((start, end, "sleep", None))
    for called, ready in node.wake_log:
        events.append((called, ready, "wake", None))
    for work in node.scheduled:
        events.append((work.start_s, work.end_s, "busy", work))
    events.sort(key=lambda e: (e[0], e[1]))

    pieces: list[CompiledTrace] = []
    settings: list[PvcSetting] = []
    cursor = 0.0
    for start, end, kind, payload in events:
        if start - cursor > 1e-12:
            pieces.append(_idle_piece(start - cursor, "idle"))
            settings.append(setting_at(cursor))
        cursor = max(cursor, start)
        if kind == "sleep":
            cursor = max(cursor, end)
            continue
        span = end - cursor
        if kind == "wake":
            if span > 1e-12:
                pieces.append(_idle_piece(span, "wake"))
                settings.append(setting_at(cursor))
        else:
            work = payload
            pieces.append(table[work.trace_key])
            settings.append(work.setting or node.spec.setting)
            if work.stretch_s > 1e-12:
                # Straggler inflation: degraded occupancy past the
                # costed trace, billed at awake-idle watts.
                pieces.append(_idle_piece(work.stretch_s, "straggler"))
                settings.append(work.setting or node.spec.setting)
        cursor = max(cursor, end)
    if horizon_s - cursor > 1e-12 and node.awake:
        pieces.append(_idle_piece(horizon_s - cursor, "idle"))
        settings.append(setting_at(cursor))
    return pieces, settings


def _idle_piece(seconds: float, label: str) -> CompiledTrace:
    return Trace([Idle(seconds, label=label)]).compiled()
