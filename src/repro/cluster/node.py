"""Per-node simulation state: a server wrapping a SystemUnderTest.

Each cluster node is the paper's machine (or any
:class:`~repro.hardware.system.SystemUnderTest`) pinned to its own PVC
operating point, with an optional per-node QED admission queue and a
sleep state for the consolidate policies.  The node tracks *when* things
happen (busy windows, wake transitions, sleep spans); *what* they cost
is resolved later by batched compiled-trace playback
(:mod:`repro.cluster.playback`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.measure import ScheduledWork
from repro.core.fleet import ServerSpec, server_from_sut
from repro.core.qed.policy import BatchPolicy
from repro.core.qed.queue import QueryQueue
from repro.hardware.cpu import PvcSetting, STOCK_SETTING
from repro.hardware.system import SystemUnderTest
from repro.hardware.trace import CompiledTrace, Idle, Trace


@dataclass(frozen=True)
class NodeSpec:
    """One node's static configuration."""

    name: str
    setting: PvcSetting = STOCK_SETTING
    sleep_wall_w: float = 3.5
    wake_latency_s: float = 30.0
    queue_policy: BatchPolicy | None = None

    def __post_init__(self) -> None:
        if self.sleep_wall_w < 0:
            raise ValueError("sleep_wall_w must be non-negative")
        if self.wake_latency_s < 0:
            raise ValueError("wake_latency_s must be non-negative")


def uniform_fleet(
    count: int,
    setting: PvcSetting = STOCK_SETTING,
    sleep_wall_w: float = 3.5,
    wake_latency_s: float = 30.0,
    queue_policy: BatchPolicy | None = None,
    prefix: str = "node",
) -> list[NodeSpec]:
    """``count`` identical node specs (``node00``, ``node01``, ...)."""
    if count < 1:
        raise ValueError("a fleet needs at least one node")
    width = max(2, len(str(count - 1)))
    return [
        NodeSpec(
            name=f"{prefix}{i:0{width}d}",
            setting=setting,
            sleep_wall_w=sleep_wall_w,
            wake_latency_s=wake_latency_s,
            queue_policy=queue_policy,
        )
        for i in range(count)
    ]


class TimelineAccounting:
    """Busy/wake/sleep accounting over ``scheduled`` work + wake state.

    Shared by the live :class:`SimulatedNode` and the frozen
    :class:`~repro.cluster.simulator.NodeTimeline` snapshot so
    schedule-time and playback-time accounting can never diverge.
    Expects ``scheduled``, ``started_awake``, ``wake_called_s``, and
    ``wake_ready_s`` attributes.
    """

    @property
    def busy_s(self) -> float:
        return sum(w.service_s for w in self.scheduled)

    @property
    def wake_s(self) -> float:
        if self.started_awake or self.wake_called_s is None:
            return 0.0
        return self.wake_ready_s - self.wake_called_s

    def sleep_s(self, horizon_s: float) -> float:
        if self.started_awake:
            return 0.0
        if self.wake_called_s is None:
            return horizon_s
        return self.wake_called_s


class SimulatedNode(TimelineAccounting):
    """Mutable per-run state of one node.

    Sleep model: a node either starts the run awake or starts asleep and
    is woken at most once (on demand, by a consolidate-style router).
    Waking takes ``wake_latency_s`` during which the node draws idle
    power but cannot serve; work routed to a waking node starts no
    earlier than ``wake_ready_s``.  Asleep time draws ``sleep_wall_w``
    and is accounted outside trace playback.
    """

    def __init__(self, spec: NodeSpec, sut: SystemUnderTest):
        self.spec = spec
        self.sut = sut
        self._power_estimate: ServerSpec | None = None
        self.reset(awake=True)

    # -- life cycle -------------------------------------------------------

    def reset(self, awake: bool = True) -> None:
        """Fresh per-run state (called by the router's ``prepare``)."""
        self.started_awake = awake
        self.wake_called_s: float | None = None
        self.wake_ready_s = 0.0
        self.busy_until = 0.0
        self.scheduled: list[ScheduledWork] = []
        self.queue = (
            QueryQueue(self.spec.queue_policy)
            if self.spec.queue_policy is not None else None
        )

    @property
    def awake(self) -> bool:
        """Awake or in its wake transition (not serviceable until ready)."""
        return self.started_awake or self.wake_called_s is not None

    @property
    def ready_s(self) -> float:
        """Earliest time newly routed work could start (if awake)."""
        return max(self.busy_until, self.wake_ready_s)

    def wake(self, now_s: float) -> float:
        """Begin the wake transition (idempotent); returns ready time."""
        if not self.awake:
            self.wake_called_s = now_s
            self.wake_ready_s = now_s + self.spec.wake_latency_s
        return self.wake_ready_s

    def assign(
        self,
        trace_key: str,
        dispatch_s: float,
        service_s: float,
        queries: tuple[tuple[str, float], ...],
    ) -> ScheduledWork:
        """Schedule one busy window; returns the placed work.

        The window starts when the node is available: never before the
        dispatch time, the end of prior work, or -- the consolidate
        invariant -- the end of the wake transition.
        """
        if not self.awake:
            raise ValueError(
                f"cannot assign work to sleeping node {self.spec.name!r}"
            )
        if service_s < 0:
            raise ValueError("service_s must be non-negative")
        start = max(dispatch_s, self.busy_until, self.wake_ready_s)
        work = ScheduledWork(
            trace_key=trace_key,
            start_s=start,
            end_s=start + service_s,
            queries=queries,
        )
        self.scheduled.append(work)
        self.busy_until = work.end_s
        return work

    # -- accounting (busy_s/wake_s/sleep_s from TimelineAccounting) -------

    def power_estimate(self) -> ServerSpec:
        """Linear power envelope (Fan et al.) derived from the SUT.

        Used by the power-cap router and the fleet's modeled power
        timeline; memoized because the derivation replays component
        models.
        """
        if self._power_estimate is None:
            self._power_estimate = server_from_sut(
                self.sut, self.spec.name, self.spec.sleep_wall_w
            )
        return self._power_estimate

    # -- trace assembly ---------------------------------------------------

    def pieces(self, table: dict[str, CompiledTrace],
               horizon_s: float) -> list[CompiledTrace]:
        """The node's awake timeline as compiled-trace pieces.

        Busy windows resolve through ``table``; the gaps between them
        (and the wake transition) become ``Idle`` segments so playback
        charges awake-idle power.  Sleeping time is *not* represented --
        it is billed at ``sleep_wall_w`` outside the hardware model.
        """
        if not self.awake:
            return []
        out: list[CompiledTrace] = []
        if self.started_awake:
            cursor = 0.0
        else:
            cursor = self.wake_called_s or 0.0
            if self.wake_ready_s > cursor:
                out.append(_idle_piece(self.wake_ready_s - cursor, "wake"))
                cursor = self.wake_ready_s
        for work in self.scheduled:
            if work.start_s - cursor > 1e-12:
                out.append(_idle_piece(work.start_s - cursor, "idle"))
            out.append(table[work.trace_key])
            cursor = work.end_s
        if horizon_s - cursor > 1e-12:
            out.append(_idle_piece(horizon_s - cursor, "idle"))
        return out


def _idle_piece(seconds: float, label: str) -> CompiledTrace:
    return Trace([Idle(seconds, label=label)]).compiled()
