"""Deterministic run identity: config fingerprint -> run-id.

Every ``schedule()`` call stamps its run with a short hex run-id
derived from a canonical-JSON fingerprint of everything that shapes the
outcome: the fleet's specs, the routing policy's scalar configuration,
the QED mode (master-queue policy + placement, or per-node policies),
the fault plan and retry policy, the workload class and scale factor,
and a digest of the arrival stream itself.  Two runs share a run-id iff
their configurations match, which is what makes benchmark-history
entries attributable to exact configs.

The arrival digest is deliberately cheap (CRC over the packed arrival
times plus the sorted distinct statements) so fingerprinting a
million-arrival stream stays far under the 5% disabled-path overhead
budget; it is a change detector, not a cryptographic commitment.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np


def describe_policy(obj: Any) -> dict | None:
    """A policy object's scalar configuration, for fingerprinting.

    Uses the object's own ``describe()`` when it defines one; otherwise
    scans public instance attributes, keeping scalars and lists whose
    elements describe themselves as scalars (a PVC ladder).  Private
    (mutable, per-run) state is excluded so the fingerprint is stable
    across runs of the same configuration.
    """
    if obj is None:
        return None
    describe = getattr(obj, "describe", None)
    if callable(describe):
        return describe()
    out: dict = {"policy": type(obj).__name__}
    for key, value in sorted(vars(obj).items()):
        if key.startswith("_"):
            continue
        if value is None or isinstance(value, (bool, int, float, str)):
            out[key] = value
        elif isinstance(value, (list, tuple)):
            parts = [
                v.describe() if hasattr(v, "describe") else v
                for v in value
            ]
            if all(isinstance(p, (bool, int, float, str)) for p in parts):
                out[key] = list(parts)
    return out


def describe_fleet(specs: Iterable[Any]) -> list[dict]:
    """Node specs as plain dicts (settings via their ``describe()``)."""
    out: list[dict] = []
    for spec in specs:
        out.append({
            "name": spec.name,
            "hw": spec.hw,
            "setting": spec.setting.describe(),
            "sleep_wall_w": spec.sleep_wall_w,
            "wake_latency_s": spec.wake_latency_s,
            "capacity": spec.capacity,
            "queue": describe_policy(spec.queue_policy),
        })
    return out


def arrivals_digest(arrivals: Sequence[Any]) -> dict:
    """Cheap change-detecting digest of one arrival stream."""
    times = np.fromiter(
        (a.time_s for a in arrivals), dtype=np.float64,
        count=len(arrivals),
    )
    distinct = sorted(set(a.sql for a in arrivals))
    return {
        "count": len(arrivals),
        "times_crc": zlib.crc32(times.tobytes()),
        "distinct": len(distinct),
        "sql_crc": zlib.crc32("\n".join(distinct).encode()),
    }


def config_fingerprint(
    specs: Iterable[Any],
    router: Any,
    master_queue: Any = None,
    faults: Any = None,
    retry: Any = None,
    arrivals: Sequence[Any] | None = None,
    workload_class: str = "",
    scale_factor: float | None = None,
    placement: Any = None,
) -> dict:
    """Everything that shapes a run's outcome, as a JSON-able dict.

    An *empty* fault plan fingerprints as no plan at all -- it injects
    nothing, and the simulator's identity guard promises byte-equal
    runs either way.  A data-placement map contributes its full shard
    layout under ``"placement"``; the key is present only when a map is
    active, so no-placement fingerprints (and their run-ids) are
    unchanged from the fully-replicated seed.
    """
    plan = None
    if faults is not None and not faults.empty:
        plan = faults.to_dict()
    qed = None
    if master_queue is not None:
        qed = {
            "mode": "master",
            "policy": describe_policy(master_queue.policy),
            "placement": describe_policy(master_queue.placement),
        }
    out: dict = {
        "fleet": describe_fleet(specs),
        "router": describe_policy(router),
        "qed": qed,
        "faults": plan,
        "retry": describe_policy(retry) if plan is not None else None,
        "arrivals": (
            arrivals_digest(arrivals) if arrivals is not None else None
        ),
        "workload_class": workload_class,
        "scale_factor": scale_factor,
    }
    if placement is not None:
        out["placement"] = placement.to_dict()
    return out


def run_id_for(fingerprint: dict) -> str:
    """Short stable hex id of a canonical-JSON fingerprint."""
    canonical = json.dumps(
        fingerprint, sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]
