"""Per-query span tracing for the cluster simulator.

A trace is a flat list of :class:`Span` records on named *tracks*
(``master`` for the coordinator, one track per node), each either a
duration span or an instant, with an explicit parent link back to the
query's arrival record.  One query's life reads as a causal chain:

    arrival -> queue-wait -> dispatch -> [wake] -> [merge] ->
    playback -> served | shed | dead-letter

plus fault events (``crash``, ``recover``, ``retry``, ``wake-failure``)
interleaved on the tracks where they fired.  Exactly one *terminal*
span (:data:`TERMINAL_PHASES`) exists per arrival -- the conservation
invariant the observability tests pin.

The default :class:`Tracer` is disabled and does nothing; the simulator
guards every hook behind ``tracer.enabled``, so a run without tracing
pays only dead branch checks.  :class:`SpanTracer` records everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Phases that end a query's life.  Every arrival gets exactly one.
TERMINAL_PHASES = ("served", "shed", "dead-letter")

#: Track name of the coordinator (arrivals, queueing, dispatch, retry).
MASTER_TRACK = "master"


@dataclass(frozen=True)
class Span:
    """One trace record: a duration span or an instant on a track."""

    span_id: int
    parent_id: int | None
    name: str
    track: str
    start_s: float
    end_s: float
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def is_instant(self) -> bool:
        return self.end_s == self.start_s  # repro: noqa[FLOAT-EQ]: instants copy start_s into end_s exactly

    @property
    def is_terminal(self) -> bool:
        return self.name in TERMINAL_PHASES

    def to_dict(self) -> dict:
        return {
            "type": "instant" if self.is_instant else "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "track": self.track,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "args": self.args,
        }


class Tracer:
    """No-op base tracer: the zero-cost default.

    Every simulator hook checks :attr:`enabled` before calling any
    method, so these bodies exist only as a safety net (a direct call
    on a disabled tracer must still be harmless).
    """

    enabled = False

    def begin_run(self, metadata: dict) -> None:
        pass

    def arrival(self, sql: str, t_s: float) -> int:
        return 0

    def instant(self, name: str, track: str, t_s: float,
                parent: int | None = None, **args: Any) -> int:
        return 0

    def span(self, name: str, track: str, start_s: float, end_s: float,
             parent: int | None = None, **args: Any) -> int:
        return 0

    def dispatch(self, partition: str, batch: Any) -> None:
        pass

    def terminal(self, name: str, sql: str, arrival_s: float,
                 t_s: float, track: str = MASTER_TRACK,
                 **args: Any) -> int:
        return 0

    def finish(self, horizon_s: float) -> None:
        pass


#: Shared disabled tracer (stateless, safe to share across simulators).
NULL_TRACER = Tracer()


class SpanTracer(Tracer):
    """Recording tracer: collects :class:`Span` records for export.

    Reusable across runs -- :meth:`begin_run` resets all state, so one
    tracer handed to a simulator always holds the *latest* run's trace.
    """

    enabled = True

    def __init__(self) -> None:
        self.begin_run({})

    def begin_run(self, metadata: dict) -> None:
        self.metadata: dict = dict(metadata)
        self.spans: list[Span] = []
        self.horizon_s: float = 0.0
        self._next_id = 1
        #: (sql, arrival_s) -> arrival span id, the parent of every
        #: later record in that query's causal chain.
        self._arrival_ids: dict[tuple[str, float], int] = {}

    # -- recording --------------------------------------------------------

    def _record(self, name: str, track: str, start_s: float,
                end_s: float, parent: int | None, args: dict) -> int:
        span_id = self._next_id
        self._next_id += 1
        self.spans.append(Span(
            span_id=span_id, parent_id=parent, name=name, track=track,
            start_s=start_s, end_s=end_s, args=args,
        ))
        return span_id

    def instant(self, name: str, track: str, t_s: float,
                parent: int | None = None, **args: Any) -> int:
        return self._record(name, track, t_s, t_s, parent, args)

    def span(self, name: str, track: str, start_s: float, end_s: float,
             parent: int | None = None, **args: Any) -> int:
        return self._record(name, track, start_s, end_s, parent, args)

    def arrival(self, sql: str, t_s: float) -> int:
        span_id = self.instant("arrival", MASTER_TRACK, t_s, sql=sql)
        self._arrival_ids[(sql, t_s)] = span_id
        return span_id

    def parent_of(self, sql: str, arrival_s: float) -> int | None:
        return self._arrival_ids.get((sql, arrival_s))

    def dispatch(self, partition: str, batch: Any) -> None:
        """One batch leaving an admission queue: a dispatch instant on
        the master track plus a queue-wait span per member query."""
        dispatch_id = self.instant(
            "dispatch", MASTER_TRACK, batch.dispatch_s,
            partition=partition, size=batch.size,
        )
        for q in batch.queries:
            if batch.dispatch_s - q.arrival_s > 1e-12:
                self.span(
                    "queue-wait", MASTER_TRACK, q.arrival_s,
                    batch.dispatch_s,
                    parent=self.parent_of(q.sql, q.arrival_s),
                    sql=q.sql, partition=partition,
                    dispatch=dispatch_id,
                )

    def terminal(self, name: str, sql: str, arrival_s: float,
                 t_s: float, track: str = MASTER_TRACK,
                 **args: Any) -> int:
        if name not in TERMINAL_PHASES:
            raise ValueError(f"{name!r} is not a terminal phase")
        return self.instant(
            name, track, t_s, parent=self.parent_of(sql, arrival_s),
            sql=sql, arrival_s=arrival_s, **args,
        )

    def finish(self, horizon_s: float) -> None:
        self.horizon_s = horizon_s

    # -- views ------------------------------------------------------------

    @property
    def tracks(self) -> list[str]:
        """Track names in stable order: master first, then by name."""
        names = {s.track for s in self.spans}
        names.discard(MASTER_TRACK)
        return [MASTER_TRACK] + sorted(names)

    def terminal_spans(self) -> list[Span]:
        return [s for s in self.spans if s.is_terminal]
