"""Observability layer: span tracing, streaming metrics, attribution.

The cluster simulator's aggregates (:class:`ClusterMeasurement`) say
*what* a run cost; this package records *why*: per-query causal spans
(arrival, master-queue wait, dispatch, wake, merge, playback,
completion, plus fault events), counters/gauges/histograms sampled on
simulated-time boundaries, a deterministic run-id derived from the run's
full configuration fingerprint, and per-node per-phase energy
attribution that reconciles against the modeled total to <= 1e-9.

The default :data:`NULL_TRACER` is a no-op; every hook in the hot path
is behind an ``if tracer.enabled:`` branch, so the disabled path keeps
the batched-playback speedup the perf gates enforce.
"""

from repro.obs.export import (
    export_chrome,
    export_jsonl,
    load_trace,
    validate_trace,
    write_metrics,
    write_trace,
)
from repro.obs.fingerprint import (
    arrivals_digest,
    config_fingerprint,
    describe_policy,
    run_id_for,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    RECONCILE_TOLERANCE,
    energy_attribution,
    render_attribution,
    render_span_stats,
    span_stats,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    SpanTracer,
    TERMINAL_PHASES,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RECONCILE_TOLERANCE",
    "Span",
    "SpanTracer",
    "TERMINAL_PHASES",
    "Tracer",
    "arrivals_digest",
    "config_fingerprint",
    "describe_policy",
    "energy_attribution",
    "export_chrome",
    "export_jsonl",
    "load_trace",
    "render_attribution",
    "render_span_stats",
    "run_id_for",
    "span_stats",
    "validate_trace",
    "write_metrics",
    "write_trace",
]
