"""Streaming metrics for the cluster simulator.

A :class:`MetricsRegistry` holds counters (monotone event counts),
gauges (instantaneous values), and histograms (value distributions),
and snapshots the counters and gauges into a time series sampled on
simulated-time boundaries (multiples of ``window_s``, the same tiling
:meth:`ClusterMeasurement.window_report` uses, so a metrics row and a
phase window describe the same slice of the run).

The simulator drives sampling from inside its event loop: gauges read
the live fleet state (queue depths per partition, awake-node count,
retry backlog, per-node modeled watts) *as of the loop's position* --
the standard sampled-at-processing-time semantics of a discrete-event
monitor.  Like tracing, the whole subsystem is opt-in: with no registry
attached the simulator pays one ``is None`` branch per hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Counter:
    """Monotone event count."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


@dataclass
class Gauge:
    """Last-written instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Full-resolution value distribution (simulation scale allows it)."""

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> float:
        if not self.values:
            return 0.0
        return float(np.percentile(self.values, q))

    def stats(self) -> dict:
        if not self.values:
            return {"count": 0}
        arr = np.asarray(self.values, dtype=np.float64)
        return {
            "count": int(arr.size),
            "sum": float(arr.sum()),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50.0)),
            "p95": float(np.percentile(arr, 95.0)),
        }


class MetricsRegistry:
    """Create-or-get metric store plus the sampled time series."""

    def __init__(self, window_s: float = 30.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.begin_run()

    def begin_run(self, run_id: str | None = None) -> None:
        """Fresh per-run state (the simulator calls this per schedule)."""
        self.run_id: str | None = run_id
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.samples: list[dict] = []

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name)
            return h

    def counters(self) -> list[Counter]:
        """Every counter registered so far, in creation order."""
        return list(self._counters.values())

    def sample(self, t_s: float) -> dict:
        """Snapshot every counter and gauge at simulated time ``t_s``."""
        row: dict = {"t_s": t_s}
        for name, counter in self._counters.items():
            row[name] = counter.value
        for name, gauge in self._gauges.items():
            row[name] = gauge.value
        self.samples.append(row)
        return row

    def to_dict(self) -> dict:
        return {
            "format": "repro-obs-metrics",
            "version": 1,
            "run_id": self.run_id,
            "window_s": self.window_s,
            "samples": self.samples,
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.stats()
                for name, h in sorted(self._histograms.items())
            },
        }
