"""Trace exporters: JSONL and Chrome/Perfetto ``trace_event`` JSON.

Two on-disk shapes for the same trace:

*JSONL* -- line 1 is the run's metadata record (``type: "meta"``:
run-id, config fingerprint, energy attribution, measurement summary);
every following line is one span/instant dict.  The machine-friendly
form ``python -m repro obs report`` and the CI schema check consume.

*Chrome trace_event JSON* -- a ``{"traceEvents": [...]}`` document that
loads directly in ``chrome://tracing`` or https://ui.perfetto.dev: one
process (pid 1), one named thread per track (tid 0 = master, nodes
sorted after), ``"X"`` complete events for duration spans, ``"i"``
instants, timestamps in microseconds.  The run metadata rides in the
document's top-level ``"metadata"`` key, so a Perfetto trace is also a
self-describing report input.

:func:`write_trace` picks the format from the file extension
(``.jsonl`` -> JSONL, anything else -> Chrome JSON);
:func:`load_trace` sniffs the content, so the report command accepts
either.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RECONCILE_TOLERANCE, energy_attribution
from repro.obs.tracer import MASTER_TRACK, SpanTracer, TERMINAL_PHASES

TRACE_FORMAT = "repro-obs-trace"
TRACE_VERSION = 1


def trace_metadata(tracer: SpanTracer, measurement: Any = None) -> dict:
    """The self-describing meta record embedded in every export."""
    meta: dict = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "horizon_s": tracer.horizon_s,
        "spans": len(tracer.spans),
    }
    meta.update(tracer.metadata)
    if measurement is not None:
        meta["attribution"] = energy_attribution(measurement)
        meta["summary"] = measurement.summary()
    return meta


def export_jsonl(path: str, tracer: SpanTracer,
                 measurement: Any = None) -> dict:
    """Write the trace as JSONL; returns the meta record."""
    meta = trace_metadata(tracer, measurement)
    with open(path, "w") as handle:
        handle.write(json.dumps({"type": "meta", **meta}) + "\n")
        for span in tracer.spans:
            handle.write(json.dumps(span.to_dict()) + "\n")
    return meta


def _track_tids(tracks: list[str]) -> dict[str, int]:
    return {track: tid for tid, track in enumerate(tracks)}


def export_chrome(path: str, tracer: SpanTracer,
                  measurement: Any = None) -> dict:
    """Write the trace as Chrome/Perfetto ``trace_event`` JSON."""
    meta = trace_metadata(tracer, measurement)
    tids = _track_tids(tracer.tracks)
    events: list[dict] = [{
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": f"repro cluster {meta.get('run_id', '')}"},
    }]
    for track, tid in tids.items():
        events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": track},
        })
        events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_sort_index",
            "args": {"sort_index": tid},
        })
    for span in tracer.spans:
        args = dict(span.args, id=span.span_id)
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        common = {
            "pid": 1,
            "tid": tids[span.track],
            "name": span.name,
            "cat": "cluster",
            "ts": span.start_s * 1e6,
            "args": args,
        }
        if span.is_instant:
            events.append({"ph": "i", "s": "t", **common})
        else:
            events.append({
                "ph": "X", "dur": span.duration_s * 1e6, **common,
            })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": meta,
    }
    with open(path, "w") as handle:
        json.dump(doc, handle)
    return meta


def write_trace(path: str, tracer: SpanTracer,
                measurement: Any = None) -> dict:
    """Export in the format the extension implies (.jsonl or Chrome)."""
    if path.endswith(".jsonl"):
        return export_jsonl(path, tracer, measurement)
    return export_chrome(path, tracer, measurement)


def write_metrics(path: str, registry: MetricsRegistry) -> dict:
    doc = registry.to_dict()
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2)
    return doc


# -- loading ---------------------------------------------------------------


def _load_chrome(doc: dict) -> tuple[dict, list[dict]]:
    meta = doc.get("metadata", {})
    names: dict[int, str] = {}
    for event in doc.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event.get("tid", 0)] = event["args"]["name"]
    spans: list[dict] = []
    for event in doc.get("traceEvents", []):
        ph = event.get("ph")
        if ph not in ("X", "i"):
            continue
        start = event.get("ts", 0.0) / 1e6
        end = start + (event.get("dur", 0.0) / 1e6 if ph == "X" else 0.0)
        args = dict(event.get("args", {}))
        spans.append({
            "type": "instant" if ph == "i" else "span",
            "id": args.pop("id", None),
            "parent": args.pop("parent", None),
            "name": event.get("name", ""),
            "track": names.get(event.get("tid", 0), MASTER_TRACK),
            "start_s": start,
            "end_s": end,
            "args": args,
        })
    return meta, spans


def load_trace(path: str) -> tuple[dict, list[dict]]:
    """(meta, spans) from either export format (content-sniffed)."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    first_line = stripped.splitlines()[0]
    try:
        head = json.loads(first_line)
    except json.JSONDecodeError:
        head = None
    if isinstance(head, dict) and head.get("type") == "meta":
        meta = {k: v for k, v in head.items() if k != "type"}
        spans = [
            json.loads(line)
            for line in stripped.splitlines()[1:] if line.strip()
        ]
        return meta, spans
    doc = json.loads(text)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(
            f"{path}: neither JSONL (meta first line) nor Chrome "
            "trace_event JSON"
        )
    return _load_chrome(doc)


def validate_trace(meta: dict, spans: list[dict]) -> list[str]:
    """Schema + invariant errors in a loaded trace ([] = valid)."""
    errors: list[str] = []
    if meta.get("format") != TRACE_FORMAT:
        errors.append(f"meta.format != {TRACE_FORMAT!r}")
    for key in ("run_id", "fingerprint", "horizon_s"):
        if key not in meta:
            errors.append(f"meta missing {key!r}")
    for i, span in enumerate(spans):
        for key in ("name", "track", "start_s", "end_s"):
            if key not in span:
                errors.append(f"span {i}: missing {key!r}")
                break
        else:
            if span["end_s"] < span["start_s"]:
                errors.append(f"span {i}: end_s before start_s")
            if span["name"] in TERMINAL_PHASES:
                args = span.get("args", {})
                if "sql" not in args or "arrival_s" not in args:
                    errors.append(
                        f"span {i}: terminal without sql/arrival_s"
                    )
    attribution = meta.get("attribution")
    if attribution is not None:
        for key in ("nodes", "phase_totals", "modeled_wall_joules",
                    "reconciliation_abs_j"):
            if key not in attribution:
                errors.append(f"attribution missing {key!r}")
        rel = attribution.get("reconciliation_rel")
        if rel is not None and rel > RECONCILE_TOLERANCE:
            errors.append(
                f"energy attribution does not reconcile: rel error "
                f"{rel:.3e} > {RECONCILE_TOLERANCE:.0e}"
            )
    return errors
