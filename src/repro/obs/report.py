"""Energy attribution: who burned which joules, phase by phase.

The cluster's modeled energy is an integral of each node's linear power
envelope over the horizon: sleep watts asleep, idle watts awake (wake
transitions included), busy watts inside busy windows.  That integral
decomposes *exactly* into four phases per node --

    busy_j  = busy_wall_w  * busy_s
    wake_j  = idle_wall_w  * wake_s
    idle_j  = idle_wall_w  * (horizon - sleep - wake - busy)
    sleep_j = sleep_wall_w * sleep_s

-- whose sum reconciles against the independently computed
:attr:`ClusterMeasurement.modeled_wall_joules` to within
:data:`RECONCILE_TOLERANCE` (relative).  A crash's wasted busy time is
reported as a memo line (``wasted_by_crash_j``, from the fault report):
the crash *removed* those windows from the timeline, so the tiling
already bills that span at idle watts; the memo is the busy-watt
write-off the fleet paid for answers it never delivered, and it is
deliberately outside the reconciliation sum.

The exact playback totals (component-model energy) ride along for
comparison; attribution works on the modeled envelope because only the
envelope decomposes additively in time.
"""

from __future__ import annotations

from typing import Any

#: Max |sum-of-phases - modeled total| / max(1, total), relative.
RECONCILE_TOLERANCE = 1e-9


def energy_attribution(measurement: Any) -> dict:
    """Per-node, per-phase joule breakdown of one cluster measurement."""
    nodes: dict = {}
    phase_totals = {"busy_j": 0.0, "idle_j": 0.0, "wake_j": 0.0,
                    "sleep_j": 0.0}
    modeled_sum = 0.0
    for n in measurement.nodes:
        breakdown = n.energy_breakdown()
        total = sum(breakdown.values())
        modeled_sum += total
        for phase, joules in breakdown.items():
            phase_totals[phase] += joules
        nodes[n.name] = dict(
            breakdown,
            modeled_total_j=total,
            playback_wall_j=n.wall_joules,
        )
    modeled_total = measurement.modeled_wall_joules
    wasted = (
        measurement.faults.wasted_joules
        if measurement.faults is not None else 0.0
    )
    error = abs(modeled_sum - modeled_total)
    return {
        "nodes": nodes,
        "phase_totals": phase_totals,
        "modeled_wall_joules": modeled_total,
        "playback_wall_joules": measurement.wall_joules,
        "wasted_by_crash_j": wasted,
        "reconciliation_abs_j": error,
        "reconciliation_rel": error / max(1.0, abs(modeled_total)),
    }


def render_attribution(doc: dict) -> str:
    """The attribution dict as a fixed-width report table."""
    lines = [
        f"  {'node':10s} {'busy J':>10} {'idle J':>10} {'wake J':>10} "
        f"{'sleep J':>10} {'modeled J':>11} {'playback J':>11}"
    ]
    for name, b in doc["nodes"].items():
        lines.append(
            f"  {name:10s} {b['busy_j']:10.1f} {b['idle_j']:10.1f} "
            f"{b['wake_j']:10.1f} {b['sleep_j']:10.1f} "
            f"{b['modeled_total_j']:11.1f} {b['playback_wall_j']:11.1f}"
        )
    t = doc["phase_totals"]
    lines.append(
        f"  {'total':10s} {t['busy_j']:10.1f} {t['idle_j']:10.1f} "
        f"{t['wake_j']:10.1f} {t['sleep_j']:10.1f} "
        f"{doc['modeled_wall_joules']:11.1f} "
        f"{doc['playback_wall_joules']:11.1f}"
    )
    lines.append(
        f"  reconciliation : |phases - modeled| = "
        f"{doc['reconciliation_abs_j']:.3e} J "
        f"(rel {doc['reconciliation_rel']:.3e})"
    )
    if doc.get("wasted_by_crash_j"):
        lines.append(
            f"  crash write-off: {doc['wasted_by_crash_j']:.1f} J burnt "
            f"at busy watts on lost work (memo; billed as idle in the "
            f"timeline)"
        )
    return "\n".join(lines)


def span_stats(spans: list[dict]) -> dict:
    """Per-phase span counts and total durations from raw span dicts."""
    stats: dict[str, dict] = {}
    for span in spans:
        entry = stats.setdefault(
            span["name"], {"count": 0, "total_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span["end_s"] - span["start_s"]
    return dict(sorted(stats.items()))


def render_span_stats(stats: dict) -> str:
    lines = [f"  {'phase':14s} {'count':>7} {'total s':>10}"]
    for name, entry in stats.items():
        lines.append(
            f"  {name:14s} {entry['count']:7d} {entry['total_s']:10.3f}"
        )
    return "\n".join(lines)
