"""The QED selection workload (paper Section 4).

Single-table selections over ``lineitem``, each with a 2% selectivity
equality predicate on ``l_quantity`` (uniform over 50 integer values).
Every query in a workload uses a different value, so predicates never
overlap up to a batch size of 50.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.tpch.schema import QUANTITY_MAX

#: Columns the selection queries return to the client.
SELECTION_COLUMNS = "l_orderkey, l_linenumber, l_quantity, l_extendedprice"


def selection_query(quantity: int) -> str:
    """One 2%-selectivity selection on l_quantity."""
    if not 1 <= quantity <= QUANTITY_MAX:
        raise ValueError(
            f"quantity must be in 1..{QUANTITY_MAX}, got {quantity}"
        )
    return (
        f"SELECT {SELECTION_COLUMNS} FROM lineitem "
        f"WHERE l_quantity = {quantity}"
    )


@dataclass(frozen=True)
class SelectionWorkload:
    """A batch of non-overlapping selection queries."""

    quantities: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.quantities)) != len(self.quantities):
            raise ValueError("quantities must be distinct (no overlap)")
        for q in self.quantities:
            if not 1 <= q <= QUANTITY_MAX:
                raise ValueError(f"quantity {q} out of range")

    @property
    def queries(self) -> list[str]:
        return [selection_query(q) for q in self.quantities]

    @property
    def batch_size(self) -> int:
        return len(self.quantities)


def selection_workload(batch_size: int, start: int = 1
                       ) -> SelectionWorkload:
    """``batch_size`` distinct-quantity queries (paper uses 35..50)."""
    if not 1 <= batch_size <= QUANTITY_MAX:
        raise ValueError(
            f"batch_size must be in 1..{QUANTITY_MAX}, got {batch_size}"
        )
    top = QUANTITY_MAX - start + 1
    if batch_size > top:
        raise ValueError("start leaves too few distinct quantities")
    quantities = tuple(range(start, start + batch_size))
    return SelectionWorkload(quantities)
