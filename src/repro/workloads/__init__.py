"""Workloads: TPC-H generator/queries, QED selections, arrivals, runner."""

from repro.workloads.arrivals import (
    Arrival,
    bursty_arrivals,
    drain_through_queue,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.client import ClientModel
from repro.workloads.runner import WorkloadRunner
from repro.workloads.selection import selection_query, selection_workload

__all__ = [
    "Arrival",
    "ClientModel",
    "WorkloadRunner",
    "bursty_arrivals",
    "drain_through_queue",
    "poisson_arrivals",
    "selection_query",
    "selection_workload",
    "uniform_arrivals",
]
