"""Workload runner: execute queries, build traces, play them on the SUT.

The runner is the glue for every experiment: it executes each query for
real in the database, appends the client-side fetch work, concatenates
the per-query traces into a workload trace, and plays it on the
simulated machine under the current PVC setting.  Per-query completion
times fall out of the per-query sub-measurements, which the QED
experiment uses for response-time accounting.

Execute-once / replay-many
--------------------------
A query's work trace does not depend on the PVC setting -- only its
*playback* does.  The runner therefore keeps a :class:`QueryExecution`
cache keyed by SQL text and the database's catalog/storage generation:
``replay_queries`` executes each distinct query at most once and then
re-costs the cached (compiled) trace under the current setting with the
SUT's vectorized playback path.  Sweeps over settings and repeated
measurement runs pay for database execution once instead of per point.
``run_queries`` keeps the original execute-every-time semantics (needed
by the warm/cold experiments, whose first run mutates the buffer pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.engine import Database
from repro.db.results import QueryResult
from repro.hardware.system import RunMeasurement, SystemUnderTest
from repro.hardware.trace import CompiledTrace, Trace
from repro.workloads.client import ClientModel


@dataclass
class QueryExecution:
    """One executed query: its result and its hardware work trace."""

    sql: str
    result: QueryResult
    trace: Trace

    def compiled_trace(self) -> CompiledTrace:
        """The trace's packed form for vectorized replay (memoized)."""
        return self.trace.compiled()


@dataclass
class WorkloadMeasurement:
    """A played workload: totals plus per-query measurements."""

    total: RunMeasurement
    per_query: list[RunMeasurement] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.total.duration_s

    @property
    def cpu_joules(self) -> float:
        return self.total.cpu_joules

    @property
    def completion_times_s(self) -> list[float]:
        """Completion time of each query, measured from workload start."""
        out: list[float] = []
        elapsed = 0.0
        for m in self.per_query:
            elapsed += m.duration_s
            out.append(elapsed)
        return out

    @property
    def mean_completion_s(self) -> float:
        times = self.completion_times_s
        return sum(times) / len(times) if times else 0.0


class WorkloadRunner:
    """Runs SQL workloads against a database on a simulated machine."""

    def __init__(
        self,
        db: Database,
        sut: SystemUnderTest,
        client: ClientModel | None = None,
        include_client_work: bool = True,
    ):
        self.db = db
        self.sut = sut
        self.client = client if client is not None else ClientModel()
        self.include_client_work = include_client_work
        self._execution_cache: dict[str, tuple[int, QueryExecution]] = {}
        self.execution_cache_hits = 0
        self.execution_cache_misses = 0

    def execute_query(self, sql: str, label: str = "query"
                      ) -> QueryExecution:
        """Execute one query and assemble its full work trace."""
        result = self.db.execute(sql)
        trace = self.db.trace_for(result, label=label)
        if self.include_client_work:
            trace.extend(self.client.trace_for_result(
                result, label=f"{label}:client"
            ))
        return QueryExecution(sql, result, trace)

    def run_queries(self, queries: list[str], label: str = "q"
                    ) -> WorkloadMeasurement:
        """Execute and play each query back-to-back (think time zero)."""
        per_query: list[RunMeasurement] = []
        total: RunMeasurement | None = None
        for i, sql in enumerate(queries):
            execution = self.execute_query(sql, label=f"{label}{i}")
            measurement = self.sut.run(
                execution.trace, self.db.workload_class
            )
            per_query.append(measurement)
            total = measurement if total is None else total + measurement
        if total is None:
            raise ValueError("workload must contain at least one query")
        return WorkloadMeasurement(total=total, per_query=per_query)

    def run_trace(self, trace: Trace) -> RunMeasurement:
        """Play a pre-built trace under the current setting."""
        return self.sut.run(trace, self.db.workload_class)

    # -- execute-once / replay-many ---------------------------------------

    def cached_execution(self, sql: str, label: str = "query"
                         ) -> QueryExecution:
        """Execute ``sql`` once; serve repeats from the execution cache.

        Cache entries are keyed by SQL text plus the database generation,
        so DDL and buffer-pool changes (``drop_table``, ``cool``, ...)
        transparently force a fresh execution.
        """
        generation = self.db.generation
        cached = self._execution_cache.get(sql)
        if cached is not None and cached[0] == generation:
            self.execution_cache_hits += 1
            return cached[1]
        self.execution_cache_misses += 1
        execution = self.execute_query(sql, label=label)
        self._execution_cache[sql] = (generation, execution)
        return execution

    def clear_execution_cache(self) -> None:
        self._execution_cache.clear()

    def run_execution(self, execution: QueryExecution,
                      with_timeline: bool = False) -> RunMeasurement:
        """Replay one execution's trace under the current PVC setting."""
        return self.sut.run_compiled(
            execution.compiled_trace(), self.db.workload_class,
            with_timeline=with_timeline,
        )

    def replay_queries(self, queries: list[str], label: str = "q",
                       with_timeline: bool = False) -> WorkloadMeasurement:
        """Like :meth:`run_queries`, but execute-once / replay-many.

        Each distinct query is executed at most once (across *all*
        ``replay_queries`` calls on this runner); its cached trace is
        re-costed under the current PVC setting via vectorized playback.
        """
        per_query: list[RunMeasurement] = []
        total: RunMeasurement | None = None
        for i, sql in enumerate(queries):
            execution = self.cached_execution(sql, label=f"{label}{i}")
            measurement = self.run_execution(
                execution, with_timeline=with_timeline
            )
            per_query.append(measurement)
            total = measurement if total is None else total + measurement
        if total is None:
            raise ValueError("workload must contain at least one query")
        return WorkloadMeasurement(total=total, per_query=per_query)
