"""Workload runner: execute queries, build traces, play them on the SUT.

The runner is the glue for every experiment: it executes each query for
real in the database, appends the client-side fetch work, concatenates
the per-query traces into a workload trace, and plays it on the
simulated machine under the current PVC setting.  Per-query completion
times fall out of the per-query sub-measurements, which the QED
experiment uses for response-time accounting.

Execute-once / replay-many
--------------------------
A query's work trace does not depend on the PVC setting -- only its
*playback* does.  The runner therefore keeps a :class:`QueryExecution`
cache keyed by SQL text and the database's catalog/storage generation:
``replay_queries`` executes each distinct query at most once and then
re-costs the cached (compiled) trace under the current setting with the
SUT's vectorized playback path.  Sweeps over settings and repeated
measurement runs pay for database execution once instead of per point.
``run_queries`` keeps the original execute-every-time semantics (needed
by the warm/cold experiments, whose first run mutates the buffer pool).

Memory and persistence
----------------------
Replay only needs the *compiled trace*; the result rows matter solely
to QED's splitter.  Cache entries therefore drop their
:class:`~repro.db.results.QueryResult` row data once the trace is
compiled unless the caller asks to keep it (``keep_result=True``), so
long sweeps and fleet-scale cluster runs do not pin every result set.
A :class:`TraceCache` can additionally persist compiled traces to disk
(``.npz``) so benchmarks reuse executions across processes.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.db.engine import Database
from repro.db.results import QueryResult
from repro.hardware.system import RunMeasurement, SystemUnderTest
from repro.hardware.trace import CompiledTrace, Trace
from repro.workloads.client import ClientModel


@dataclass
class QueryExecution:
    """One executed query: its result and its hardware work trace.

    ``result`` is ``None`` once the row data has been evicted (replay
    needs only the compiled trace) or when the execution was restored
    from a :class:`TraceCache` in a later process.  ``trace`` is ``None``
    only in the restored case; the compiled form is always available.
    """

    sql: str
    result: QueryResult | None
    trace: Trace | None
    _compiled: CompiledTrace | None = field(
        default=None, repr=False, compare=False
    )

    def compiled_trace(self) -> CompiledTrace:
        """The trace's packed form for vectorized replay (memoized)."""
        if self._compiled is None:
            if self.trace is None:
                raise ValueError(
                    "execution has neither a trace nor a compiled trace"
                )
            self._compiled = self.trace.compiled()
        return self._compiled

    def release_result(self) -> None:
        """Drop the result row data, keeping the (compiled) trace.

        Only QED's splitter reads cached results; everything on the
        replay path works from the compiled trace alone.
        """
        self.compiled_trace()  # make sure playback needs nothing else
        self.result = None

    @classmethod
    def from_compiled(cls, sql: str,
                      compiled: CompiledTrace) -> "QueryExecution":
        """An execution restored from a persisted compiled trace."""
        return cls(sql, result=None, trace=None, _compiled=compiled)


class TraceCache:
    """Directory-backed store of compiled traces, keyed by opaque strings.

    Entries are ``.npz`` archives (see :meth:`CompiledTrace.save`) named
    by a SHA-256 of ``namespace`` + key (the runner keys entries by its
    client-model fingerprint plus the SQL text).  The namespace must
    identify everything else the trace depends on -- engine profile,
    scale factor, seed, warm/cold state -- because unlike the in-process
    execution cache there is no generation counter to invalidate stale
    entries across processes.  Intended for steady-state benchmark
    workloads (warmed or memory-engine databases).
    """

    def __init__(self, directory: str | Path, namespace: str = ""):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.namespace = namespace
        self.hits = 0
        self.misses = 0

    @classmethod
    def for_workload(
        cls,
        directory: str | Path,
        engine: str,
        scale_factor: float,
        seed: int = 0,
        tables: tuple[str, ...] | list[str] | None = None,
        columnar: bool = False,
    ) -> "TraceCache":
        """A cache namespaced by everything a TPC-H trace depends on.

        Every entry point that shares a cache directory (cluster CLI,
        ``scripts/perf_report.py``, the benchmark suite) must build the
        namespace through here, or equal workloads silently miss each
        other's entries.  ``columnar=True`` returns the memory-mapped
        :class:`ColumnarTraceCache` over the same namespace (the two
        backends store entries separately: per-entry ``.npz`` files vs
        one shared container file).
        """
        tables_key = "-".join(tables) if tables else "all"
        namespace = f"{engine}-sf{scale_factor}-seed{seed}-{tables_key}"
        if columnar:
            return ColumnarTraceCache(directory, namespace=namespace)
        return cls(directory, namespace=namespace)

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(
            f"{self.namespace}\x00{key}".encode()
        ).hexdigest()
        return self.directory / f"{digest}.npz"

    def get(self, key: str) -> CompiledTrace | None:
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            compiled = CompiledTrace.load(path)
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile):
            # A truncated or corrupt entry (e.g. a writer killed before
            # the atomic rename existed) is a miss, not a crash: heal
            # the cache by dropping the bad file so the caller's
            # recompile can replace it.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return compiled

    def put(self, key: str, compiled: CompiledTrace) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a concurrent reader sharing the cache
        # directory can never observe a half-written archive.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            compiled.save(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise


class ColumnarTraceCache(TraceCache):
    """A :class:`TraceCache` backed by the shared columnar trace store.

    Same interface and hit/miss accounting, but entries live as row
    spans in one append-only memory-mapped container per namespace
    (:class:`~repro.hardware.trace_store.ColumnarTraceStore`) instead of
    per-entry ``.npz`` archives: ``get`` returns zero-copy views, so a
    100-node playback -- or several processes -- share one physical copy
    of every trace.
    """

    def __init__(self, directory: str | Path, namespace: str = ""):
        super().__init__(directory, namespace)
        from repro.hardware.trace_store import ColumnarTraceStore

        self.store = ColumnarTraceStore(directory, namespace)

    def get(self, key: str) -> CompiledTrace | None:
        compiled = self.store.get(key)
        if compiled is None:
            self.misses += 1
            return None
        self.hits += 1
        return compiled

    def put(self, key: str, compiled: CompiledTrace) -> None:
        self.store.put(key, compiled)


@dataclass
class WorkloadMeasurement:
    """A played workload: totals plus per-query measurements."""

    total: RunMeasurement
    per_query: list[RunMeasurement] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.total.duration_s

    @property
    def cpu_joules(self) -> float:
        return self.total.cpu_joules

    @property
    def completion_times_s(self) -> list[float]:
        """Completion time of each query, measured from workload start."""
        out: list[float] = []
        elapsed = 0.0
        for m in self.per_query:
            elapsed += m.duration_s
            out.append(elapsed)
        return out

    @property
    def mean_completion_s(self) -> float:
        times = self.completion_times_s
        return sum(times) / len(times) if times else 0.0


class WorkloadRunner:
    """Runs SQL workloads against a database on a simulated machine."""

    def __init__(
        self,
        db: Database,
        sut: SystemUnderTest,
        client: ClientModel | None = None,
        include_client_work: bool = True,
        trace_cache: TraceCache | None = None,
    ):
        self.db = db
        self.sut = sut
        self.client = client if client is not None else ClientModel()
        self.include_client_work = include_client_work
        self.trace_cache = trace_cache
        #: persisted traces embed client-work segments, so the client
        #: configuration folds into every disk-cache key -- runners with
        #: different client models sharing a directory must never
        #: exchange entries.
        self._trace_key_prefix = (
            f"client={self.client!r};"
            f"include={self.include_client_work}\x00"
        )
        self._execution_cache: dict[str, tuple[int, QueryExecution]] = {}
        self.execution_cache_hits = 0
        self.execution_cache_misses = 0

    def execute_query(self, sql: str, label: str = "query"
                      ) -> QueryExecution:
        """Execute one query and assemble its full work trace."""
        result = self.db.execute(sql)
        trace = self.db.trace_for(result, label=label)
        if self.include_client_work:
            trace.extend(self.client.trace_for_result(
                result, label=f"{label}:client"
            ))
        return QueryExecution(sql, result, trace)

    def run_queries(self, queries: list[str], label: str = "q"
                    ) -> WorkloadMeasurement:
        """Execute and play each query back-to-back (think time zero)."""
        per_query: list[RunMeasurement] = []
        total: RunMeasurement | None = None
        for i, sql in enumerate(queries):
            execution = self.execute_query(sql, label=f"{label}{i}")
            measurement = self.sut.run(
                execution.trace, self.db.workload_class
            )
            per_query.append(measurement)
            total = measurement if total is None else total + measurement
        if total is None:
            raise ValueError("workload must contain at least one query")
        return WorkloadMeasurement(total=total, per_query=per_query)

    def run_trace(self, trace: Trace) -> RunMeasurement:
        """Play a pre-built trace under the current setting."""
        return self.sut.run(trace, self.db.workload_class)

    # -- execute-once / replay-many ---------------------------------------

    def cached_execution(self, sql: str, label: str = "query",
                         keep_result: bool = True) -> QueryExecution:
        """Execute ``sql`` once; serve repeats from the execution cache.

        Cache entries are keyed by SQL text plus the database generation,
        so DDL and buffer-pool changes (``drop_table``, ``cool``, ...)
        transparently force a fresh execution.

        ``keep_result=False`` (the replay/cluster hot path) evicts the
        result row data once the trace is compiled and may serve the
        entry from the runner's :class:`TraceCache`, if one is
        configured.  A later ``keep_result=True`` call on an entry whose
        result was evicted re-executes to recover it (QED's splitter is
        the only such consumer).
        """
        generation = self.db.generation
        cached = self._execution_cache.get(sql)
        #: a generation mismatch means this process *knows* the disk
        #: entry (written by us at the old generation) is stale too --
        #: bypass the trace cache and re-execute/overwrite it.
        stale = cached is not None and cached[0] != generation
        if cached is not None and not stale:
            execution = cached[1]
            if keep_result and execution.result is None:
                # Result was evicted (or trace-cache restored); recover.
                self.execution_cache_misses += 1
                execution = self.execute_query(sql, label=label)
                self._execution_cache[sql] = (generation, execution)
                return execution
            self.execution_cache_hits += 1
            # An entry still holding its result was explicitly requested
            # with keep_result=True; callers may hold the aliased object,
            # so a later keep_result=False hit must not null it out.
            return execution
        self.execution_cache_misses += 1
        disk_key = self._trace_key_prefix + sql
        if not keep_result and not stale and self.trace_cache is not None:
            compiled = self.trace_cache.get(disk_key)
            if compiled is not None:
                execution = QueryExecution.from_compiled(sql, compiled)
                self._execution_cache[sql] = (generation, execution)
                return execution
        execution = self.execute_query(sql, label=label)
        if self.trace_cache is not None:
            self.trace_cache.put(disk_key, execution.compiled_trace())
        if not keep_result:
            execution.release_result()
        self._execution_cache[sql] = (generation, execution)
        return execution

    def clear_execution_cache(self) -> None:
        self._execution_cache.clear()

    def run_execution(self, execution: QueryExecution,
                      with_timeline: bool = False) -> RunMeasurement:
        """Replay one execution's trace under the current PVC setting."""
        return self.sut.run_compiled(
            execution.compiled_trace(), self.db.workload_class,
            with_timeline=with_timeline,
        )

    def replay_queries(self, queries: list[str], label: str = "q",
                       with_timeline: bool = False) -> WorkloadMeasurement:
        """Like :meth:`run_queries`, but execute-once / replay-many.

        Each distinct query is executed at most once (across *all*
        ``replay_queries`` calls on this runner); its cached trace is
        re-costed under the current PVC setting via vectorized playback.
        Cached entries keep only the compiled trace -- result rows are
        evicted so sweeps over many settings stay memory-flat.
        """
        per_query: list[RunMeasurement] = []
        total: RunMeasurement | None = None
        for i, sql in enumerate(queries):
            execution = self.cached_execution(
                sql, label=f"{label}{i}", keep_result=False
            )
            measurement = self.run_execution(
                execution, with_timeline=with_timeline
            )
            per_query.append(measurement)
            total = measurement if total is None else total + measurement
        if total is None:
            raise ValueError("workload must contain at least one query")
        return WorkloadMeasurement(total=total, per_query=per_query)
