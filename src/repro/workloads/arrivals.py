"""Arrival streams for workload-management experiments.

QED's benefit depends on queries arriving over time (the queue must be
allowed to fill); the paper's experiments issue batches directly, but
its deployment story is an arrival stream at a master node.  This module
provides seeded arrival processes for the examples, benchmarks, and
tests -- including the *time-varying* load profiles (diurnal, ramp,
arbitrary rate schedules) the fleet's dynamic re-consolidation policies
are measured against.

Every generator returns a list of :class:`Arrival` that is sorted by
``time_s``, respects its ``start_s`` offset, and is empty when the
``queries`` list is empty -- the shared :func:`_finalize` helper
enforces this uniformly, so any stream can feed ``merge_arrivals`` or
the cluster simulator without per-generator caveats.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class Arrival:
    """One query arrival."""

    sql: str
    time_s: float


def _finalize(out: list[Arrival], start_s: float) -> list[Arrival]:
    """Shared stream validation: sorted, never before ``start_s``.

    Each generator funnels its output through here so the whole module
    upholds one contract (the cluster event loop and ``merge_arrivals``
    both rely on it).  Violations are generator bugs, hence asserts
    rather than ``ValueError``.
    """
    assert all(b.time_s >= a.time_s for a, b in zip(out, out[1:])), \
        "generator produced an unsorted stream"
    assert all(a.time_s >= start_s for a in out), \
        "generator produced arrivals before start_s"
    return out


def poisson_arrivals(queries: list[str], mean_interarrival_s: float,
                     seed: int = 0, start_s: float = 0.0,
                     rng: np.random.Generator | None = None) -> list[Arrival]:
    """Exponential inter-arrival times (a Poisson process).

    Passing ``rng`` threads one shared generator through arrivals (and,
    via :meth:`FaultPlan.begin_run`, fault outcomes) so a whole run's
    randomness hangs off a single seed; ``seed`` is ignored then.
    """
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)
    now = start_s
    out: list[Arrival] = []
    for sql in queries:
        now += float(rng.exponential(mean_interarrival_s))
        out.append(Arrival(sql, now))
    return _finalize(out, start_s)


def uniform_arrivals(queries: list[str], interarrival_s: float,
                     start_s: float = 0.0) -> list[Arrival]:
    """Evenly spaced arrivals (closed-loop clients with fixed think
    time, the deterministic limit of the Poisson stream)."""
    if interarrival_s <= 0:
        raise ValueError("interarrival_s must be positive")
    return _finalize([
        Arrival(sql, start_s + (i + 1) * interarrival_s)
        for i, sql in enumerate(queries)
    ], start_s)


def bursty_arrivals(queries: list[str], burst_size: int,
                    burst_gap_s: float, within_burst_s: float = 0.01,
                    start_s: float = 0.0) -> list[Arrival]:
    """Clients arriving in bursts separated by quiet gaps -- the shape
    under which a threshold batch policy fires immediately."""
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if burst_gap_s < 0 or within_burst_s < 0:
        raise ValueError("gaps must be non-negative")
    out: list[Arrival] = []
    now = start_s
    for i, sql in enumerate(queries):
        if i and i % burst_size == 0:
            now += burst_gap_s
        else:
            now += within_burst_s
        out.append(Arrival(sql, now))
    return _finalize(out, start_s)


# -- time-varying load profiles -------------------------------------------


@dataclass(frozen=True)
class RateSchedule:
    """A deterministic arrival-rate curve lambda(t), queries/second.

    ``rate`` maps *elapsed* seconds (relative to the stream's
    ``start_s``) to an instantaneous rate; ``peak_rate`` must bound it
    from above over the horizon (the thinning envelope).  Schedules are
    plain data so routers can look *ahead* of real time -- the
    dynamic-consolidation policy pre-wakes nodes ``wake_latency_s``
    before a scheduled peak by evaluating the same curve the generator
    sampled from.
    """

    rate: Callable[[float], float]
    peak_rate: float
    horizon_s: float

    def __post_init__(self) -> None:
        if self.peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")

    def rate_at(self, elapsed_s: float) -> float:
        """lambda at ``elapsed_s``, clamped to [0, peak_rate]."""
        return min(max(0.0, self.rate(elapsed_s)), self.peak_rate)

    def expected_count(self, resolution: int = 10_000) -> float:
        """Integral of lambda over the horizon (trapezoidal)."""
        ts = np.linspace(0.0, self.horizon_s, resolution)
        rates = np.array([self.rate_at(float(t)) for t in ts])
        dt = ts[1:] - ts[:-1]
        return float(((rates[1:] + rates[:-1]) / 2.0 * dt).sum())


def diurnal_schedule(base_rate: float, peak_rate: float,
                     period_s: float, horizon_s: float,
                     phase_s: float = 0.0) -> RateSchedule:
    """Sinusoidal day/night curve: troughs at ``base_rate``, crests at
    ``peak_rate``, one full cycle every ``period_s`` seconds.

    ``phase_s`` shifts the curve; with the default the stream *starts*
    at the trough (night), so a run opens in the consolidated regime
    and rides up into the peak.
    """
    if not 0.0 <= base_rate <= peak_rate:
        raise ValueError("need 0 <= base_rate <= peak_rate")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    mid = (base_rate + peak_rate) / 2.0
    amp = (peak_rate - base_rate) / 2.0

    def rate(t: float) -> float:
        return mid - amp * math.cos(2.0 * math.pi * (t + phase_s) / period_s)

    return RateSchedule(rate=rate, peak_rate=peak_rate, horizon_s=horizon_s)


def ramp_schedule(start_rate: float, end_rate: float,
                  horizon_s: float) -> RateSchedule:
    """Linear ramp from ``start_rate`` to ``end_rate`` over the horizon
    (a morning ramp-up, or a drain-down when ``end_rate`` is lower)."""
    if start_rate < 0 or end_rate < 0:
        raise ValueError("rates must be non-negative")
    if max(start_rate, end_rate) == 0:
        raise ValueError("at least one endpoint rate must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")

    def rate(t: float) -> float:
        return start_rate + (end_rate - start_rate) * (t / horizon_s)

    return RateSchedule(rate=rate, peak_rate=max(start_rate, end_rate),
                        horizon_s=horizon_s)


def piecewise_schedule(
    phases: Sequence[tuple[float, float]],
) -> RateSchedule:
    """Stepwise schedule from ``(duration_s, rate)`` phases, e.g.
    ``[(60, 2.0), (120, 20.0), (60, 2.0)]`` = low / peak / low."""
    if not phases:
        raise ValueError("need at least one phase")
    for duration, rate in phases:
        if duration <= 0:
            raise ValueError("phase durations must be positive")
        if rate < 0:
            raise ValueError("phase rates must be non-negative")
    peak = max(rate for _, rate in phases)
    if peak == 0:
        raise ValueError("at least one phase rate must be positive")
    edges: list[float] = [0.0]
    for duration, _ in phases:
        edges.append(edges[-1] + duration)

    def rate_fn(t: float) -> float:
        for (duration, rate), lo in zip(phases, edges):
            if t < lo + duration:
                return rate
        return phases[-1][1]

    return RateSchedule(rate=rate_fn, peak_rate=peak,
                        horizon_s=edges[-1])


def rate_schedule_arrivals(queries: list[str], schedule: RateSchedule,
                           seed: int = 0, start_s: float = 0.0,
                           rng: np.random.Generator | None = None,
                           ) -> list[Arrival]:
    """Nonhomogeneous Poisson arrivals following ``schedule``, by
    thinning (Lewis & Shedler): candidate events fire at ``peak_rate``
    and survive with probability ``lambda(t) / peak_rate``.

    The number of arrivals is random with mean ``integral of lambda``
    over the horizon; SQL statements are assigned by cycling through
    ``queries`` in order, so any non-empty ``queries`` list serves any
    schedule.  Seeded and sorted, hence ``merge_arrivals``-compatible.
    An explicit ``rng`` (shared, e.g., with a fault plan) overrides
    ``seed``.
    """
    if not queries:
        return []
    if rng is None:
        rng = np.random.default_rng(seed)
    out: list[Arrival] = []
    elapsed = 0.0
    index = 0
    while True:
        elapsed += float(rng.exponential(1.0 / schedule.peak_rate))
        if elapsed > schedule.horizon_s:
            break
        if rng.uniform() * schedule.peak_rate <= schedule.rate_at(elapsed):
            out.append(Arrival(queries[index % len(queries)],
                               start_s + elapsed))
            index += 1
    return _finalize(out, start_s)


def diurnal_arrivals(queries: list[str], base_rate: float,
                     peak_rate: float, period_s: float, horizon_s: float,
                     seed: int = 0, start_s: float = 0.0,
                     phase_s: float = 0.0,
                     rng: np.random.Generator | None = None,
                     ) -> list[Arrival]:
    """Sinusoidal day/night arrival stream (see :func:`diurnal_schedule`)."""
    return rate_schedule_arrivals(
        queries,
        diurnal_schedule(base_rate, peak_rate, period_s, horizon_s,
                         phase_s=phase_s),
        seed=seed, start_s=start_s, rng=rng,
    )


def ramp_arrivals(queries: list[str], start_rate: float, end_rate: float,
                  horizon_s: float, seed: int = 0, start_s: float = 0.0,
                  rng: np.random.Generator | None = None) -> list[Arrival]:
    """Linearly ramping arrival stream (see :func:`ramp_schedule`)."""
    return rate_schedule_arrivals(
        queries, ramp_schedule(start_rate, end_rate, horizon_s),
        seed=seed, start_s=start_s, rng=rng,
    )


def merge_arrivals(*streams: list[Arrival]) -> list[Arrival]:
    """Time-ordered merge of several tenants' arrival streams.

    Each input stream must already be sorted by ``time_s`` (every
    generator in this module produces sorted streams).  The merge is
    *stable* for ties: simultaneous arrivals keep the order of the
    stream arguments, and within one stream their original order --
    which makes multi-tenant cluster scenarios reproducible.
    """
    for stream in streams:
        for a, b in zip(stream, stream[1:]):
            if b.time_s < a.time_s:
                raise ValueError("each stream must be sorted by time_s")
    return list(heapq.merge(*streams, key=lambda a: a.time_s))


def drain_through_queue(arrivals: list[Arrival], queue) -> list:
    """Feed arrivals into a :class:`~repro.core.qed.queue.QueryQueue`;
    returns the dispatched batches (a trailing partial batch stays
    queued, as in a live system)."""
    batches = []
    for arrival in arrivals:
        batch = queue.submit(arrival.sql, arrival.time_s)
        if batch is not None:
            batches.append(batch)
    return batches
