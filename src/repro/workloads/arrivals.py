"""Arrival streams for workload-management experiments.

QED's benefit depends on queries arriving over time (the queue must be
allowed to fill); the paper's experiments issue batches directly, but
its deployment story is an arrival stream at a master node.  This module
provides seeded arrival processes for the examples, benchmarks, and
tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Arrival:
    """One query arrival."""

    sql: str
    time_s: float


def poisson_arrivals(queries: list[str], mean_interarrival_s: float,
                     seed: int = 0, start_s: float = 0.0) -> list[Arrival]:
    """Exponential inter-arrival times (a Poisson process)."""
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be positive")
    rng = np.random.default_rng(seed)
    now = start_s
    out: list[Arrival] = []
    for sql in queries:
        now += float(rng.exponential(mean_interarrival_s))
        out.append(Arrival(sql, now))
    return out


def uniform_arrivals(queries: list[str], interarrival_s: float,
                     start_s: float = 0.0) -> list[Arrival]:
    """Evenly spaced arrivals (closed-loop clients with fixed think
    time, the deterministic limit of the Poisson stream)."""
    if interarrival_s <= 0:
        raise ValueError("interarrival_s must be positive")
    return [
        Arrival(sql, start_s + (i + 1) * interarrival_s)
        for i, sql in enumerate(queries)
    ]


def bursty_arrivals(queries: list[str], burst_size: int,
                    burst_gap_s: float, within_burst_s: float = 0.01,
                    start_s: float = 0.0) -> list[Arrival]:
    """Clients arriving in bursts separated by quiet gaps -- the shape
    under which a threshold batch policy fires immediately."""
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if burst_gap_s < 0 or within_burst_s < 0:
        raise ValueError("gaps must be non-negative")
    out: list[Arrival] = []
    now = start_s
    for i, sql in enumerate(queries):
        if i and i % burst_size == 0:
            now += burst_gap_s
        else:
            now += within_burst_s
        out.append(Arrival(sql, now))
    return out


def merge_arrivals(*streams: list[Arrival]) -> list[Arrival]:
    """Time-ordered merge of several tenants' arrival streams.

    Each input stream must already be sorted by ``time_s`` (every
    generator in this module produces sorted streams).  The merge is
    *stable* for ties: simultaneous arrivals keep the order of the
    stream arguments, and within one stream their original order --
    which makes multi-tenant cluster scenarios reproducible.
    """
    for stream in streams:
        for a, b in zip(stream, stream[1:]):
            if b.time_s < a.time_s:
                raise ValueError("each stream must be sorted by time_s")
    return list(heapq.merge(*streams, key=lambda a: a.time_s))


def drain_through_queue(arrivals: list[Arrival], queue) -> list:
    """Feed arrivals into a :class:`~repro.core.qed.queue.QueryQueue`;
    returns the dispatched batches (a trailing partial batch stays
    queued, as in a live system)."""
    batches = []
    for arrival in arrivals:
        batch = queue.submit(arrival.sql, arrival.time_s)
        if batch is not None:
            batches.append(batch)
    return batches
