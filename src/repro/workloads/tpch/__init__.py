"""TPC-H substrate: schemas, generator, queries."""

from repro.workloads.tpch.generator import (
    generate_tpch,
    load_tpch,
    tpch_database,
)
from repro.workloads.tpch.queries import (
    q1,
    q3,
    q5,
    q5_paper_workload,
    q6,
    q10,
    q12,
    q14,
    q14_promo,
    q19,
)

__all__ = [
    "generate_tpch",
    "load_tpch",
    "q1",
    "q10",
    "q12",
    "q14",
    "q14_promo",
    "q19",
    "q3",
    "q5",
    "q5_paper_workload",
    "q6",
    "tpch_database",
]
