"""Deterministic TPC-H-shaped data generator.

Follows dbgen's cardinalities and value domains (uniform keys, dates
over 1992-01-01..1998-08-02, ``l_quantity`` uniform over 1..50) with a
seeded numpy RNG, so two calls with the same (scale factor, seed)
produce identical databases.  Foreign keys are dense and referentially
intact; cardinality ratios match the spec, which is all the paper's
workloads rely on ("given the uniform nature of TPC-H, all ten queries
perform the same amount of work").
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.db.engine import Database
from repro.db.schema import Table
from repro.db.types import Column, DataType, date_to_days
from repro.workloads.tpch import schema as sch


def _rng(seed: int, table: str) -> np.random.Generator:
    # zlib.crc32 is stable across processes (unlike ``hash``, which is
    # randomized per interpreter run and would break reproducibility).
    return np.random.default_rng([seed, zlib.crc32(table.encode())])


def _scaled(base: int, scale_factor: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale_factor)))


def _string_column(values: np.ndarray, dictionary: list[str]) -> Column:
    return Column.from_codes(values.astype(np.int32), list(dictionary))


def generate_region() -> Table:
    schema = sch.region_schema()
    return Table(schema, {
        "r_regionkey": Column(DataType.INT64, np.arange(5, dtype=np.int64)),
        "r_name": Column.from_values(DataType.STRING, sch.REGION_NAMES),
    })


def generate_nation() -> Table:
    schema = sch.nation_schema()
    return Table(schema, {
        "n_nationkey": Column(DataType.INT64, np.arange(25, dtype=np.int64)),
        "n_name": Column.from_values(DataType.STRING, sch.NATION_NAMES),
        "n_regionkey": Column(
            DataType.INT64, np.asarray(sch.NATION_REGIONS, dtype=np.int64)
        ),
    })


def generate_supplier(scale_factor: float, seed: int) -> Table:
    n = _scaled(sch.BASE_CARDINALITIES["supplier"], scale_factor)
    rng = _rng(seed, "supplier")
    schema = sch.supplier_schema()
    keys = np.arange(1, n + 1, dtype=np.int64)
    names = [f"Supplier#{k:09d}" for k in keys]
    return Table(schema, {
        "s_suppkey": Column(DataType.INT64, keys),
        "s_name": Column.from_values(DataType.STRING, names),
        "s_nationkey": Column(
            DataType.INT64, rng.integers(0, 25, n, dtype=np.int64)
        ),
        "s_acctbal": Column(
            DataType.FLOAT64, rng.uniform(-999.99, 9999.99, n).round(2)
        ),
    })


def generate_customer(scale_factor: float, seed: int) -> Table:
    n = _scaled(sch.BASE_CARDINALITIES["customer"], scale_factor)
    rng = _rng(seed, "customer")
    schema = sch.customer_schema()
    keys = np.arange(1, n + 1, dtype=np.int64)
    names = [f"Customer#{k:09d}" for k in keys]
    return Table(schema, {
        "c_custkey": Column(DataType.INT64, keys),
        "c_name": Column.from_values(DataType.STRING, names),
        "c_nationkey": Column(
            DataType.INT64, rng.integers(0, 25, n, dtype=np.int64)
        ),
        "c_acctbal": Column(
            DataType.FLOAT64, rng.uniform(-999.99, 9999.99, n).round(2)
        ),
        "c_mktsegment": _string_column(
            rng.integers(0, len(sch.SEGMENTS), n), sch.SEGMENTS
        ),
    })


def generate_part(scale_factor: float, seed: int) -> Table:
    n = _scaled(sch.BASE_CARDINALITIES["part"], scale_factor)
    rng = _rng(seed, "part")
    schema = sch.part_schema()
    brands = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
    types = [
        f"{a} {b} {c}"
        for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                  "PROMO")
        for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                  "BRUSHED")
        for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
    ]
    keys = np.arange(1, n + 1, dtype=np.int64)
    return Table(schema, {
        "p_partkey": Column(DataType.INT64, keys),
        "p_brand": _string_column(
            rng.integers(0, len(brands), n), brands
        ),
        "p_type": _string_column(rng.integers(0, len(types), n), types),
        "p_size": Column(
            DataType.INT64, rng.integers(1, 51, n, dtype=np.int64)
        ),
        "p_retailprice": Column(
            DataType.FLOAT64,
            (900 + (keys % 1000) / 10 + 100 * (keys % 10)).astype(float),
        ),
    })


def generate_partsupp(scale_factor: float, seed: int) -> Table:
    n_part = _scaled(sch.BASE_CARDINALITIES["part"], scale_factor)
    n_supp = _scaled(sch.BASE_CARDINALITIES["supplier"], scale_factor)
    rng = _rng(seed, "partsupp")
    schema = sch.partsupp_schema()
    # Four suppliers per part, as in the spec.
    partkeys = np.repeat(np.arange(1, n_part + 1, dtype=np.int64), 4)
    n = len(partkeys)
    suppkeys = rng.integers(1, n_supp + 1, n, dtype=np.int64)
    return Table(schema, {
        "ps_partkey": Column(DataType.INT64, partkeys),
        "ps_suppkey": Column(DataType.INT64, suppkeys),
        "ps_availqty": Column(
            DataType.INT64, rng.integers(1, 10_000, n, dtype=np.int64)
        ),
        "ps_supplycost": Column(
            DataType.FLOAT64, rng.uniform(1.0, 1000.0, n).round(2)
        ),
    })


def generate_orders(scale_factor: float, seed: int) -> Table:
    n = _scaled(sch.BASE_CARDINALITIES["orders"], scale_factor)
    n_cust = _scaled(sch.BASE_CARDINALITIES["customer"], scale_factor)
    rng = _rng(seed, "orders")
    schema = sch.orders_schema()
    keys = np.arange(1, n + 1, dtype=np.int64)
    date_lo = date_to_days(sch.DATE_MIN)
    date_hi = date_to_days(sch.DATE_MAX)
    return Table(schema, {
        "o_orderkey": Column(DataType.INT64, keys),
        "o_custkey": Column(
            DataType.INT64, rng.integers(1, n_cust + 1, n, dtype=np.int64)
        ),
        "o_orderstatus": _string_column(
            rng.integers(0, len(sch.ORDER_STATUSES), n), sch.ORDER_STATUSES
        ),
        "o_totalprice": Column(
            DataType.FLOAT64, rng.uniform(850.0, 560_000.0, n).round(2)
        ),
        "o_orderdate": Column(
            DataType.DATE,
            rng.integers(date_lo, date_hi + 1, n).astype(np.int32),
        ),
        "o_orderpriority": _string_column(
            rng.integers(0, len(sch.PRIORITIES), n), sch.PRIORITIES
        ),
    })


def generate_lineitem(orders: Table, scale_factor: float,
                      seed: int) -> Table:
    n_supp = _scaled(sch.BASE_CARDINALITIES["supplier"], scale_factor)
    n_part = _scaled(sch.BASE_CARDINALITIES["part"], scale_factor)
    rng = _rng(seed, "lineitem")
    schema = sch.lineitem_schema()
    order_keys = orders.column("o_orderkey").raw()
    order_dates = orders.column("o_orderdate").raw()
    lines_per_order = rng.integers(1, 8, len(order_keys))
    l_orderkey = np.repeat(order_keys, lines_per_order)
    base_date = np.repeat(order_dates, lines_per_order)
    n = len(l_orderkey)
    linenumbers = np.concatenate(
        [np.arange(1, c + 1) for c in lines_per_order]
    ) if n else np.empty(0, dtype=np.int64)
    quantity = rng.integers(1, sch.QUANTITY_MAX + 1, n, dtype=np.int64)
    ship_offset = rng.integers(1, 122, n)
    partkeys = rng.integers(1, n_part + 1, n, dtype=np.int64)
    price_base = 900 + (partkeys % 1000) / 10 + 100 * (partkeys % 10)
    return Table(schema, {
        "l_orderkey": Column(DataType.INT64, l_orderkey),
        "l_partkey": Column(DataType.INT64, partkeys),
        "l_suppkey": Column(
            DataType.INT64, rng.integers(1, n_supp + 1, n, dtype=np.int64)
        ),
        "l_linenumber": Column(
            DataType.INT64, linenumbers.astype(np.int64)
        ),
        "l_quantity": Column(DataType.INT64, quantity),
        "l_extendedprice": Column(
            DataType.FLOAT64, (quantity * price_base).round(2)
        ),
        "l_discount": Column(
            DataType.FLOAT64, rng.integers(0, 11, n) / 100.0
        ),
        "l_tax": Column(DataType.FLOAT64, rng.integers(0, 9, n) / 100.0),
        "l_returnflag": _string_column(
            rng.integers(0, len(sch.RETURN_FLAGS), n), sch.RETURN_FLAGS
        ),
        "l_linestatus": _string_column(
            rng.integers(0, len(sch.LINE_STATUSES), n), sch.LINE_STATUSES
        ),
        "l_shipdate": Column(
            DataType.DATE, (base_date + ship_offset).astype(np.int32),
        ),
        # Per the spec: commit = order date + 30..90, receipt follows
        # the ship date by 1..30 days.
        "l_commitdate": Column(
            DataType.DATE,
            (base_date + rng.integers(30, 91, n)).astype(np.int32),
        ),
        "l_receiptdate": Column(
            DataType.DATE,
            (base_date + ship_offset
             + rng.integers(1, 31, n)).astype(np.int32),
        ),
        "l_shipmode": _string_column(
            rng.integers(0, len(sch.SHIP_MODES), n), sch.SHIP_MODES
        ),
    })


def generate_tpch(scale_factor: float, seed: int = 0,
                  tables: list[str] | None = None) -> dict[str, Table]:
    """Generate the TPC-H tables at ``scale_factor``.

    ``tables`` restricts generation (e.g. only what Q5 needs); lineitem
    implies orders since line dates derive from order dates.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    wanted = set(tables) if tables is not None else {
        "region", "nation", "supplier", "customer", "part",
        "partsupp", "orders", "lineitem",
    }
    out: dict[str, Table] = {}
    if "region" in wanted:
        out["region"] = generate_region()
    if "nation" in wanted:
        out["nation"] = generate_nation()
    if "supplier" in wanted:
        out["supplier"] = generate_supplier(scale_factor, seed)
    if "customer" in wanted:
        out["customer"] = generate_customer(scale_factor, seed)
    if "part" in wanted:
        out["part"] = generate_part(scale_factor, seed)
    if "partsupp" in wanted:
        out["partsupp"] = generate_partsupp(scale_factor, seed)
    if "orders" in wanted or "lineitem" in wanted:
        orders = generate_orders(scale_factor, seed)
        if "orders" in wanted:
            out["orders"] = orders
        if "lineitem" in wanted:
            out["lineitem"] = generate_lineitem(orders, scale_factor, seed)
    return out


def load_tpch(db: Database, scale_factor: float, seed: int = 0,
              tables: list[str] | None = None) -> None:
    """Generate and register TPC-H tables into ``db``."""
    for table in generate_tpch(scale_factor, seed, tables).values():
        db.register_table(table)


def tpch_database(scale_factor: float, profile=None, seed: int = 0,
                  tables: list[str] | None = None) -> Database:
    """A loaded TPC-H database (public API convenience)."""
    db = Database(profile)
    load_tpch(db, scale_factor, seed, tables)
    # Recorded for run fingerprinting (repro.obs) -- the Database itself
    # is scale-agnostic, but a run's identity is not.
    db.scale_factor = scale_factor
    return db
