"""TPC-H queries: Q5 (the paper's PVC workload) and friends.

The paper runs ten Q5 instances per workload: regions ASIA and AMERICA
crossed with all five one-year order-date ranges (1993..1997), giving
non-overlapping predicates of equal work.
"""

from __future__ import annotations

Q5_REGIONS = ("ASIA", "AMERICA")
Q5_YEARS = (1993, 1994, 1995, 1996, 1997)


def q5(region: str = "ASIA", date_from: str = "1994-01-01",
       date_to: str = "1995-01-01") -> str:
    """TPC-H Q5: local supplier volume (six-way join + group by)."""
    return (
        "SELECT n_name, "
        "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
        "FROM customer, orders, lineitem, supplier, nation, region "
        "WHERE c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey "
        "AND l_suppkey = s_suppkey "
        "AND c_nationkey = s_nationkey "
        "AND s_nationkey = n_nationkey "
        "AND n_regionkey = r_regionkey "
        f"AND r_name = '{region}' "
        f"AND o_orderdate >= DATE '{date_from}' "
        f"AND o_orderdate < DATE '{date_to}' "
        "GROUP BY n_name "
        "ORDER BY revenue DESC"
    )


def q5_paper_workload() -> list[str]:
    """The paper's ten-query workload (2 regions x 5 date ranges)."""
    queries = []
    for region in Q5_REGIONS:
        for year in Q5_YEARS:
            queries.append(
                q5(region, f"{year}-01-01", f"{year + 1}-01-01")
            )
    return queries


def q1(delta_days: int = 90) -> str:
    """TPC-H Q1: pricing summary report (scan + wide aggregation)."""
    return (
        "SELECT l_returnflag, l_linestatus, "
        "SUM(l_quantity) AS sum_qty, "
        "SUM(l_extendedprice) AS sum_base_price, "
        "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
        "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) "
        "AS sum_charge, "
        "AVG(l_quantity) AS avg_qty, "
        "AVG(l_extendedprice) AS avg_price, "
        "AVG(l_discount) AS avg_disc, "
        "COUNT(*) AS count_order "
        "FROM lineitem "
        "WHERE l_shipdate <= DATE '1998-09-02' "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    )


def q3(segment: str = "BUILDING", date: str = "1995-03-15") -> str:
    """TPC-H Q3: shipping priority (three-way join, top-k)."""
    return (
        "SELECT l_orderkey, "
        "SUM(l_extendedprice * (1 - l_discount)) AS revenue, "
        "o_orderdate "
        "FROM customer, orders, lineitem "
        "WHERE c_mktsegment = '" + segment + "' "
        "AND c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey "
        f"AND o_orderdate < DATE '{date}' "
        f"AND l_shipdate > DATE '{date}' "
        "GROUP BY l_orderkey, o_orderdate "
        "ORDER BY revenue DESC, o_orderdate "
        "LIMIT 10"
    )


def q6(year: int = 1994, discount: float = 0.06,
       quantity: int = 24) -> str:
    """TPC-H Q6: forecasting revenue change (pure selection + sum)."""
    return (
        "SELECT SUM(l_extendedprice * l_discount) AS revenue "
        "FROM lineitem "
        f"WHERE l_shipdate >= DATE '{year}-01-01' "
        f"AND l_shipdate < DATE '{year + 1}-01-01' "
        f"AND l_discount BETWEEN {discount - 0.01:.2f} "
        f"AND {discount + 0.01:.2f} "
        f"AND l_quantity < {quantity}"
    )


def q10(date_from: str = "1993-10-01", date_to: str = "1994-01-01",
        limit: int = 20) -> str:
    """TPC-H Q10: returned-item reporting (customers who returned)."""
    return (
        "SELECT c_custkey, c_name, "
        "SUM(l_extendedprice * (1 - l_discount)) AS revenue, "
        "c_acctbal, n_name "
        "FROM customer, orders, lineitem, nation "
        "WHERE c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey "
        f"AND o_orderdate >= DATE '{date_from}' "
        f"AND o_orderdate < DATE '{date_to}' "
        "AND l_returnflag = 'R' "
        "AND c_nationkey = n_nationkey "
        "GROUP BY c_custkey, c_name, c_acctbal, n_name "
        "ORDER BY revenue DESC "
        f"LIMIT {limit}"
    )


def q14_promo(date_from: str = "1995-09-01",
              date_to: str = "1995-10-01") -> str:
    """Q14-style promo revenue (numerator form, no CASE expression):
    revenue from parts whose type starts with PROMO in the window."""
    return (
        "SELECT SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue "
        "FROM lineitem, part "
        "WHERE l_partkey = p_partkey "
        "AND p_type LIKE 'PROMO%' "
        f"AND l_shipdate >= DATE '{date_from}' "
        f"AND l_shipdate < DATE '{date_to}'"
    )


def q12(year: int = 1994, modes: tuple[str, str] = ("MAIL", "SHIP")
        ) -> str:
    """TPC-H Q12: shipping modes and order priority (CASE aggregation)."""
    mode_list = ", ".join(f"'{m}'" for m in modes)
    return (
        "SELECT l_shipmode, "
        "SUM(CASE WHEN o_orderpriority = '1-URGENT' "
        "OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) "
        "AS high_line_count, "
        "SUM(CASE WHEN o_orderpriority <> '1-URGENT' "
        "AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) "
        "AS low_line_count "
        "FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey "
        f"AND l_shipmode IN ({mode_list}) "
        "AND l_commitdate < l_receiptdate "
        "AND l_shipdate < l_commitdate "
        f"AND l_receiptdate >= DATE '{year}-01-01' "
        f"AND l_receiptdate < DATE '{year + 1}-01-01' "
        "GROUP BY l_shipmode "
        "ORDER BY l_shipmode"
    )


def q14(date_from: str = "1995-09-01", date_to: str = "1995-10-01"
        ) -> str:
    """TPC-H Q14: promotion effect (CASE ratio over a join)."""
    return (
        "SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%' "
        "THEN l_extendedprice * (1 - l_discount) ELSE 0 END) "
        "/ SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue "
        "FROM lineitem, part "
        "WHERE l_partkey = p_partkey "
        f"AND l_shipdate >= DATE '{date_from}' "
        f"AND l_shipdate < DATE '{date_to}'"
    )


def q19(brands: tuple[str, str, str] = ("Brand#12", "Brand#23",
                                        "Brand#34"),
        quantities: tuple[int, int, int] = (1, 10, 20)) -> str:
    """TPC-H Q19-style discounted revenue (disjunction of conjunctive
    branches sharing the join predicate).

    Adapted to this generator's schema: the spec's ``l_shipinstruct``
    and ``p_container`` predicates are replaced by ``p_size`` bands,
    preserving the query's shape (an OR whose every branch repeats
    ``p_partkey = l_partkey``, exercising the optimizer's common-factor
    extraction).
    """
    branches = []
    for i, (brand, quantity) in enumerate(zip(brands, quantities)):
        size_hi = 5 * (i + 1)
        branches.append(
            "("
            "p_partkey = l_partkey "
            f"AND p_brand = '{brand}' "
            f"AND l_quantity >= {quantity} "
            f"AND l_quantity <= {quantity + 10} "
            f"AND p_size BETWEEN 1 AND {size_hi}"
            ")"
        )
    return (
        "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue "
        "FROM lineitem, part "
        "WHERE " + " OR ".join(branches)
    )


#: Tables Q5 touches -- lets benches generate only what they need.
Q5_TABLES = [
    "region", "nation", "supplier", "customer", "orders", "lineitem",
]
