"""TPC-H table schemas (the columns the benchmark queries touch).

Wide free-text columns (``*_comment``, addresses, phones) are omitted:
they contribute storage volume but no query semantics.  Their width is
folded into the page-count estimates via the row-store row header so the
I/O volumes stay realistic.
"""

from __future__ import annotations

from repro.db.schema import ColumnDef, TableSchema
from repro.db.types import DataType

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
    "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
    "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]

#: nation -> region assignment (5 per region), following the TPC-H spec.
NATION_REGIONS = [
    0, 1, 1, 1, 4,
    0, 3, 3, 2, 2,
    4, 4, 2, 4, 0,
    0, 0, 1, 2, 3,
    4, 2, 3, 3, 1,
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]
ORDER_STATUSES = ["O", "F", "P"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

#: Base cardinalities at scale factor 1.0.
BASE_CARDINALITIES = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    # lineitem is derived: 1..7 lines per order, ~4 on average.
}

#: TPC-H date domain: orders span 1992-01-01 .. 1998-08-02.
DATE_MIN = "1992-01-01"
DATE_MAX = "1998-08-02"

#: l_quantity is uniform over 1..50 (the QED workload's 2% selectivity).
QUANTITY_MAX = 50


def region_schema() -> TableSchema:
    return TableSchema("region", [
        ColumnDef("r_regionkey", DataType.INT64),
        ColumnDef("r_name", DataType.STRING),
    ])


def nation_schema() -> TableSchema:
    return TableSchema("nation", [
        ColumnDef("n_nationkey", DataType.INT64),
        ColumnDef("n_name", DataType.STRING),
        ColumnDef("n_regionkey", DataType.INT64),
    ])


def supplier_schema() -> TableSchema:
    return TableSchema("supplier", [
        ColumnDef("s_suppkey", DataType.INT64),
        ColumnDef("s_name", DataType.STRING),
        ColumnDef("s_nationkey", DataType.INT64),
        ColumnDef("s_acctbal", DataType.FLOAT64),
    ])


def customer_schema() -> TableSchema:
    return TableSchema("customer", [
        ColumnDef("c_custkey", DataType.INT64),
        ColumnDef("c_name", DataType.STRING),
        ColumnDef("c_nationkey", DataType.INT64),
        ColumnDef("c_acctbal", DataType.FLOAT64),
        ColumnDef("c_mktsegment", DataType.STRING),
    ])


def part_schema() -> TableSchema:
    return TableSchema("part", [
        ColumnDef("p_partkey", DataType.INT64),
        ColumnDef("p_brand", DataType.STRING),
        ColumnDef("p_type", DataType.STRING),
        ColumnDef("p_size", DataType.INT64),
        ColumnDef("p_retailprice", DataType.FLOAT64),
    ])


def partsupp_schema() -> TableSchema:
    return TableSchema("partsupp", [
        ColumnDef("ps_partkey", DataType.INT64),
        ColumnDef("ps_suppkey", DataType.INT64),
        ColumnDef("ps_availqty", DataType.INT64),
        ColumnDef("ps_supplycost", DataType.FLOAT64),
    ])


def orders_schema() -> TableSchema:
    return TableSchema("orders", [
        ColumnDef("o_orderkey", DataType.INT64),
        ColumnDef("o_custkey", DataType.INT64),
        ColumnDef("o_orderstatus", DataType.STRING),
        ColumnDef("o_totalprice", DataType.FLOAT64),
        ColumnDef("o_orderdate", DataType.DATE),
        ColumnDef("o_orderpriority", DataType.STRING),
    ])


def lineitem_schema() -> TableSchema:
    return TableSchema("lineitem", [
        ColumnDef("l_orderkey", DataType.INT64),
        ColumnDef("l_partkey", DataType.INT64),
        ColumnDef("l_suppkey", DataType.INT64),
        ColumnDef("l_linenumber", DataType.INT64),
        ColumnDef("l_quantity", DataType.INT64),
        ColumnDef("l_extendedprice", DataType.FLOAT64),
        ColumnDef("l_discount", DataType.FLOAT64),
        ColumnDef("l_tax", DataType.FLOAT64),
        ColumnDef("l_returnflag", DataType.STRING),
        ColumnDef("l_linestatus", DataType.STRING),
        ColumnDef("l_shipdate", DataType.DATE),
        ColumnDef("l_commitdate", DataType.DATE),
        ColumnDef("l_receiptdate", DataType.DATE),
        ColumnDef("l_shipmode", DataType.STRING),
    ])


ALL_SCHEMAS = [
    region_schema, nation_schema, supplier_schema, customer_schema,
    part_schema, partsupp_schema, orders_schema, lineitem_schema,
]
