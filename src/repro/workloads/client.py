"""Client-side cost model (the paper's Java/JDBC applications).

The paper's clients fetch results through JDBC and, for QED, split the
merged result back into per-query results in application logic (with
that time and energy explicitly counted).  Fetching and materializing a
row in a JDBC-style client costs far more cycles than scanning it inside
the engine, and -- crucially for QED's energy numbers -- runs at a low
duty cycle, so SpeedStep (our DVFS governor) drops the CPU to a lower
p-state during client-heavy phases, reducing power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.results import QueryResult
from repro.hardware.trace import ClientWork, Trace


@dataclass(frozen=True)
class ClientModel:
    """Cycle costs of the client application."""

    cycles_per_row_fetch: float = 18_000.0
    cycles_per_row_split: float = 12_000.0
    per_query_overhead_cycles: float = 5e6
    utilization: float = 0.5

    def fetch_work(self, rows: int, label: str = "client:fetch"
                   ) -> ClientWork:
        """Fetching + materializing ``rows`` result rows."""
        cycles = self.per_query_overhead_cycles + rows * self.cycles_per_row_fetch
        return ClientWork(cycles, self.utilization, label)

    def split_work(self, rows: int, label: str = "client:split"
                   ) -> ClientWork:
        """QED result splitting: routing ``rows`` merged rows."""
        return ClientWork(
            rows * self.cycles_per_row_split, self.utilization, label
        )

    def trace_for_result(self, result: QueryResult,
                         label: str = "client:fetch") -> Trace:
        return Trace([self.fetch_work(result.row_count, label)])
