"""Paper-vs-measured comparison tables (used by every benchmark)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ComparisonRow:
    label: str
    paper: float | None
    measured: float
    unit: str = ""

    @property
    def error(self) -> float | None:
        """Relative error vs the paper value (None when no paper value)."""
        if self.paper is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / abs(self.paper)


@dataclass
class ComparisonTable:
    """A titled list of paper-vs-measured rows with ascii rendering."""

    title: str
    rows: list[ComparisonRow] = field(default_factory=list)

    def add(self, label: str, paper: float | None, measured: float,
            unit: str = "") -> None:
        self.rows.append(ComparisonRow(label, paper, measured, unit))

    def max_abs_error(self) -> float:
        errors = [abs(r.error) for r in self.rows if r.error is not None]
        return max(errors) if errors else 0.0

    def render(self) -> str:
        width = max([len(r.label) for r in self.rows] + [len("metric")])
        lines = [
            f"== {self.title} ==",
            f"{'metric'.ljust(width)}  {'paper':>10}  {'measured':>10}"
            f"  {'err%':>7}",
        ]
        for r in self.rows:
            paper = f"{r.paper:10.4g}" if r.paper is not None else " " * 10
            err = (
                f"{100 * r.error:+6.1f}%" if r.error is not None else "      -"
            )
            unit = f" {r.unit}" if r.unit else ""
            lines.append(
                f"{r.label.ljust(width)}  {paper}  {r.measured:10.4g}"
                f"  {err}{unit}"
            )
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
