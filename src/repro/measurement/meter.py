"""Measurement helpers over run measurements and sensors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.sensors import CurrentProbe, EpuSensor, WallMeter
from repro.hardware.system import RunMeasurement


@dataclass(frozen=True)
class InstrumentedReading:
    """One run as the paper's instruments would report it."""

    duration_s: float
    epu_cpu_joules: float       # 1 Hz GUI-sampled estimate
    exact_cpu_joules: float     # ground truth integral
    wall_joules: float
    disk_5v_joules: float
    disk_12v_joules: float

    @property
    def epu_error(self) -> float:
        if self.exact_cpu_joules == 0:  # repro: noqa[FLOAT-EQ]: division guard on the exact-zero integral
            return 0.0
        return (
            (self.epu_cpu_joules - self.exact_cpu_joules)
            / self.exact_cpu_joules
        )

    @property
    def disk_joules(self) -> float:
        return self.disk_5v_joules + self.disk_12v_joules


class InstrumentPanel:
    """The paper's bench: EPU sensor + wall meter + rail probes."""

    def __init__(self, epu: EpuSensor | None = None):
        self.epu = epu if epu is not None else EpuSensor()
        self.wall = WallMeter()
        self.probe = CurrentProbe()

    def read(self, run: RunMeasurement) -> InstrumentedReading:
        rails = self.probe.read(run)
        return InstrumentedReading(
            duration_s=run.duration_s,
            epu_cpu_joules=self.epu.read(run).joules,
            exact_cpu_joules=run.cpu_joules,
            wall_joules=self.wall.read_joules(run),
            disk_5v_joules=rails.joules_5v,
            disk_12v_joules=rails.joules_12v,
        )
