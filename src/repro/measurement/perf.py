"""Perf harness: execute-once/replay-many versus naive re-execution.

Times the same PVC sweep four ways on one database/machine pair:

* ``naive`` -- the full paper protocol with no caching anywhere:
  every operating point and every protocol repeat re-parses, re-plans,
  and re-executes the whole workload (``PvcSweep(replay=False)`` with
  per-repeat rerun; the "35x more expensive than necessary" pipeline).
  The database's plan cache is disabled while the naive baselines run,
  so they genuinely pay parse+plan per execution like the pre-PR code.
* ``naive_reuse`` -- the historical pre-refactor pipeline: one
  execution per operating point, readings reused across protocol
  repeats (``replay=False, rerun_repeats=False``), plan cache off.
* ``replay_cold`` -- the execute-once/replay-many pipeline starting
  from an empty execution cache: each distinct query executes once,
  then every point/repeat replays its compiled trace.
* ``replay_cached`` -- the same sweep again on the now-warm cache:
  zero database executions, pure vectorized playback.

The resulting :class:`PerfComparison` carries wall-clock numbers, the
speedups, and the maximum relative deviation of the replayed
:class:`~repro.core.metrics.OperatingPoint` values from the naive
curve -- which must be ~1e-15-ish noise, never a real difference.
``benchmarks/bench_perf_pipeline.py`` asserts on it and
``scripts/perf_report.py`` serializes it to ``BENCH_perf.json``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

from repro.core.pvc.sweep import PvcSweep
from repro.core.tradeoff import TradeoffCurve
from repro.db.engine import Database
from repro.hardware.profiles import pvc_settings_grid
from repro.hardware.system import SystemUnderTest
from repro.measurement.protocol import MeasurementProtocol
from repro.workloads.runner import TraceCache, WorkloadRunner


@dataclass
class SweepTiming:
    """One timed sweep: wall time plus the curve it produced."""

    label: str
    wall_s: float
    db_executions: int
    points: list[dict] = field(default_factory=list)


@dataclass
class PerfComparison:
    """Naive vs replay timings for one sweep configuration."""

    scale_factor: float | None
    engine: str
    num_settings: int
    repeats: int
    num_queries: int
    naive: SweepTiming
    naive_reuse: SweepTiming
    replay_cold: SweepTiming
    replay_cached: SweepTiming
    max_rel_diff_reuse: float
    max_rel_diff_cold: float
    max_rel_diff_cached: float

    @property
    def speedup_cold(self) -> float:
        return self.naive.wall_s / self.replay_cold.wall_s

    @property
    def speedup_cached(self) -> float:
        return self.naive.wall_s / self.replay_cached.wall_s

    @property
    def speedup_vs_prerefactor(self) -> float:
        """Cold-cache replay vs the historical execute-per-point path."""
        return self.naive_reuse.wall_s / self.replay_cold.wall_s

    def to_dict(self) -> dict:
        out = asdict(self)
        out["speedup_cold"] = self.speedup_cold
        out["speedup_cached"] = self.speedup_cached
        out["speedup_vs_prerefactor"] = self.speedup_vs_prerefactor
        return out


def _curve_points(curve: TradeoffCurve) -> list[dict]:
    return [
        {"label": p.label, "time_s": p.time_s, "energy_j": p.energy_j}
        for p in curve.all_points
    ]


def _max_rel_diff(reference: list[dict], other: list[dict]) -> float:
    worst = 0.0
    for a, b in zip(reference, other):
        for key in ("time_s", "energy_j"):
            denom = abs(a[key]) or 1.0
            worst = max(worst, abs(a[key] - b[key]) / denom)
    return worst


def compare_sweep_paths(
    db: Database,
    sut: SystemUnderTest,
    queries: list[str],
    repeats: int = 5,
    settings=None,
    scale_factor: float | None = None,
) -> PerfComparison:
    """Time the naive and replay sweep pipelines on identical inputs."""
    grid = (
        settings if settings is not None
        else pvc_settings_grid(include_stock=False)
    )

    def protocol() -> MeasurementProtocol:
        # Noise-free so the two paths are comparable value-for-value.
        return MeasurementProtocol(
            runs=repeats, drop_extremes=min(1, repeats // 3),
            noise_sigma=0.0,
        )

    def timed(label: str, sweep: PvcSweep) -> SweepTiming:
        before = db.executions
        start = time.perf_counter()
        curve = sweep.run(grid)
        wall = time.perf_counter() - start
        return SweepTiming(
            label=label, wall_s=wall,
            db_executions=db.executions - before,
            points=_curve_points(curve),
        )

    # The naive baselines model the pre-plan-cache pipeline: pay
    # parse+plan on every execution.
    naive_runner = WorkloadRunner(db, sut)
    db.plan_cache_enabled = False
    try:
        naive = timed(
            "naive",
            PvcSweep(naive_runner, queries, protocol=protocol(),
                     replay=False),
        )
        reuse = timed(
            "naive_reuse",
            PvcSweep(naive_runner, queries, protocol=protocol(),
                     replay=False, rerun_repeats=False),
        )
    finally:
        db.plan_cache_enabled = True

    replay_runner = WorkloadRunner(db, sut)
    cold = timed(
        "replay_cold",
        PvcSweep(replay_runner, queries, protocol=protocol(), replay=True),
    )
    cached = timed(
        "replay_cached",
        PvcSweep(replay_runner, queries, protocol=protocol(), replay=True),
    )

    return PerfComparison(
        scale_factor=scale_factor,
        engine=db.profile.name,
        num_settings=len(grid) + 1,  # grid plus the stock baseline
        repeats=repeats,
        num_queries=len(queries),
        naive=naive,
        naive_reuse=reuse,
        replay_cold=cold,
        replay_cached=cached,
        max_rel_diff_reuse=_max_rel_diff(naive.points, reuse.points),
        max_rel_diff_cold=_max_rel_diff(naive.points, cold.points),
        max_rel_diff_cached=_max_rel_diff(naive.points, cached.points),
    )


# -- cluster playback: batched stack vs per-query replay loop -------------

#: Canonical cluster-scaling scenario, shared by
#: ``benchmarks/bench_cluster_scaling.py`` and ``scripts/perf_report.py``
#: so both write comparable ``cluster_scaling`` records.
CLUSTER_DISTINCT = 50
CLUSTER_MEAN_INTERARRIVAL_S = 0.01
CLUSTER_ARRIVAL_SEED = 7


def cluster_scaling_scenario() -> tuple[list, object, list]:
    """(specs, router, arrivals) for the canonical scaling comparison.

    16 nodes x 10k arrivals by default; ``REPRO_BENCH_CLUSTER_NODES`` /
    ``REPRO_BENCH_CLUSTER_ARRIVALS`` shrink it for CI smoke runs.
    """
    import os

    from repro.cluster import RoundRobinRouter, uniform_fleet
    from repro.workloads.arrivals import poisson_arrivals
    from repro.workloads.selection import selection_workload

    nodes = int(os.environ.get("REPRO_BENCH_CLUSTER_NODES", "16"))
    count = int(os.environ.get("REPRO_BENCH_CLUSTER_ARRIVALS", "10000"))
    queries = selection_workload(CLUSTER_DISTINCT).queries
    stream = poisson_arrivals(
        [queries[i % CLUSTER_DISTINCT] for i in range(count)],
        CLUSTER_MEAN_INTERARRIVAL_S, seed=CLUSTER_ARRIVAL_SEED,
    )
    return uniform_fleet(nodes), RoundRobinRouter(), stream


@dataclass
class ClusterPerfComparison:
    """Batched fleet playback vs the per-query replay loop.

    Both paths play the *same* schedule (same routed timelines), so the
    comparison isolates playback: one stacked array call per distinct
    PVC setting versus one ``run_compiled`` call per scheduled piece.
    ``max_rel_diff`` is the worst per-node relative deviation in wall
    energy, CPU energy, and duration -- float-summation noise, never a
    real difference.
    """

    nodes: int
    arrivals: int
    scale_factor: float | None
    distinct_queries: int
    scheduled_pieces: int
    schedule_wall_s: float
    batched_wall_s: float
    loop_wall_s: float
    batched_wall_joules: float
    loop_wall_joules: float
    max_rel_diff: float

    @property
    def speedup(self) -> float:
        """Playback-phase speedup of the batched stack over the loop."""
        return self.loop_wall_s / self.batched_wall_s

    @property
    def end_to_end_speedup(self) -> float:
        """Schedule + playback, both paths paying the same event loop."""
        return (
            (self.schedule_wall_s + self.loop_wall_s)
            / (self.schedule_wall_s + self.batched_wall_s)
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["speedup"] = self.speedup
        out["end_to_end_speedup"] = self.end_to_end_speedup
        return out


def compare_cluster_playback(
    db: Database,
    specs,
    router,
    arrivals,
    scale_factor: float | None = None,
    trace_cache: TraceCache | None = None,
) -> ClusterPerfComparison:
    """Time batched vs per-query-loop playback of one cluster schedule."""
    from repro.cluster.simulator import ClusterSimulator

    sim = ClusterSimulator(db, specs, router, trace_cache=trace_cache)
    start = time.perf_counter()
    schedule = sim.schedule(arrivals)
    schedule_wall = time.perf_counter() - start

    start = time.perf_counter()
    batched = sim.playback(schedule, mode="batched")
    batched_wall = time.perf_counter() - start

    start = time.perf_counter()
    loop = sim.playback(schedule, mode="loop")
    loop_wall = time.perf_counter() - start

    worst = 0.0
    for a, b in zip(batched.nodes, loop.nodes):
        for key in ("wall_joules", "cpu_joules", "duration_s"):
            x = getattr(a.playback, key)
            y = getattr(b.playback, key)
            worst = max(worst, abs(x - y) / (abs(x) or 1.0))

    return ClusterPerfComparison(
        nodes=len(specs),
        arrivals=len(arrivals),
        scale_factor=scale_factor,
        distinct_queries=len({a.sql for a in arrivals}),
        scheduled_pieces=schedule.scheduled_pieces,
        schedule_wall_s=schedule_wall,
        batched_wall_s=batched_wall,
        loop_wall_s=loop_wall,
        batched_wall_joules=batched.wall_joules,
        loop_wall_joules=loop.wall_joules,
        max_rel_diff=worst,
    )
