"""Perf harness: execute-once/replay-many versus naive re-execution.

Times the same PVC sweep four ways on one database/machine pair:

* ``naive`` -- the full paper protocol with no caching anywhere:
  every operating point and every protocol repeat re-parses, re-plans,
  and re-executes the whole workload (``PvcSweep(replay=False)`` with
  per-repeat rerun; the "35x more expensive than necessary" pipeline).
  The database's plan cache is disabled while the naive baselines run,
  so they genuinely pay parse+plan per execution like the pre-PR code.
* ``naive_reuse`` -- the historical pre-refactor pipeline: one
  execution per operating point, readings reused across protocol
  repeats (``replay=False, rerun_repeats=False``), plan cache off.
* ``replay_cold`` -- the execute-once/replay-many pipeline starting
  from an empty execution cache: each distinct query executes once,
  then every point/repeat replays its compiled trace.
* ``replay_cached`` -- the same sweep again on the now-warm cache:
  zero database executions, pure vectorized playback.

The resulting :class:`PerfComparison` carries wall-clock numbers, the
speedups, and the maximum relative deviation of the replayed
:class:`~repro.core.metrics.OperatingPoint` values from the naive
curve -- which must be ~1e-15-ish noise, never a real difference.
``benchmarks/bench_perf_pipeline.py`` asserts on it and
``scripts/perf_report.py`` serializes it to ``BENCH_perf.json``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

from repro.core.pvc.sweep import PvcSweep
from repro.core.tradeoff import TradeoffCurve
from repro.db.engine import Database
from repro.hardware.profiles import pvc_settings_grid
from repro.hardware.system import SystemUnderTest
from repro.measurement.protocol import MeasurementProtocol
from repro.workloads.runner import TraceCache, WorkloadRunner


@dataclass
class SweepTiming:
    """One timed sweep: wall time plus the curve it produced."""

    label: str
    wall_s: float
    db_executions: int
    points: list[dict] = field(default_factory=list)


@dataclass
class PerfComparison:
    """Naive vs replay timings for one sweep configuration."""

    scale_factor: float | None
    engine: str
    num_settings: int
    repeats: int
    num_queries: int
    naive: SweepTiming
    naive_reuse: SweepTiming
    replay_cold: SweepTiming
    replay_cached: SweepTiming
    max_rel_diff_reuse: float
    max_rel_diff_cold: float
    max_rel_diff_cached: float

    @property
    def speedup_cold(self) -> float:
        return self.naive.wall_s / self.replay_cold.wall_s

    @property
    def speedup_cached(self) -> float:
        return self.naive.wall_s / self.replay_cached.wall_s

    @property
    def speedup_vs_prerefactor(self) -> float:
        """Cold-cache replay vs the historical execute-per-point path."""
        return self.naive_reuse.wall_s / self.replay_cold.wall_s

    def to_dict(self) -> dict:
        out = asdict(self)
        out["speedup_cold"] = self.speedup_cold
        out["speedup_cached"] = self.speedup_cached
        out["speedup_vs_prerefactor"] = self.speedup_vs_prerefactor
        return out


def _curve_points(curve: TradeoffCurve) -> list[dict]:
    return [
        {"label": p.label, "time_s": p.time_s, "energy_j": p.energy_j}
        for p in curve.all_points
    ]


def _max_rel_diff(reference: list[dict], other: list[dict]) -> float:
    worst = 0.0
    for a, b in zip(reference, other):
        for key in ("time_s", "energy_j"):
            denom = abs(a[key]) or 1.0
            worst = max(worst, abs(a[key] - b[key]) / denom)
    return worst


def compare_sweep_paths(
    db: Database,
    sut: SystemUnderTest,
    queries: list[str],
    repeats: int = 5,
    settings=None,
    scale_factor: float | None = None,
) -> PerfComparison:
    """Time the naive and replay sweep pipelines on identical inputs."""
    grid = (
        settings if settings is not None
        else pvc_settings_grid(include_stock=False)
    )

    def protocol() -> MeasurementProtocol:
        # Noise-free so the two paths are comparable value-for-value.
        return MeasurementProtocol(
            runs=repeats, drop_extremes=min(1, repeats // 3),
            noise_sigma=0.0,
        )

    def timed(label: str, sweep: PvcSweep) -> SweepTiming:
        before = db.executions
        start = time.perf_counter()
        curve = sweep.run(grid)
        wall = time.perf_counter() - start
        return SweepTiming(
            label=label, wall_s=wall,
            db_executions=db.executions - before,
            points=_curve_points(curve),
        )

    # The naive baselines model the pre-plan-cache pipeline: pay
    # parse+plan on every execution.
    naive_runner = WorkloadRunner(db, sut)
    db.plan_cache_enabled = False
    try:
        naive = timed(
            "naive",
            PvcSweep(naive_runner, queries, protocol=protocol(),
                     replay=False),
        )
        reuse = timed(
            "naive_reuse",
            PvcSweep(naive_runner, queries, protocol=protocol(),
                     replay=False, rerun_repeats=False),
        )
    finally:
        db.plan_cache_enabled = True

    replay_runner = WorkloadRunner(db, sut)
    cold = timed(
        "replay_cold",
        PvcSweep(replay_runner, queries, protocol=protocol(), replay=True),
    )
    cached = timed(
        "replay_cached",
        PvcSweep(replay_runner, queries, protocol=protocol(), replay=True),
    )

    return PerfComparison(
        scale_factor=scale_factor,
        engine=db.profile.name,
        num_settings=len(grid) + 1,  # grid plus the stock baseline
        repeats=repeats,
        num_queries=len(queries),
        naive=naive,
        naive_reuse=reuse,
        replay_cold=cold,
        replay_cached=cached,
        max_rel_diff_reuse=_max_rel_diff(naive.points, reuse.points),
        max_rel_diff_cold=_max_rel_diff(naive.points, cold.points),
        max_rel_diff_cached=_max_rel_diff(naive.points, cached.points),
    )


# -- cluster playback: batched stack vs per-query replay loop -------------

#: Canonical cluster-scaling scenario, shared by
#: ``benchmarks/bench_cluster_scaling.py`` and ``scripts/perf_report.py``
#: so both write comparable ``cluster_scaling`` records.
CLUSTER_DISTINCT = 50
CLUSTER_MEAN_INTERARRIVAL_S = 0.01
CLUSTER_ARRIVAL_SEED = 7


def cluster_scaling_scenario() -> tuple[list, object, list]:
    """(specs, router, arrivals) for the canonical scaling comparison.

    16 nodes x 10k arrivals by default; ``REPRO_BENCH_CLUSTER_NODES`` /
    ``REPRO_BENCH_CLUSTER_ARRIVALS`` shrink it for CI smoke runs.
    """
    import os

    from repro.cluster import RoundRobinRouter, uniform_fleet
    from repro.workloads.arrivals import poisson_arrivals
    from repro.workloads.selection import selection_workload

    nodes = int(os.environ.get("REPRO_BENCH_CLUSTER_NODES", "16"))
    count = int(os.environ.get("REPRO_BENCH_CLUSTER_ARRIVALS", "10000"))
    queries = selection_workload(CLUSTER_DISTINCT).queries
    stream = poisson_arrivals(
        [queries[i % CLUSTER_DISTINCT] for i in range(count)],
        CLUSTER_MEAN_INTERARRIVAL_S, seed=CLUSTER_ARRIVAL_SEED,
    )
    return uniform_fleet(nodes), RoundRobinRouter(), stream


@dataclass
class ClusterPerfComparison:
    """Batched fleet playback vs the per-query replay loop.

    Both paths play the *same* schedule (same routed timelines), so the
    comparison isolates playback: one stacked array call per distinct
    PVC setting versus one ``run_compiled`` call per scheduled piece.
    ``max_rel_diff`` is the worst per-node relative deviation in wall
    energy, CPU energy, and duration -- float-summation noise, never a
    real difference.
    """

    nodes: int
    arrivals: int
    scale_factor: float | None
    distinct_queries: int
    scheduled_pieces: int
    schedule_wall_s: float
    batched_wall_s: float
    loop_wall_s: float
    batched_wall_joules: float
    loop_wall_joules: float
    max_rel_diff: float
    #: Config fingerprint hash of the scheduled run (bench history
    #: entries become attributable to their exact configuration).
    run_id: str | None = None
    #: Warm re-run of the untraced schedule (same sim, same caches) --
    #: the fair denominator for the tracing-overhead ratio.
    untraced_rerun_wall_s: float = 0.0
    #: The same schedule with a SpanTracer attached.
    traced_schedule_wall_s: float = 0.0
    traced_spans: int = 0
    #: Worst per-node playback deviation of the traced run vs the
    #: untraced batched run -- tracing must never perturb energies.
    traced_max_rel_diff: float = 0.0

    @property
    def speedup(self) -> float:
        """Playback-phase speedup of the batched stack over the loop."""
        return self.loop_wall_s / self.batched_wall_s

    @property
    def end_to_end_speedup(self) -> float:
        """Schedule + playback, both paths paying the same event loop."""
        return (
            (self.schedule_wall_s + self.loop_wall_s)
            / (self.schedule_wall_s + self.batched_wall_s)
        )

    @property
    def tracing_overhead(self) -> float:
        """Schedule-phase slowdown with tracing *enabled*, against the
        warm untraced re-run (the disabled path is gated separately by
        the ``cluster_scaling`` bench trend)."""
        if self.untraced_rerun_wall_s <= 0:
            return 0.0
        return (
            self.traced_schedule_wall_s / self.untraced_rerun_wall_s
            - 1.0
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["speedup"] = self.speedup
        out["end_to_end_speedup"] = self.end_to_end_speedup
        out["tracing_overhead"] = self.tracing_overhead
        return out


def compare_cluster_playback(
    db: Database,
    specs,
    router,
    arrivals,
    scale_factor: float | None = None,
    trace_cache: TraceCache | None = None,
) -> ClusterPerfComparison:
    """Time batched vs per-query-loop playback of one cluster schedule."""
    from repro.cluster.simulator import ClusterSimulator

    sim = ClusterSimulator(db, specs, router, trace_cache=trace_cache)
    # This comparison isolates *playback* (batched vs loop) on one
    # legacy schedule; the vectorized scheduler has no per-piece
    # timeline for the loop to replay, so pin the event loop explicitly.
    start = time.perf_counter()
    schedule = sim.schedule(arrivals, vectorized=False)
    schedule_wall = time.perf_counter() - start

    start = time.perf_counter()
    batched = sim.playback(schedule, mode="batched")
    batched_wall = time.perf_counter() - start

    start = time.perf_counter()
    loop = sim.playback(schedule, mode="loop")
    loop_wall = time.perf_counter() - start

    worst = 0.0
    for a, b in zip(batched.nodes, loop.nodes):
        for key in ("wall_joules", "cpu_joules", "duration_s"):
            x = getattr(a.playback, key)
            y = getattr(b.playback, key)
            worst = max(worst, abs(x - y) / (abs(x) or 1.0))

    # Tracing pass on the same (warm) simulator: re-time the untraced
    # schedule first so the overhead ratio compares warm to warm, then
    # schedule again with spans on and check playback is unperturbed.
    from repro.obs import NULL_TRACER, SpanTracer

    start = time.perf_counter()
    sim.schedule(arrivals, vectorized=False)
    untraced_rerun_wall = time.perf_counter() - start

    tracer = SpanTracer()
    sim.tracer = tracer
    start = time.perf_counter()
    traced_schedule = sim.schedule(arrivals, vectorized=False)
    traced_schedule_wall = time.perf_counter() - start
    sim.tracer = NULL_TRACER
    traced = sim.playback(traced_schedule, mode="batched")
    traced_worst = 0.0
    for a, b in zip(batched.nodes, traced.nodes):
        for key in ("wall_joules", "cpu_joules", "duration_s"):
            x = getattr(a.playback, key)
            y = getattr(b.playback, key)
            traced_worst = max(traced_worst, abs(x - y) / (abs(x) or 1.0))

    return ClusterPerfComparison(
        nodes=len(specs),
        arrivals=len(arrivals),
        scale_factor=scale_factor,
        distinct_queries=len({a.sql for a in arrivals}),
        scheduled_pieces=schedule.scheduled_pieces,
        schedule_wall_s=schedule_wall,
        batched_wall_s=batched_wall,
        loop_wall_s=loop_wall,
        batched_wall_joules=batched.wall_joules,
        loop_wall_joules=loop.wall_joules,
        max_rel_diff=worst,
        run_id=schedule.run_id,
        untraced_rerun_wall_s=untraced_rerun_wall,
        traced_schedule_wall_s=traced_schedule_wall,
        traced_spans=len(tracer.spans),
        traced_max_rel_diff=traced_worst,
    )


# -- cluster scheduling: vectorized event core vs per-arrival loop --------

#: Canonical scheduler-scaling scenario: a 100-node fleet under a
#: million-arrival stream.  ``REPRO_BENCH_SCALING_NODES`` /
#: ``REPRO_BENCH_SCALING_ARRIVALS`` shrink the vectorized-only tier and
#: ``REPRO_BENCH_SCALING_COMPARE_ARRIVALS`` the paired comparison (the
#: legacy loop at the full million would dominate CI wall time).
SCALING_SCHED_NODES = 100
SCALING_SCHED_ARRIVALS = 1_000_000
SCALING_COMPARE_ARRIVALS = 100_000


def scheduler_scaling_scenario(
    count: int | None = None, nodes: int | None = None,
) -> tuple[list, object, list]:
    """(specs, router, arrivals) for the scheduler-scaling comparison.

    Round-robin routing: its chunked fast path is pure array math, so
    the comparison isolates the event core (the legacy per-arrival loop
    versus closed-form FIFO sequencing), not router bookkeeping.
    """
    import os

    from repro.cluster import RoundRobinRouter, uniform_fleet
    from repro.workloads.arrivals import poisson_arrivals
    from repro.workloads.selection import selection_workload

    if nodes is None:
        nodes = int(os.environ.get(
            "REPRO_BENCH_SCALING_NODES", str(SCALING_SCHED_NODES)
        ))
    if count is None:
        count = int(os.environ.get(
            "REPRO_BENCH_SCALING_ARRIVALS", str(SCALING_SCHED_ARRIVALS)
        ))
    queries = selection_workload(CLUSTER_DISTINCT).queries
    stream = poisson_arrivals(
        [queries[i % CLUSTER_DISTINCT] for i in range(count)],
        CLUSTER_MEAN_INTERARRIVAL_S, seed=CLUSTER_ARRIVAL_SEED,
    )
    return uniform_fleet(nodes), RoundRobinRouter(), stream


def scheduler_compare_arrivals() -> int:
    """Arrival count for the timed legacy-vs-vectorized pairing."""
    import os

    return int(os.environ.get(
        "REPRO_BENCH_SCALING_COMPARE_ARRIVALS",
        str(SCALING_COMPARE_ARRIVALS),
    ))


@dataclass
class SchedulingComparison:
    """Vectorized chunked scheduling vs the per-arrival event loop.

    Both paths schedule and play the *same* arrival stream on
    identically-configured fleets; ``max_rel_diff`` is the worst
    per-node relative deviation in wall energy, CPU energy, and busy
    duration between the two playbacks -- float-summation noise, never
    a real difference (dispatch counts must match exactly).
    """

    nodes: int
    arrivals: int
    scale_factor: float | None
    distinct_queries: int
    legacy_schedule_wall_s: float
    vectorized_schedule_wall_s: float
    legacy_playback_wall_s: float
    vectorized_playback_wall_s: float
    legacy_wall_joules: float
    vectorized_wall_joules: float
    max_rel_diff: float
    dispatch_match: bool
    run_id: str | None = None

    @property
    def sched_speedup(self) -> float:
        """Schedule-phase speedup of the chunked event core."""
        return (
            self.legacy_schedule_wall_s
            / self.vectorized_schedule_wall_s
        )

    @property
    def end_to_end_speedup(self) -> float:
        """Schedule + playback, each path on its native playback."""
        return (
            (self.legacy_schedule_wall_s + self.legacy_playback_wall_s)
            / (self.vectorized_schedule_wall_s
               + self.vectorized_playback_wall_s)
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["sched_speedup"] = self.sched_speedup
        out["end_to_end_speedup"] = self.end_to_end_speedup
        return out


def compare_cluster_scheduling(
    db: Database,
    specs,
    router_factory,
    arrivals,
    scale_factor: float | None = None,
    trace_cache: TraceCache | None = None,
) -> SchedulingComparison:
    """Time the vectorized and legacy schedulers on identical inputs.

    ``router_factory`` builds a fresh router per path (routers carry
    rotation/busy state; ``schedule`` re-prepares the fleet, so one
    simulator serves both).  A warm-up schedule runs first: it fills
    the runner's execution cache, the database plan cache, and any
    trace cache, so the timed runs compare event cores warm-vs-warm
    instead of measuring execute-once costing twice.
    """
    from repro.cluster.simulator import ClusterSimulator

    sim = ClusterSimulator(
        db, specs, router_factory(), trace_cache=trace_cache
    )
    sim.schedule(arrivals, vectorized=True)  # warm-up

    sim.router = router_factory()
    start = time.perf_counter()
    legacy_schedule = sim.schedule(arrivals, vectorized=False)
    legacy_schedule_wall = time.perf_counter() - start
    start = time.perf_counter()
    legacy = sim.playback(legacy_schedule, mode="batched")
    legacy_playback_wall = time.perf_counter() - start

    sim.router = router_factory()
    start = time.perf_counter()
    vec_schedule = sim.schedule(arrivals, vectorized=True)
    vec_schedule_wall = time.perf_counter() - start
    start = time.perf_counter()
    vectorized = sim.playback(vec_schedule, mode="batched")
    vec_playback_wall = time.perf_counter() - start

    worst = 0.0
    dispatch_match = vectorized.served == legacy.served
    for a, b in zip(vectorized.nodes, legacy.nodes):
        dispatch_match = dispatch_match and a.queries == b.queries
        for key in ("wall_joules", "cpu_joules", "duration_s"):
            x = getattr(a.playback, key)
            y = getattr(b.playback, key)
            worst = max(worst, abs(x - y) / (abs(x) or 1.0))

    return SchedulingComparison(
        nodes=len(specs),
        arrivals=len(arrivals),
        scale_factor=scale_factor,
        distinct_queries=len({a.sql for a in arrivals}),
        legacy_schedule_wall_s=legacy_schedule_wall,
        vectorized_schedule_wall_s=vec_schedule_wall,
        legacy_playback_wall_s=legacy_playback_wall,
        vectorized_playback_wall_s=vec_playback_wall,
        legacy_wall_joules=legacy.wall_joules,
        vectorized_wall_joules=vectorized.wall_joules,
        max_rel_diff=worst,
        dispatch_match=dispatch_match,
        run_id=vec_schedule.run_id,
    )


@dataclass
class VectorizedTier:
    """The vectorized-only scaling tier: the event core at full size.

    No legacy pairing (the per-arrival loop at a million arrivals is
    minutes, not seconds); correctness rides on the
    :class:`SchedulingComparison` gate at the comparison size.
    """

    nodes: int
    arrivals: int
    scale_factor: float | None
    schedule_wall_s: float
    playback_wall_s: float
    wall_joules: float
    served: int
    run_id: str | None = None

    @property
    def total_wall_s(self) -> float:
        return self.schedule_wall_s + self.playback_wall_s

    def to_dict(self) -> dict:
        out = asdict(self)
        out["total_wall_s"] = self.total_wall_s
        return out


def time_vectorized_tier(
    db: Database,
    specs,
    router,
    arrivals,
    scale_factor: float | None = None,
    trace_cache: TraceCache | None = None,
) -> VectorizedTier:
    """Schedule and play one stream through the vectorized core only."""
    from repro.cluster.simulator import ClusterSimulator

    sim = ClusterSimulator(db, specs, router, trace_cache=trace_cache)
    start = time.perf_counter()
    schedule = sim.schedule(arrivals, vectorized=True)
    schedule_wall = time.perf_counter() - start
    start = time.perf_counter()
    measurement = sim.playback(schedule)
    playback_wall = time.perf_counter() - start
    return VectorizedTier(
        nodes=len(specs),
        arrivals=len(arrivals),
        scale_factor=scale_factor,
        schedule_wall_s=schedule_wall,
        playback_wall_s=playback_wall,
        wall_joules=measurement.wall_joules,
        served=measurement.served,
        run_id=schedule.run_id,
    )


# -- diurnal ablation: static vs dynamic policies on a hetero fleet -------

#: Canonical diurnal scenario, shared by
#: ``benchmarks/bench_ablation_diurnal.py`` and ``scripts/perf_report.py``
#: so both write comparable ``diurnal`` records.  The compressed "day"
#: swings a nonhomogeneous Poisson stream between a nighttime trough
#: and a midday crest over a fleet mixing full-power and eco nodes.
#: Rates are calibrated at the reference scale factor; service times
#: grow ~linearly with SF, so :func:`diurnal_scenario` rescales the
#: rate curve by ``REFERENCE_SF / sf`` to keep the *offered load*
#: (Erlangs) -- and therefore the policy comparison -- scale-invariant.
DIURNAL_REFERENCE_SF = 0.01
DIURNAL_BASE_RATE = 1.0
DIURNAL_PEAK_RATE = 14.0
DIURNAL_PERIOD_S = 120.0
DIURNAL_SEED = 7
DIURNAL_DISTINCT = 20
DIURNAL_SLA_S = 0.5
#: Equal SLA-miss budget for every policy: 1% of served arrivals.
DIURNAL_SLA_BUDGET = 0.01


def diurnal_scenario(sf: float | None = None):
    """(specs, schedule, stream) for the canonical diurnal comparison.

    Two compressed day/night cycles by default;
    ``REPRO_BENCH_DIURNAL_HORIZON`` shrinks the horizon for CI smoke
    runs (one cycle minimum keeps both a trough and a crest in play).
    ``sf`` rescales the rate curve so the offered load matches the
    reference calibration at any scale factor.
    """
    import os

    from repro.cluster import NodeGroup, hetero_fleet
    from repro.hardware.cpu import PvcSetting, VoltageDowngrade
    from repro.workloads.arrivals import (
        diurnal_schedule,
        rate_schedule_arrivals,
    )
    from repro.workloads.selection import selection_workload

    horizon = float(os.environ.get("REPRO_BENCH_DIURNAL_HORIZON", "240"))
    rate_scale = DIURNAL_REFERENCE_SF / sf if sf else 1.0
    specs = hetero_fleet([
        NodeGroup(2, prefix="big", hw="paper", wake_latency_s=4.0),
        NodeGroup(2, prefix="eco", hw="paper-nogpu",
                  setting=PvcSetting(10, VoltageDowngrade.MEDIUM),
                  capacity=0.8, sleep_wall_w=2.5, wake_latency_s=6.0),
    ])
    schedule = diurnal_schedule(
        DIURNAL_BASE_RATE * rate_scale, DIURNAL_PEAK_RATE * rate_scale,
        DIURNAL_PERIOD_S, horizon,
    )
    stream = rate_schedule_arrivals(
        selection_workload(DIURNAL_DISTINCT).queries, schedule,
        seed=DIURNAL_SEED,
    )
    return specs, schedule, stream


def diurnal_policies(schedule, sla_s: float = DIURNAL_SLA_S):
    """The ablation's four routing policies, named.

    ``sla_s`` is the (scale-adjusted) response-time target; the
    consolidate/dynamic backlog caps and the adaptive deadline all
    derive from it so the policies face the same goal posts at any
    scale factor.
    """
    from repro.cluster import (
        AdaptivePvcRouter,
        ConsolidateRouter,
        DynamicConsolidateRouter,
        RoundRobinRouter,
    )

    backlog = sla_s
    return [
        ("spread", RoundRobinRouter()),
        ("consolidate", ConsolidateRouter(max_backlog_s=backlog)),
        ("dynamic", DynamicConsolidateRouter(
            max_backlog_s=backlog, target_utilization=0.5,
            schedule=schedule,
        )),
        ("adaptive_pvc", AdaptivePvcRouter(deadline_s=sla_s)),
    ]


def _phase_of(rate: float, trough: float, crest: float) -> str:
    """Classify a window's scheduled rate into low / mid / peak,
    relative to the schedule's own trough/crest (the curve is rescaled
    per scale factor, so absolute thresholds would misclassify)."""
    span = crest - trough
    if rate < trough + span / 3.0:
        return "low"
    if rate > trough + 2.0 * span / 3.0:
        return "peak"
    return "mid"


@dataclass
class DiurnalAblation:
    """Static vs dynamic fleet policies under the diurnal profile.

    ``policies`` maps policy name to its aggregate metrics;
    ``phase_energy`` slices each policy's *modeled* energy into the
    schedule's low/mid/peak phases (``window_s`` windows, 20 s by
    default, classified by the scheduled rate at their midpoint).  ``hetero_*`` record the
    batched-vs-loop playback comparison on the dynamic schedule --
    proving the heterogeneous-fleet hot path keeps both its exactness
    and its speedup.
    """

    arrivals: int
    horizon_s: float
    scale_factor: float | None
    sla_s: float
    sla_budget: float
    policies: dict
    phase_energy: dict
    hetero_batched_wall_s: float
    hetero_loop_wall_s: float
    hetero_max_rel_diff: float

    @property
    def hetero_speedup(self) -> float:
        return self.hetero_loop_wall_s / self.hetero_batched_wall_s

    @property
    def dynamic_beats_spread(self) -> bool:
        """The acceptance gate: dynamic re-consolidation wins on energy
        while both policies hold the same SLA-miss budget."""
        spread = self.policies["spread"]
        dynamic = self.policies["dynamic"]
        budget = self.sla_budget * self.arrivals
        return (
            dynamic["wall_joules"] < spread["wall_joules"]
            and dynamic["sla_misses"] <= budget
            and spread["sla_misses"] <= budget
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["hetero_speedup"] = self.hetero_speedup
        out["dynamic_beats_spread"] = self.dynamic_beats_spread
        return out


# -- QED ablation: master queue vs per-node queues vs no queueing ---------

#: Canonical QED scenario, shared by ``benchmarks/bench_ablation_qed.py``
#: and ``scripts/perf_report.py`` so both write comparable ``qed``
#: records.  A Poisson stream mixes two mergeable selection templates
#: with an occasional non-mergeable (ORDER BY + LIMIT) shape -- the
#: master queue partitions them, per-node queues hit the mixed-batch
#: fallback, and the no-QED baseline serves every arrival alone.
#: Interarrival times and the SLA rescale with the scale factor the
#: same way the diurnal scenario's rates do, keeping the offered load
#: (and therefore the three-way comparison) scale-invariant.
QED_REFERENCE_SF = 0.01
QED_NODES = 4
QED_ARRIVALS = 600
QED_DISTINCT = 20
QED_MEAN_INTERARRIVAL_S = 0.02
QED_THRESHOLD = 16
QED_MAX_WAIT_S = 0.4
QED_SEED = 11
QED_SLA_S = 1.5
#: Equal SLA-miss budget for every mode: 1% of arrivals.
QED_SLA_BUDGET = 0.01
#: Every ALT-th arrival uses the second mergeable template, every
#: ODD-th the pass-through shape.  The mix keeps per-node batches
#: *mostly* clean (the fallback cost shows without erasing per-node
#: QED's win over no QED) while the master queue, which partitions,
#: never falls back at all.
QED_ALT_EVERY = 17
QED_ODD_EVERY = 67


def qed_alt_query(quantity: int) -> str:
    """Second mergeable template (different select list)."""
    return (f"SELECT l_orderkey, l_extendedprice FROM lineitem "
            f"WHERE l_quantity = {quantity}")


def qed_odd_query(quantity: int) -> str:
    """Non-mergeable shape: pass-through partition / node fallback."""
    return (f"SELECT l_orderkey FROM lineitem WHERE l_quantity = "
            f"{quantity} ORDER BY l_orderkey LIMIT 5")


def qed_ablation_stream(sf: float | None = None):
    """The canonical mixed-template arrival stream.

    ``REPRO_BENCH_QED_ARRIVALS`` shrinks it for CI smoke runs; ``sf``
    rescales interarrival times so the offered load matches the
    reference calibration at any scale factor.
    """
    import os

    from repro.workloads.arrivals import poisson_arrivals
    from repro.workloads.selection import selection_workload

    count = int(os.environ.get("REPRO_BENCH_QED_ARRIVALS",
                               str(QED_ARRIVALS)))
    scale = sf / QED_REFERENCE_SF if sf else 1.0
    base = selection_workload(QED_DISTINCT).queries
    queries = []
    for i in range(count):
        if i % QED_ODD_EVERY == QED_ODD_EVERY - 1:
            queries.append(qed_odd_query(
                QED_DISTINCT + 1 + i % 3
            ))
        elif i % QED_ALT_EVERY == QED_ALT_EVERY - 1:
            queries.append(qed_alt_query(
                QED_DISTINCT + 1 + i % 5
            ))
        else:
            queries.append(base[i % QED_DISTINCT])
    return poisson_arrivals(
        queries, QED_MEAN_INTERARRIVAL_S * scale, seed=QED_SEED
    )


@dataclass
class QedAblation:
    """Master-queue QED vs per-node QED vs no QED on one stream.

    The acceptance ordering is the paper's deployment claim: fleet-wide
    batching on the always-on master merges more queries per execution
    than per-node queues fed by a load balancer, which in turn beat
    serving every arrival alone -- all while holding the same SLA-miss
    budget.
    """

    arrivals: int
    nodes: int
    scale_factor: float | None
    sla_s: float
    sla_budget: float
    threshold: int
    max_wait_s: float
    modes: dict

    @property
    def _budget(self) -> float:
        return self.sla_budget * self.arrivals

    def _within_budget(self, name: str) -> bool:
        return self.modes[name]["sla_misses"] <= self._budget

    @property
    def master_beats_node(self) -> bool:
        return (
            self.modes["master"]["wall_joules"]
            < self.modes["node"]["wall_joules"]
            and self._within_budget("master")
            and self._within_budget("node")
        )

    @property
    def node_beats_off(self) -> bool:
        return (
            self.modes["node"]["wall_joules"]
            < self.modes["off"]["wall_joules"]
            and self._within_budget("node")
            and self._within_budget("off")
        )

    @property
    def master_vs_node_saving(self) -> float:
        return 1.0 - (
            self.modes["master"]["wall_joules"]
            / self.modes["node"]["wall_joules"]
        )

    @property
    def node_vs_off_saving(self) -> float:
        return 1.0 - (
            self.modes["node"]["wall_joules"]
            / self.modes["off"]["wall_joules"]
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["master_beats_node"] = self.master_beats_node
        out["node_beats_off"] = self.node_beats_off
        out["master_vs_node_saving"] = self.master_vs_node_saving
        out["node_vs_off_saving"] = self.node_vs_off_saving
        return out


def run_qed_ablation(
    db: Database,
    scale_factor: float | None = None,
    trace_cache: TraceCache | None = None,
) -> QedAblation:
    """Run the canonical mixed-template stream under all three modes."""
    from repro.cluster import (
        ClusterSimulator,
        LeastLoadedRouter,
        MasterQueue,
        RoundRobinRouter,
        uniform_fleet,
    )
    from repro.core.qed.policy import BatchPolicy

    stream = qed_ablation_stream(scale_factor)
    sla_s = QED_SLA_S * (
        scale_factor / QED_REFERENCE_SF if scale_factor else 1.0
    )
    max_wait = QED_MAX_WAIT_S * (
        scale_factor / QED_REFERENCE_SF if scale_factor else 1.0
    )
    policy = BatchPolicy(QED_THRESHOLD, max_wait_s=max_wait)

    def scenario(name: str):
        # The off/node baselines route round-robin -- the canonical
        # load balancer for queued workers, and *favorable* to node
        # mode: per-node queues hide backlog from completion-time
        # routing, so a least-loaded router funnels every arrival into
        # one node's queue (measured: big but almost-always-mixed
        # batches, worse than no QED at all).  Master mode's router is
        # idle (the placement policy picks nodes), so the gated gap
        # measures where the queue lives, not the router choice.
        if name == "off":
            return uniform_fleet(QED_NODES), RoundRobinRouter(), None
        if name == "node":
            return (
                uniform_fleet(QED_NODES, queue_policy=policy),
                RoundRobinRouter(), None,
            )
        return (
            uniform_fleet(QED_NODES), LeastLoadedRouter(),
            MasterQueue(policy),
        )

    modes: dict[str, dict] = {}
    for name in ("off", "node", "master"):
        specs, router, master_queue = scenario(name)
        sim = ClusterSimulator(db, specs, router,
                               trace_cache=trace_cache,
                               master_queue=master_queue)
        m = sim.run(stream)
        stats = {
            "run_id": m.run_id,
            "wall_joules": m.wall_joules,
            "edp": m.edp,
            "horizon_s": m.horizon_s,
            "served": m.served,
            "shed": len(m.shed),
            "sla_misses": m.sla_violations(sla_s),
            "p95_response_s": m.p95_response_s,
            "busy_s": sum(n.busy_s for n in m.nodes),
        }
        if m.qed is not None:
            stats.update({
                "qed_batches": m.qed.batches,
                "qed_mean_batch_size": m.qed.mean_batch_size,
                "qed_merged_windows": m.qed.merged_windows,
                "qed_singleton_windows": m.qed.singleton_windows,
                "qed_fallback_batches": m.qed.fallback_batches,
            })
        modes[name] = stats

    return QedAblation(
        arrivals=len(stream),
        nodes=QED_NODES,
        scale_factor=scale_factor,
        sla_s=sla_s,
        sla_budget=QED_SLA_BUDGET,
        threshold=QED_THRESHOLD,
        max_wait_s=max_wait,
        modes=modes,
    )


def run_diurnal_ablation(
    db: Database,
    scale_factor: float | None = None,
    trace_cache: TraceCache | None = None,
    window_s: float = 20.0,
) -> DiurnalAblation:
    """Run the canonical diurnal scenario under all four policies."""
    from repro.cluster.simulator import ClusterSimulator

    specs, schedule, stream = diurnal_scenario(scale_factor)
    # Service times grow ~linearly with SF; keep the SLA (and the
    # policies' derived knobs) constant in *service-time units*.
    sla_s = DIURNAL_SLA_S * (
        scale_factor / DIURNAL_REFERENCE_SF if scale_factor else 1.0
    )
    policies: dict[str, dict] = {}
    phase_energy: dict[str, dict[str, float]] = {}
    hetero = None
    for name, router in diurnal_policies(schedule, sla_s):
        sim = ClusterSimulator(db, specs, router,
                               trace_cache=trace_cache)
        scheduled = sim.schedule(stream)
        start = time.perf_counter()
        measurement = sim.playback(scheduled, mode="batched")
        batched_wall = time.perf_counter() - start
        policies[name] = {
            "run_id": measurement.run_id,
            "wall_joules": measurement.wall_joules,
            "edp": measurement.edp,
            "awake_node_s": measurement.awake_node_s,
            "re_sleeps": measurement.re_sleeps,
            "sla_misses": measurement.sla_violations(sla_s),
            "p95_response_s": measurement.p95_response_s,
            "served": measurement.served,
        }
        trough = schedule.rate_at(0.0)  # the sinusoid opens at its trough
        slices: dict[str, float] = {"low": 0.0, "mid": 0.0, "peak": 0.0}
        for window in measurement.window_report(window_s):
            mid = (window.start_s + window.end_s) / 2.0
            phase = _phase_of(schedule.rate_at(mid), trough,
                              schedule.peak_rate)
            slices[phase] += window.modeled_joules
        phase_energy[name] = slices
        if name == "dynamic":
            start = time.perf_counter()
            loop = sim.playback(scheduled, mode="loop")
            loop_wall = time.perf_counter() - start
            worst = 0.0
            for a, b in zip(measurement.nodes, loop.nodes):
                for key in ("wall_joules", "cpu_joules", "duration_s"):
                    x = getattr(a.playback, key)
                    y = getattr(b.playback, key)
                    worst = max(worst, abs(x - y) / (abs(x) or 1.0))
            hetero = (batched_wall, loop_wall, worst)

    return DiurnalAblation(
        arrivals=len(stream),
        horizon_s=schedule.horizon_s,
        scale_factor=scale_factor,
        sla_s=sla_s,
        sla_budget=DIURNAL_SLA_BUDGET,
        policies=policies,
        phase_energy=phase_energy,
        hetero_batched_wall_s=hetero[0],
        hetero_loop_wall_s=hetero[1],
        hetero_max_rel_diff=hetero[2],
    )


# -- fault ablation: consolidate-with-recovery vs always-awake spread ------

#: Canonical fault-recovery scenario, shared by
#: ``benchmarks/bench_fault_recovery.py`` and ``scripts/perf_report.py``
#: so both write comparable ``faults`` records.  The plan exercises
#: every fault kind the layer models: a straggler window inflates the
#: hot node's service times, a crash then kills it mid-batch (its
#: in-flight work requeues through the retry policy), the obvious
#: replacement refuses to wake while the crash is fresh, and a
#: transient-unavailability window keeps a fourth node out of the
#: routing pool.  Times are in stream seconds at the reference scale
#: factor; :func:`fault_plan` rescales them with SF exactly like the
#: stream's interarrival times, so the faults keep striking the same
#: phase of the run at any scale.
FAULT_REFERENCE_SF = 0.01
FAULT_NODES = 4
FAULT_ARRIVALS = 300
FAULT_DISTINCT = 20
FAULT_MEAN_INTERARRIVAL_S = 0.1
FAULT_SEED = 13
FAULT_PLAN_SEED = 29
FAULT_SLA_S = 1.5
#: Equal SLA-miss budget for both modes: 1% of arrivals.
FAULT_SLA_BUDGET = 0.01
FAULT_WAKE_LATENCY_S = 0.5
FAULT_RETRY_MAX = 4
FAULT_RETRY_BACKOFF_S = 0.05
FAULT_STRAGGLER_START_S = 2.0
FAULT_STRAGGLER_END_S = 3.0
FAULT_STRAGGLER_SLOWDOWN = 4.0
FAULT_CRASH_AT_S = 2.5
FAULT_RECOVER_AT_S = 4.0
FAULT_WAKE_FAIL_END_S = 3.5
FAULT_UNAVAILABLE_S = (0.5, 1.5)


def fault_plan(sf: float | None = None):
    """The canonical fault plan, time-rescaled to ``sf``."""
    from repro.cluster import FaultPlan, FaultSpec

    scale = sf / FAULT_REFERENCE_SF if sf else 1.0
    return FaultPlan([
        FaultSpec("straggler", "node00",
                  start_s=FAULT_STRAGGLER_START_S * scale,
                  end_s=FAULT_STRAGGLER_END_S * scale,
                  slowdown=FAULT_STRAGGLER_SLOWDOWN),
        FaultSpec("crash", "node00",
                  at_s=FAULT_CRASH_AT_S * scale,
                  recover_s=FAULT_RECOVER_AT_S * scale),
        FaultSpec("wake-failure", "node01",
                  start_s=0.0, end_s=FAULT_WAKE_FAIL_END_S * scale,
                  probability=1.0),
        FaultSpec("unavailable", "node03",
                  start_s=FAULT_UNAVAILABLE_S[0] * scale,
                  end_s=FAULT_UNAVAILABLE_S[1] * scale),
    ], seed=FAULT_PLAN_SEED)


def fault_ablation_stream(sf: float | None = None):
    """The canonical Poisson stream the faults strike.

    ``REPRO_BENCH_FAULT_ARRIVALS`` shrinks it for CI smoke runs (keep
    it long enough to outlive the crash); ``sf`` rescales interarrival
    times so the offered load matches the reference calibration.
    """
    import os

    from repro.workloads.arrivals import poisson_arrivals
    from repro.workloads.selection import selection_workload

    count = int(os.environ.get("REPRO_BENCH_FAULT_ARRIVALS",
                               str(FAULT_ARRIVALS)))
    scale = sf / FAULT_REFERENCE_SF if sf else 1.0
    base = selection_workload(FAULT_DISTINCT).queries
    queries = [base[i % FAULT_DISTINCT] for i in range(count)]
    return poisson_arrivals(
        queries, FAULT_MEAN_INTERARRIVAL_S * scale, seed=FAULT_SEED
    )


@dataclass
class FaultAblation:
    """Consolidate-with-recovery vs always-awake spread under faults.

    The acceptance claim: even while nodes crash mid-batch, refuse to
    wake, and straggle, energy-aware consolidation *with the recovery
    layer* still beats the always-awake spread baseline on energy at an
    equal SLA-miss budget -- and neither mode loses a query silently
    (every arrival is served or visibly dead-lettered).
    """

    arrivals: int
    nodes: int
    scale_factor: float | None
    sla_s: float
    sla_budget: float
    retry_max: int
    retry_backoff_s: float
    modes: dict

    @property
    def _budget(self) -> float:
        return self.sla_budget * self.arrivals

    def _within_budget(self, name: str) -> bool:
        return self.modes[name]["sla_misses"] <= self._budget

    @property
    def consolidate_beats_spread(self) -> bool:
        return (
            self.modes["consolidate"]["wall_joules"]
            < self.modes["spread"]["wall_joules"]
            and self._within_budget("consolidate")
            and self._within_budget("spread")
        )

    @property
    def consolidate_vs_spread_saving(self) -> float:
        return 1.0 - (
            self.modes["consolidate"]["wall_joules"]
            / self.modes["spread"]["wall_joules"]
        )

    @property
    def conserved(self) -> bool:
        """No query silently lost in either mode: every arrival served
        exactly once or visibly shed (dead-lettered)."""
        return all(m["conserved"] for m in self.modes.values())

    @property
    def faults_active(self) -> bool:
        """The plan actually bit: a crash took in-flight work (the
        requeues prove it was mid-batch) and a wake failed."""
        f = self.modes["consolidate"]["faults"]
        return (
            f["crashes"] >= 1
            and f["requeued"] >= 1
            and f["failed_wakes"] >= 1
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["consolidate_beats_spread"] = self.consolidate_beats_spread
        out["consolidate_vs_spread_saving"] = (
            self.consolidate_vs_spread_saving
        )
        out["conserved"] = self.conserved
        out["faults_active"] = self.faults_active
        return out


def run_fault_ablation(
    db: Database,
    scale_factor: float | None = None,
    trace_cache: TraceCache | None = None,
) -> FaultAblation:
    """Run the canonical fault plan under both fleet modes."""
    from repro.cluster import (
        ClusterSimulator,
        DynamicConsolidateRouter,
        RetryPolicy,
        RoundRobinRouter,
        uniform_fleet,
    )

    stream = fault_ablation_stream(scale_factor)
    scale = (
        scale_factor / FAULT_REFERENCE_SF if scale_factor else 1.0
    )
    sla_s = FAULT_SLA_S * scale
    retry = RetryPolicy(max_attempts=FAULT_RETRY_MAX,
                        backoff_s=FAULT_RETRY_BACKOFF_S * scale)
    specs = uniform_fleet(FAULT_NODES,
                          wake_latency_s=FAULT_WAKE_LATENCY_S * scale)
    expected = sorted((a.sql, a.time_s) for a in stream)

    def router_for(name: str):
        if name == "spread":
            return RoundRobinRouter()
        return DynamicConsolidateRouter(
            max_backlog_s=sla_s, target_utilization=0.5
        )

    modes: dict[str, dict] = {}
    for name in ("spread", "consolidate"):
        sim = ClusterSimulator(db, specs, router_for(name),
                               trace_cache=trace_cache,
                               faults=fault_plan(scale_factor),
                               retry=retry)
        m = sim.run(stream)
        outcomes = sorted(
            [(r.sql, r.arrival_s) for r in m.responses]
            + [(s.sql, s.arrival_s) for s in m.shed]
        )
        report = m.faults
        modes[name] = {
            "run_id": m.run_id,
            "wall_joules": m.wall_joules,
            "edp": m.edp,
            "horizon_s": m.horizon_s,
            "served": m.served,
            "shed": len(m.shed),
            "sla_misses": m.sla_violations(sla_s),
            "p95_response_s": m.p95_response_s,
            "busy_s": sum(n.busy_s for n in m.nodes),
            "awake_node_s": m.awake_node_s,
            "faults": report.to_dict(),
            "sla_split": m.sla_split(sla_s),
            "conserved": (
                outcomes == expected
                and len(m.shed) == report.dead_lettered
            ),
        }

    return FaultAblation(
        arrivals=len(stream),
        nodes=FAULT_NODES,
        scale_factor=scale_factor,
        sla_s=sla_s,
        sla_budget=FAULT_SLA_BUDGET,
        retry_max=FAULT_RETRY_MAX,
        retry_backoff_s=FAULT_RETRY_BACKOFF_S * scale,
        modes=modes,
    )


# -- replication ablation: placement + quorum consolidation under crash ----

#: Canonical replication-recovery scenario, shared by
#: ``benchmarks/bench_replication.py`` and ``scripts/perf_report.py``
#: so both write comparable ``replication`` records.  The fleet holds a
#: hash-partitioned lineitem (``REPL_SHARDS`` shards x
#: ``REPL_REPLICAS`` replicas, chained declustering) and the plan
#: strikes the same phase of the run as the canonical fault plan: a
#: straggler window inflates node00's service times, a crash then kills
#: it mid-batch -- taking a replica of every shard it held and
#: triggering re-replication copy traffic billed on both endpoints --
#: and a transient-unavailability window keeps node03 out of the pool
#: early on.  There is deliberately *no* wake-failure fault: the crash
#: must always find a wakeable source and destination, so the
#: restored-replication gate is deterministic.  Times are in stream
#: seconds at the reference SF and rescale exactly like the stream.
REPL_SHARDS = 4
REPL_REPLICAS = 2
REPL_QUORUM = 1
REPL_TABLE = "lineitem"


def replication_plan(sf: float | None = None):
    """The canonical replication fault plan, time-rescaled to ``sf``."""
    from repro.cluster import FaultPlan, FaultSpec

    scale = sf / FAULT_REFERENCE_SF if sf else 1.0
    return FaultPlan([
        FaultSpec("straggler", "node00",
                  start_s=FAULT_STRAGGLER_START_S * scale,
                  end_s=FAULT_STRAGGLER_END_S * scale,
                  slowdown=FAULT_STRAGGLER_SLOWDOWN),
        FaultSpec("crash", "node00",
                  at_s=FAULT_CRASH_AT_S * scale,
                  recover_s=FAULT_RECOVER_AT_S * scale),
        FaultSpec("unavailable", "node03",
                  start_s=FAULT_UNAVAILABLE_S[0] * scale,
                  end_s=FAULT_UNAVAILABLE_S[1] * scale),
    ], seed=FAULT_PLAN_SEED)


def replication_stream(sf: float | None = None):
    """The canonical Poisson stream the replicated fleet serves.

    ``REPRO_BENCH_REPLICATION_ARRIVALS`` shrinks it for CI smoke runs
    (keep it long enough to outlive the crash); ``sf`` rescales
    interarrival times like :func:`fault_ablation_stream`.
    """
    import os

    from repro.workloads.arrivals import poisson_arrivals
    from repro.workloads.selection import selection_workload

    count = int(os.environ.get("REPRO_BENCH_REPLICATION_ARRIVALS",
                               str(FAULT_ARRIVALS)))
    scale = sf / FAULT_REFERENCE_SF if sf else 1.0
    base = selection_workload(FAULT_DISTINCT).queries
    queries = [base[i % FAULT_DISTINCT] for i in range(count)]
    return poisson_arrivals(
        queries, FAULT_MEAN_INTERARRIVAL_S * scale, seed=FAULT_SEED
    )


def replication_placement(specs):
    """The canonical placement map over a fleet's node names."""
    from repro.cluster import generate_placement

    return generate_placement(
        specs, shards=REPL_SHARDS, replicas=REPL_REPLICAS,
        table=REPL_TABLE, quorum=REPL_QUORUM,
    )


@dataclass
class ReplicationAblation:
    """Quorum-aware consolidation vs spread on a replicated fleet.

    The acceptance claim: with lineitem hash-partitioned into
    replicated shards, quorum-constrained consolidation still spends no
    more energy than the always-awake spread baseline at an equal
    SLA-miss budget -- *while a crash and its re-replication copy
    traffic are in flight* -- and replication is restored (every shard
    back to its replica target by the end of the run) without silently
    losing a query.
    """

    arrivals: int
    nodes: int
    shards: int
    replicas: int
    quorum: int
    scale_factor: float | None
    sla_s: float
    sla_budget: float
    retry_max: int
    retry_backoff_s: float
    modes: dict

    @property
    def _budget(self) -> float:
        return self.sla_budget * self.arrivals

    def _within_budget(self, name: str) -> bool:
        return self.modes[name]["sla_misses"] <= self._budget

    @property
    def consolidate_beats_spread(self) -> bool:
        return (
            self.modes["consolidate"]["wall_joules"]
            <= self.modes["spread"]["wall_joules"]
            and self._within_budget("consolidate")
            and self._within_budget("spread")
        )

    @property
    def consolidate_vs_spread_saving(self) -> float:
        return 1.0 - (
            self.modes["consolidate"]["wall_joules"]
            / self.modes["spread"]["wall_joules"]
        )

    @property
    def conserved(self) -> bool:
        """No query silently lost in either mode."""
        return all(m["conserved"] for m in self.modes.values())

    @property
    def re_replicated(self) -> bool:
        """The crash actually triggered shard copies in both modes."""
        return all(
            m["faults"]["re_replications"] >= 1
            for m in self.modes.values()
        )

    @property
    def restored(self) -> bool:
        """Every shard is back at (or above) its replica target on
        live nodes by the end of the run, in both modes."""
        return all(m["restored"] for m in self.modes.values())

    def to_dict(self) -> dict:
        out = asdict(self)
        out["consolidate_beats_spread"] = self.consolidate_beats_spread
        out["consolidate_vs_spread_saving"] = (
            self.consolidate_vs_spread_saving
        )
        out["conserved"] = self.conserved
        out["re_replicated"] = self.re_replicated
        out["restored"] = self.restored
        return out


def run_replication_ablation(
    db: Database,
    scale_factor: float | None = None,
    trace_cache: TraceCache | None = None,
) -> ReplicationAblation:
    """Run the canonical replication scenario under both fleet modes."""
    from repro.cluster import (
        ClusterSimulator,
        DynamicConsolidateRouter,
        RetryPolicy,
        RoundRobinRouter,
        uniform_fleet,
    )

    stream = replication_stream(scale_factor)
    scale = (
        scale_factor / FAULT_REFERENCE_SF if scale_factor else 1.0
    )
    sla_s = FAULT_SLA_S * scale
    retry = RetryPolicy(max_attempts=FAULT_RETRY_MAX,
                        backoff_s=FAULT_RETRY_BACKOFF_S * scale)
    specs = uniform_fleet(FAULT_NODES,
                          wake_latency_s=FAULT_WAKE_LATENCY_S * scale)
    placement = replication_placement(specs)
    expected = sorted((a.sql, a.time_s) for a in stream)

    def router_for(name: str):
        if name == "spread":
            return RoundRobinRouter()
        return DynamicConsolidateRouter(
            max_backlog_s=sla_s, target_utilization=0.5
        )

    modes: dict[str, dict] = {}
    for name in ("spread", "consolidate"):
        sim = ClusterSimulator(db, specs, router_for(name),
                               trace_cache=trace_cache,
                               faults=replication_plan(scale_factor),
                               retry=retry, placement=placement)
        m = sim.run(stream)
        outcomes = sorted(
            [(r.sql, r.arrival_s) for r in m.responses]
            + [(s.sql, s.arrival_s) for s in m.shed]
        )
        report = m.faults
        live_holders = {
            key: sum(
                1 for node in sim.nodes
                if node.crashed_s is None
                and node.shards is not None and key in node.shards
            )
            for tp in placement.tables.values()
            for key in (
                (tp.table, shard) for shard in range(tp.shards)
            )
        }
        modes[name] = {
            "run_id": m.run_id,
            "wall_joules": m.wall_joules,
            "edp": m.edp,
            "horizon_s": m.horizon_s,
            "served": m.served,
            "shed": len(m.shed),
            "sla_misses": m.sla_violations(sla_s),
            "p95_response_s": m.p95_response_s,
            "busy_s": sum(n.busy_s for n in m.nodes),
            "awake_node_s": m.awake_node_s,
            "faults": report.to_dict(),
            "sla_split": m.sla_split(sla_s),
            "min_live_holders": min(live_holders.values()),
            "restored": all(
                count >= placement.for_table(table).replicas
                for (table, _shard), count in live_holders.items()
            ),
            "conserved": (
                outcomes == expected
                and len(m.shed) == report.dead_lettered
            ),
        }

    return ReplicationAblation(
        arrivals=len(stream),
        nodes=FAULT_NODES,
        shards=REPL_SHARDS,
        replicas=REPL_REPLICAS,
        quorum=REPL_QUORUM,
        scale_factor=scale_factor,
        sla_s=sla_s,
        sla_budget=FAULT_SLA_BUDGET,
        retry_max=FAULT_RETRY_MAX,
        retry_backoff_s=FAULT_RETRY_BACKOFF_S * scale,
        modes=modes,
    )
