"""Perf harness: execute-once/replay-many versus naive re-execution.

Times the same PVC sweep four ways on one database/machine pair:

* ``naive`` -- the full paper protocol with no caching anywhere:
  every operating point and every protocol repeat re-parses, re-plans,
  and re-executes the whole workload (``PvcSweep(replay=False)`` with
  per-repeat rerun; the "35x more expensive than necessary" pipeline).
  The database's plan cache is disabled while the naive baselines run,
  so they genuinely pay parse+plan per execution like the pre-PR code.
* ``naive_reuse`` -- the historical pre-refactor pipeline: one
  execution per operating point, readings reused across protocol
  repeats (``replay=False, rerun_repeats=False``), plan cache off.
* ``replay_cold`` -- the execute-once/replay-many pipeline starting
  from an empty execution cache: each distinct query executes once,
  then every point/repeat replays its compiled trace.
* ``replay_cached`` -- the same sweep again on the now-warm cache:
  zero database executions, pure vectorized playback.

The resulting :class:`PerfComparison` carries wall-clock numbers, the
speedups, and the maximum relative deviation of the replayed
:class:`~repro.core.metrics.OperatingPoint` values from the naive
curve -- which must be ~1e-15-ish noise, never a real difference.
``benchmarks/bench_perf_pipeline.py`` asserts on it and
``scripts/perf_report.py`` serializes it to ``BENCH_perf.json``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

from repro.core.pvc.sweep import PvcSweep
from repro.core.tradeoff import TradeoffCurve
from repro.db.engine import Database
from repro.hardware.profiles import pvc_settings_grid
from repro.hardware.system import SystemUnderTest
from repro.measurement.protocol import MeasurementProtocol
from repro.workloads.runner import WorkloadRunner


@dataclass
class SweepTiming:
    """One timed sweep: wall time plus the curve it produced."""

    label: str
    wall_s: float
    db_executions: int
    points: list[dict] = field(default_factory=list)


@dataclass
class PerfComparison:
    """Naive vs replay timings for one sweep configuration."""

    scale_factor: float | None
    engine: str
    num_settings: int
    repeats: int
    num_queries: int
    naive: SweepTiming
    naive_reuse: SweepTiming
    replay_cold: SweepTiming
    replay_cached: SweepTiming
    max_rel_diff_reuse: float
    max_rel_diff_cold: float
    max_rel_diff_cached: float

    @property
    def speedup_cold(self) -> float:
        return self.naive.wall_s / self.replay_cold.wall_s

    @property
    def speedup_cached(self) -> float:
        return self.naive.wall_s / self.replay_cached.wall_s

    @property
    def speedup_vs_prerefactor(self) -> float:
        """Cold-cache replay vs the historical execute-per-point path."""
        return self.naive_reuse.wall_s / self.replay_cold.wall_s

    def to_dict(self) -> dict:
        out = asdict(self)
        out["speedup_cold"] = self.speedup_cold
        out["speedup_cached"] = self.speedup_cached
        out["speedup_vs_prerefactor"] = self.speedup_vs_prerefactor
        return out


def _curve_points(curve: TradeoffCurve) -> list[dict]:
    return [
        {"label": p.label, "time_s": p.time_s, "energy_j": p.energy_j}
        for p in curve.all_points
    ]


def _max_rel_diff(reference: list[dict], other: list[dict]) -> float:
    worst = 0.0
    for a, b in zip(reference, other):
        for key in ("time_s", "energy_j"):
            denom = abs(a[key]) or 1.0
            worst = max(worst, abs(a[key] - b[key]) / denom)
    return worst


def compare_sweep_paths(
    db: Database,
    sut: SystemUnderTest,
    queries: list[str],
    repeats: int = 5,
    settings=None,
    scale_factor: float | None = None,
) -> PerfComparison:
    """Time the naive and replay sweep pipelines on identical inputs."""
    grid = (
        settings if settings is not None
        else pvc_settings_grid(include_stock=False)
    )

    def protocol() -> MeasurementProtocol:
        # Noise-free so the two paths are comparable value-for-value.
        return MeasurementProtocol(
            runs=repeats, drop_extremes=min(1, repeats // 3),
            noise_sigma=0.0,
        )

    def timed(label: str, sweep: PvcSweep) -> SweepTiming:
        before = db.executions
        start = time.perf_counter()
        curve = sweep.run(grid)
        wall = time.perf_counter() - start
        return SweepTiming(
            label=label, wall_s=wall,
            db_executions=db.executions - before,
            points=_curve_points(curve),
        )

    # The naive baselines model the pre-plan-cache pipeline: pay
    # parse+plan on every execution.
    naive_runner = WorkloadRunner(db, sut)
    db.plan_cache_enabled = False
    try:
        naive = timed(
            "naive",
            PvcSweep(naive_runner, queries, protocol=protocol(),
                     replay=False),
        )
        reuse = timed(
            "naive_reuse",
            PvcSweep(naive_runner, queries, protocol=protocol(),
                     replay=False, rerun_repeats=False),
        )
    finally:
        db.plan_cache_enabled = True

    replay_runner = WorkloadRunner(db, sut)
    cold = timed(
        "replay_cold",
        PvcSweep(replay_runner, queries, protocol=protocol(), replay=True),
    )
    cached = timed(
        "replay_cached",
        PvcSweep(replay_runner, queries, protocol=protocol(), replay=True),
    )

    return PerfComparison(
        scale_factor=scale_factor,
        engine=db.profile.name,
        num_settings=len(grid) + 1,  # grid plus the stock baseline
        repeats=repeats,
        num_queries=len(queries),
        naive=naive,
        naive_reuse=reuse,
        replay_cold=cold,
        replay_cached=cached,
        max_rel_diff_reuse=_max_rel_diff(naive.points, reuse.points),
        max_rel_diff_cold=_max_rel_diff(naive.points, cold.points),
        max_rel_diff_cached=_max_rel_diff(naive.points, cached.points),
    )
