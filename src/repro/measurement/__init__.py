"""Measurement: the paper's protocol, instruments, and reporting."""

from repro.measurement.meter import InstrumentPanel, InstrumentedReading
from repro.measurement.protocol import MeasurementProtocol, exact_protocol
from repro.measurement.report import ComparisonRow, ComparisonTable

__all__ = [
    "ComparisonRow",
    "ComparisonTable",
    "InstrumentPanel",
    "InstrumentedReading",
    "MeasurementProtocol",
    "exact_protocol",
]
