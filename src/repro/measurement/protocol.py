"""The paper's measurement protocol (Section 3.1).

"We run each workload five times and discard the top and bottom
readings, and average the middle three readings."  Measurement noise on
a real machine comes from OS jitter and the 1 Hz GUI-sampled EPU sensor;
we model it as seeded multiplicative Gaussian noise applied to each
run's readings, then apply the same trimmed-mean estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hardware.disk import DiskEnergy
from repro.hardware.system import RunMeasurement


@dataclass(frozen=True)
class ProtocolSample:
    """Trimmed-mean workload reading."""

    duration_s: float
    cpu_joules: float
    disk_joules: float
    wall_joules: float
    runs: int

    @property
    def avg_cpu_power_w(self) -> float:
        return self.cpu_joules / self.duration_s if self.duration_s else 0.0


class MeasurementProtocol:
    """Repeat-measure-trim-average, with a seeded noise model."""

    def __init__(self, runs: int = 5, drop_extremes: int = 1,
                 noise_sigma: float = 0.01, seed: int = 42):
        if runs < 1:
            raise ValueError("runs must be >= 1")
        if drop_extremes < 0 or 2 * drop_extremes >= runs:
            raise ValueError("cannot drop that many extremes")
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.runs = runs
        self.drop_extremes = drop_extremes
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(seed)

    def _noisy(self, value: float) -> float:
        if self.noise_sigma == 0:
            return value
        return value * (1.0 + self._rng.normal(0.0, self.noise_sigma))

    def measure(self, run_fn: Callable[[], RunMeasurement],
                rerun: bool = False) -> ProtocolSample:
        """Measure ``run_fn`` with the paper's protocol.

        With ``rerun`` False (default) the deterministic simulation runs
        once and the noise model perturbs each reading; with True the
        function is re-invoked per run (for callers with real
        run-to-run variation).
        """
        readings: list[RunMeasurement] = []
        base: RunMeasurement | None = None
        for _ in range(self.runs):
            if rerun or base is None:
                base = run_fn()
            readings.append(base)
        cpus = [self._noisy(r.cpu_joules) for r in readings]
        durations = [self._noisy(r.duration_s) for r in readings]
        disks = [self._noisy(r.disk_joules) for r in readings]
        walls = [self._noisy(r.wall_joules) for r in readings]
        return ProtocolSample(
            duration_s=self._trimmed_mean(durations),
            cpu_joules=self._trimmed_mean(cpus),
            disk_joules=self._trimmed_mean(disks),
            wall_joules=self._trimmed_mean(walls),
            runs=self.runs,
        )

    def _trimmed_mean(self, values: list[float]) -> float:
        ordered = sorted(values)
        k = self.drop_extremes
        kept = ordered[k: len(ordered) - k] if k else ordered
        return float(sum(kept) / len(kept))


def exact_protocol() -> MeasurementProtocol:
    """A noise-free protocol (single effective reading)."""
    return MeasurementProtocol(runs=1, drop_extremes=0, noise_sigma=0.0)


def combine_measurements(parts: list[RunMeasurement]) -> RunMeasurement:
    """Concatenate sequential run measurements into one."""
    if not parts:
        return RunMeasurement(
            duration_s=0.0, cpu_joules=0.0, memory_joules=0.0,
            disk_energy=DiskEnergy(0.0, 0.0), board_joules=0.0,
            gpu_joules=0.0, fan_joules=0.0, wall_joules=0.0,
        )
    total = parts[0]
    for part in parts[1:]:
        total = total + part
    return total
