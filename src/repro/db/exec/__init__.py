"""Execution: vectorized operators and counters."""
