"""Top-level execution: plan tree -> QueryResult."""

from __future__ import annotations

from repro.db.catalog import Catalog
from repro.db.exec.operators import ExecutionContext, execute_plan
from repro.db.exec.stats import ExecutionStats
from repro.db.plan.physical import PhysNode
from repro.db.results import QueryResult
from repro.db.storage.engines import StorageEngine


def run_plan(
    plan: PhysNode,
    catalog: Catalog,
    storage: StorageEngine,
    work_mem_bytes: int,
) -> QueryResult:
    """Execute a physical plan, returning a result with work counters."""
    stats = ExecutionStats()
    ctx = ExecutionContext(
        catalog=catalog,
        storage=storage,
        stats=stats,
        work_mem_bytes=work_mem_bytes,
    )
    batch = execute_plan(plan, ctx)
    names = list(batch.columns.keys())
    columns = [batch.columns[name] for name in names]
    result = QueryResult(names=names, columns=columns, stats=stats)
    stats.output_rows = result.row_count
    stats.output_bytes = result.size_bytes
    return result
