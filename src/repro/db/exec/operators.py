"""Physical-plan interpreter: vectorized operators.

Each operator consumes/produces :class:`~repro.db.expr.Batch` objects and
records its work in the query's :class:`ExecutionStats`.  Column names
stay qualified (``binding.column``) until the projection, which emits
bare output names.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.db.catalog import Catalog
from repro.db.errors import ExecutionError, PlanError
from repro.db.exec.stats import ExecutionStats, ExprCounters
from repro.db.expr import Batch, evaluate_predicate, evaluate_scalar
from repro.db.plan.physical import (
    AggregateSpec,
    PhysAggregate,
    PhysDistinct,
    PhysFilter,
    PhysHashJoin,
    PhysLimit,
    PhysNode,
    PhysProject,
    PhysScan,
    PhysSort,
)
from repro.db.sql import ast
from repro.db.storage.engines import StorageEngine
from repro.db.types import Column, DataType


@dataclass
class ExecutionContext:
    catalog: Catalog
    storage: StorageEngine
    stats: ExecutionStats
    work_mem_bytes: int = 64 * 1024 * 1024


def execute_plan(node: PhysNode, ctx: ExecutionContext) -> Batch:
    if isinstance(node, PhysScan):
        return _scan(node, ctx)
    if isinstance(node, PhysHashJoin):
        return _hash_join(node, ctx)
    if isinstance(node, PhysFilter):
        return _filter(node, ctx)
    if isinstance(node, PhysAggregate):
        return _aggregate(node, ctx)
    if isinstance(node, PhysProject):
        return _project(node, ctx)
    if isinstance(node, PhysDistinct):
        return _distinct(node, ctx)
    if isinstance(node, PhysSort):
        return _sort(node, ctx)
    if isinstance(node, PhysLimit):
        return _limit(node, ctx)
    raise ExecutionError(f"unknown plan node {type(node).__name__}")


# --------------------------------------------------------------------------
# Scans and filters.
# --------------------------------------------------------------------------

def _scan(node: PhysScan, ctx: ExecutionContext) -> Batch:
    table = ctx.catalog.table(node.table_name)
    op = ctx.stats.new_operator(f"scan:{node.binding}")
    columns = ctx.storage.scan(table, ctx.stats)
    if node.columns is not None:
        columns = {
            name: col for name, col in columns.items()
            if name in node.columns
        }
    batch = Batch.from_table(node.binding, columns, table.row_count)
    op.rows_in = table.row_count
    if node.predicate is not None:
        counters = ExprCounters()
        mask = evaluate_predicate(node.predicate, batch, counters)
        op.absorb_expr(counters)
        batch = batch.take(np.flatnonzero(mask))
    op.rows_out = batch.n_rows
    return batch


def _filter(node: PhysFilter, ctx: ExecutionContext) -> Batch:
    batch = execute_plan(node.child, ctx)
    op = ctx.stats.new_operator("filter")
    op.rows_in = batch.n_rows
    counters = ExprCounters()
    mask = evaluate_predicate(node.predicate, batch, counters)
    op.absorb_expr(counters)
    out = batch.take(np.flatnonzero(mask))
    op.rows_out = out.n_rows
    return out


# --------------------------------------------------------------------------
# Hash join.
# --------------------------------------------------------------------------

def _key_array(batch: Batch, ref: ast.ColumnRef) -> np.ndarray:
    col = batch.column(ref)
    if col.dtype is DataType.STRING:
        # Dictionaries differ across tables; join on decoded values.
        return col.values()
    return col.raw()


def join_indices(build_keys: np.ndarray, probe_keys: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """All (build_idx, probe_idx) pairs with equal keys (inner join)."""
    order = np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    left = np.searchsorted(sorted_keys, probe_keys, side="left")
    right = np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = right - left
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe_keys)), counts)
    if total == 0:
        return np.empty(0, dtype=np.int64), probe_idx
    starts = np.repeat(left, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(offsets, counts)
    build_idx = order[starts + within]
    return build_idx, probe_idx


def _batch_bytes(batch: Batch) -> int:
    width = sum(col.width_bytes for col in batch.columns.values())
    return batch.n_rows * width


def _hash_join(node: PhysHashJoin, ctx: ExecutionContext) -> Batch:
    build = execute_plan(node.build, ctx)
    probe = execute_plan(node.probe, ctx)
    op = ctx.stats.new_operator("hash_join")
    op.rows_in = build.n_rows + probe.n_rows
    op.hash_builds = build.n_rows
    op.hash_probes = probe.n_rows

    build_bytes = _batch_bytes(build)
    if ctx.storage.is_persistent and build_bytes > ctx.work_mem_bytes:
        # Hybrid hash join: partitions beyond work_mem go to temp files
        # (write + read back); the resident fraction stays in memory.
        overflow = 1.0 - ctx.work_mem_bytes / build_bytes
        ctx.storage.spill(
            (build_bytes + _batch_bytes(probe)) * overflow, ctx.stats,
            label="hashjoin",
        )

    build_keys = _key_array(build, node.build_key)
    probe_keys = _key_array(probe, node.probe_key)
    build_idx, probe_idx = join_indices(build_keys, probe_keys)
    out = build.take(build_idx).merged_with(probe.take(probe_idx))

    if node.post_predicates:
        counters = ExprCounters()
        mask = np.ones(out.n_rows, dtype=bool)
        for pred in node.post_predicates:
            mask &= evaluate_predicate(pred, out, counters, mask)
        op.absorb_expr(counters)
        out = out.take(np.flatnonzero(mask))
    op.rows_out = out.n_rows
    return out


# --------------------------------------------------------------------------
# Aggregation / distinct.
# --------------------------------------------------------------------------

def _group_ids(arrays: list[np.ndarray], n_rows: int
               ) -> tuple[np.ndarray, int]:
    """(inverse group id per row, group count) for composite keys."""
    if not arrays:
        return np.zeros(n_rows, dtype=np.int64), (1 if n_rows else 0)
    ids = None
    for arr in arrays:
        _, inverse = np.unique(arr, return_inverse=True)
        uniques = int(inverse.max()) + 1 if len(inverse) else 0
        if ids is None:
            ids = inverse.astype(np.int64)
        else:
            ids = ids * max(1, uniques) + inverse
            # Re-compact after each key to keep ids small (no overflow).
            _, ids = np.unique(ids, return_inverse=True)
            ids = ids.astype(np.int64)
    _, ids = np.unique(ids, return_inverse=True)
    n_groups = int(ids.max()) + 1 if len(ids) else 0
    return ids.astype(np.int64), n_groups


def _first_occurrence(inverse: np.ndarray, n_groups: int) -> np.ndarray:
    first = np.full(n_groups, len(inverse), dtype=np.int64)
    np.minimum.at(first, inverse, np.arange(len(inverse)))
    return first


def _aggregate(node: PhysAggregate, ctx: ExecutionContext) -> Batch:
    batch = execute_plan(node.child, ctx)
    op = ctx.stats.new_operator("aggregate")
    op.rows_in = batch.n_rows
    op.group_rows = batch.n_rows
    counters = ExprCounters()

    key_arrays: list[np.ndarray] = []
    key_columns: list[Column] = []
    for expr in node.group_exprs:
        if isinstance(expr, ast.ColumnRef):
            col = batch.column(expr)
            key_arrays.append(col.raw())
            key_columns.append(col)
        else:
            values = evaluate_scalar(expr, batch, counters)
            key_arrays.append(values)
            key_columns.append(
                Column(DataType.FLOAT64, np.asarray(values, dtype=np.float64))
            )
    inverse, n_groups = _group_ids(key_arrays, batch.n_rows)
    if not node.group_exprs and batch.n_rows == 0:
        n_groups = 1  # global aggregate over empty input: one row
        inverse = np.zeros(0, dtype=np.int64)

    columns: dict[str, Column] = {}
    if batch.n_rows:
        first = _first_occurrence(inverse, n_groups)
    else:
        first = np.zeros(0, dtype=np.int64)
    for j, col in enumerate(key_columns):
        columns[f"__grp{j}"] = col.take(first)

    for spec in node.aggregates:
        columns[spec.output] = _compute_aggregate(
            spec, batch, inverse, n_groups, counters
        )
    op.absorb_expr(counters)
    op.rows_out = n_groups
    return Batch(columns, n_groups)


def _compute_aggregate(spec: AggregateSpec, batch: Batch,
                       inverse: np.ndarray, n_groups: int,
                       counters: ExprCounters) -> Column:
    if spec.func == "count":
        if spec.arg is None:
            counts = np.bincount(inverse, minlength=n_groups)
        elif spec.distinct:
            col_expr = spec.arg
            if isinstance(col_expr, ast.ColumnRef):
                values = batch.column(col_expr).raw()
            else:
                values = evaluate_scalar(col_expr, batch, counters)
            counters.arithmetic_ops += len(values)
            # Count unique (group, value) pairs per group.
            _, value_ranks = np.unique(values, return_inverse=True)
            pair_ids, _ = _group_ids([inverse, value_ranks],
                                     len(values))
            unique_pairs = np.unique(pair_ids)
            # Recover each unique pair's group via first occurrence.
            firsts = _first_occurrence(pair_ids, len(unique_pairs))
            counts = np.bincount(inverse[firsts], minlength=n_groups)
        else:
            evaluate_scalar(spec.arg, batch, counters)
            counts = np.bincount(inverse, minlength=n_groups)
        return Column(DataType.INT64, counts.astype(np.int64))
    if spec.arg is None:
        raise ExecutionError(f"{spec.func.upper()} requires an argument")
    values = np.asarray(
        evaluate_scalar(spec.arg, batch, counters), dtype=np.float64
    )
    counters.arithmetic_ops += len(values)
    if spec.func == "sum":
        out = np.bincount(inverse, weights=values, minlength=n_groups)
        return Column(DataType.FLOAT64, out)
    if spec.func == "avg":
        sums = np.bincount(inverse, weights=values, minlength=n_groups)
        counts = np.bincount(inverse, minlength=n_groups)
        out = np.divide(sums, np.maximum(counts, 1))
        return Column(DataType.FLOAT64, out)
    if spec.func == "min":
        out = np.full(n_groups, np.inf)
        np.minimum.at(out, inverse, values)
        return Column(DataType.FLOAT64, out)
    if spec.func == "max":
        out = np.full(n_groups, -np.inf)
        np.maximum.at(out, inverse, values)
        return Column(DataType.FLOAT64, out)
    raise ExecutionError(f"unknown aggregate {spec.func!r}")


def _distinct(node: PhysDistinct, ctx: ExecutionContext) -> Batch:
    batch = execute_plan(node.child, ctx)
    op = ctx.stats.new_operator("distinct")
    op.rows_in = batch.n_rows
    op.group_rows = batch.n_rows
    arrays = [col.raw() for col in batch.columns.values()]
    inverse, n_groups = _group_ids(arrays, batch.n_rows)
    if batch.n_rows:
        first = np.sort(_first_occurrence(inverse, n_groups))
    else:
        first = np.zeros(0, dtype=np.int64)
    out = batch.take(first)
    op.rows_out = out.n_rows
    return out


# --------------------------------------------------------------------------
# Projection, sort, limit.
# --------------------------------------------------------------------------

def _project(node: PhysProject, ctx: ExecutionContext) -> Batch:
    batch = execute_plan(node.child, ctx)
    op = ctx.stats.new_operator("project")
    op.rows_in = batch.n_rows
    counters = ExprCounters()
    columns: dict[str, Column] = {}
    for i, item in enumerate(node.items):
        name = item.output_name(i)
        if name in columns:
            raise PlanError(f"duplicate output column {name!r}")
        if isinstance(item.expr, ast.ColumnRef):
            columns[name] = batch.column(item.expr)
        else:
            values = evaluate_scalar(item.expr, batch, counters)
            dtype = (
                DataType.INT64
                if np.issubdtype(np.asarray(values).dtype, np.integer)
                else DataType.FLOAT64
            )
            columns[name] = Column(
                dtype, np.asarray(values)
            )
    op.absorb_expr(counters)
    op.rows_out = batch.n_rows
    return Batch(columns, batch.n_rows)


def _sort_key_array(batch: Batch, expr: ast.Expr) -> np.ndarray:
    if isinstance(expr, ast.ColumnRef):
        col = batch.column(expr)
        if col.dtype is DataType.STRING:
            return col.values()  # lexicographic on decoded strings
        return col.raw()
    counters = ExprCounters()
    return evaluate_scalar(expr, batch, counters)


def _descending_key(values: np.ndarray) -> np.ndarray:
    """An ascending-sortable key that orders ``values`` descending.

    Stable ascending argsort on the returned array equals a stable
    descending sort on ``values`` (ties map to ties, so minor-key order
    is preserved).  Numeric keys negate in place -- no ranking pass --
    except where negation breaks ordering (NaNs, which argsort places
    last either way, and the unnegatable signed-integer minimum); those
    and non-numeric keys (strings, objects) fall back to negated dense
    ranks via ``np.unique``.
    """
    dtype = values.dtype
    if np.issubdtype(dtype, np.floating):
        if not np.isnan(values).any():
            return -values
    elif np.issubdtype(dtype, np.signedinteger):
        if not len(values) or values.min() > np.iinfo(dtype).min:
            return -values
    _, ranks = np.unique(values, return_inverse=True)
    return -ranks


def _sort(node: PhysSort, ctx: ExecutionContext) -> Batch:
    batch = execute_plan(node.child, ctx)
    op = ctx.stats.new_operator("sort")
    op.rows_in = batch.n_rows
    n = batch.n_rows
    op.sort_rows = int(n * max(1, math.ceil(math.log2(n)))) if n > 1 else n
    order = np.arange(n)
    for key in reversed(node.keys):
        values = _sort_key_array(batch, key.expr)[order]
        if key.descending:
            values = _descending_key(values)
        idx = np.argsort(values, kind="stable")
        order = order[idx]
    out = batch.take(order)
    op.rows_out = out.n_rows

    sort_bytes = _batch_bytes(batch)
    if ctx.storage.is_persistent and sort_bytes > ctx.work_mem_bytes:
        # External merge sort: runs beyond work_mem spill and merge back.
        overflow = 1.0 - ctx.work_mem_bytes / sort_bytes
        ctx.storage.spill(sort_bytes * overflow, ctx.stats, label="sort")
    return out


def _limit(node: PhysLimit, ctx: ExecutionContext) -> Batch:
    batch = execute_plan(node.child, ctx)
    op = ctx.stats.new_operator("limit")
    op.rows_in = batch.n_rows
    out = batch.head(node.limit)
    op.rows_out = out.n_rows
    return out
