"""Execution counters: the work a query actually performed.

Counters are the bridge between the relational engine and the hardware
simulator -- :mod:`repro.db.cost_model` turns them into CPU cycles, and
the storage engines contribute page-level I/O.  Every operator updates a
shared :class:`ExecutionStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.trace import DiskAccess


@dataclass
class ExprCounters:
    """Work performed while evaluating expressions.

    ``comparisons`` honours short-circuit semantics: in an OR chain a row
    stops evaluating at its first matching disjunct, so the count is the
    sum over rows of the first-true position -- this is what makes QED's
    merged-predicate scan cost grow sub-linearly with batch size.
    """

    comparisons: int = 0
    arithmetic_ops: int = 0

    def merge(self, other: "ExprCounters") -> None:
        self.comparisons += other.comparisons
        self.arithmetic_ops += other.arithmetic_ops


@dataclass
class OperatorStats:
    """Per-operator counters."""

    name: str
    rows_in: int = 0
    rows_out: int = 0
    comparisons: int = 0
    arithmetic_ops: int = 0
    hash_builds: int = 0
    hash_probes: int = 0
    sort_rows: int = 0
    group_rows: int = 0

    def absorb_expr(self, counters: ExprCounters) -> None:
        self.comparisons += counters.comparisons
        self.arithmetic_ops += counters.arithmetic_ops


@dataclass
class ExecutionStats:
    """Whole-query counters plus the storage I/O log."""

    operators: list[OperatorStats] = field(default_factory=list)
    io_log: list[DiskAccess] = field(default_factory=list)
    output_rows: int = 0
    output_bytes: int = 0

    def new_operator(self, name: str) -> OperatorStats:
        stats = OperatorStats(name)
        self.operators.append(stats)
        return stats

    def record_io(self, access: DiskAccess) -> None:
        self.io_log.append(access)

    # -- totals ---------------------------------------------------------

    @property
    def total_rows_scanned(self) -> int:
        return sum(
            op.rows_in for op in self.operators if op.name.startswith("scan")
        )

    @property
    def total_comparisons(self) -> int:
        return sum(op.comparisons for op in self.operators)

    @property
    def total_arithmetic_ops(self) -> int:
        return sum(op.arithmetic_ops for op in self.operators)

    @property
    def total_hash_builds(self) -> int:
        return sum(op.hash_builds for op in self.operators)

    @property
    def total_hash_probes(self) -> int:
        return sum(op.hash_probes for op in self.operators)

    @property
    def total_sort_rows(self) -> int:
        return sum(op.sort_rows for op in self.operators)

    @property
    def total_group_rows(self) -> int:
        return sum(op.group_rows for op in self.operators)

    @property
    def total_rows_in(self) -> int:
        return sum(op.rows_in for op in self.operators)

    def merge(self, other: "ExecutionStats") -> None:
        self.operators.extend(other.operators)
        self.io_log.extend(other.io_log)
        self.output_rows += other.output_rows
        self.output_bytes += other.output_bytes
