"""Turn execution counters into hardware work traces.

This is the contract between the relational engine and the simulated
machine: counters x engine-profile cycle costs = server CPU cycles, and
the storage engine's I/O log passes through as disk segments.  Client
work (result fetch, QED splitting) is added by
:mod:`repro.workloads.client`, not here.
"""

from __future__ import annotations

from repro.db.exec.stats import ExecutionStats
from repro.db.profiles import EngineProfile
from repro.hardware.trace import CpuWork, DiskAccess, Idle, Trace

#: sequential temp/log writes are issued in runs of this size
_TEMP_RUN_BYTES = 128 * 1024


def server_cycles(profile: EngineProfile, stats: ExecutionStats) -> float:
    """Total server-side CPU cycles implied by the counters."""
    scan_rows = sum(
        op.rows_in for op in stats.operators if op.name.startswith("scan")
    )
    return (
        profile.query_overhead_cycles
        + scan_rows * profile.cycles_per_row_scan
        + stats.total_comparisons * profile.cycles_per_comparison
        + stats.total_arithmetic_ops * profile.cycles_per_arith
        + stats.total_hash_builds * profile.cycles_per_hash_build
        + stats.total_hash_probes * profile.cycles_per_hash_probe
        + stats.total_sort_rows * profile.cycles_per_sort_row
        + stats.total_group_rows * profile.cycles_per_group_row
        + stats.output_rows * profile.cycles_per_output_row
    )


def build_trace(profile: EngineProfile, stats: ExecutionStats,
                label: str = "query") -> Trace:
    """Work trace for one executed query (server side only)."""
    trace = Trace()
    cycles = server_cycles(profile, stats)
    if cycles > 0:
        trace.add(CpuWork(cycles, utilization=1.0, label=f"{label}:server"))
    rows = stats.total_rows_in
    if profile.temp_write_bytes_per_row and rows:
        bytes_total = profile.temp_write_bytes_per_row * rows
        trace.add(DiskAccess(
            num_ops=max(1, int(bytes_total // _TEMP_RUN_BYTES)),
            bytes_total=bytes_total,
            sequential=True,
            write=True,
            label=f"{label}:temp",
        ))
    for access in stats.io_log:
        trace.add(access)
    if profile.stall_ns_per_row and rows:
        trace.add(Idle(rows * profile.stall_ns_per_row * 1e-9,
                       label=f"{label}:stall"))
    return trace
