"""Time/energy plan costing: the paper's energy-aware optimizer hook.

The paper argues a DBMS should "consider energy consumption as a
first-class metric ... when planning and processing queries" and lists
query optimization among the affected components.  This module estimates
a physical plan's (time, energy) *before execution* from the
optimizer's cardinality estimates, the engine profile's cycle costs,
and the machine's power model -- the same translation the executor's
counters go through afterwards, so estimates and measurements share
units and assumptions.

Plans can then be ranked by ``CostWeights`` (pure time = classical
optimizer, pure energy, or a blend), and
:func:`repro.db.engine.Database.estimate_cost` exposes the estimate.
"""

from __future__ import annotations

from repro.db.plan.cost import CostEstimate, CostWeights
from repro.db.plan.physical import (
    PhysAggregate,
    PhysDistinct,
    PhysFilter,
    PhysHashJoin,
    PhysLimit,
    PhysNode,
    PhysProject,
    PhysScan,
    PhysSort,
)
from repro.db.profiles import EngineProfile
from repro.hardware.cpu import Cpu
from repro.hardware.system import SystemUnderTest


class PlanCoster:
    """Estimates plan resource usage on a given machine."""

    def __init__(self, profile: EngineProfile, sut: SystemUnderTest):
        self.profile = profile
        self.sut = sut
        cpu: Cpu = sut.cpu_for(profile.workload_class)
        self._freq_hz = cpu.top_frequency_hz
        self._busy_w = cpu.busy_power_w(cpu.spec.top_pstate)
        self._idle_w = cpu.idle_power_w()
        self._disk_active_w = sut.disk.spec.active_power_w

    # -- public API ----------------------------------------------------

    def cost(self, plan: PhysNode,
             include_overhead: bool = True) -> CostEstimate:
        """Estimated (time, energy) for the (sub)plan.

        ``include_overhead`` adds the per-statement setup cost; pass
        False when costing sub-trees for EXPLAIN annotation.
        """
        cycles, disk_s = self._walk(plan)
        if include_overhead:
            cycles += self.profile.query_overhead_cycles
        rows = self._rows_in(plan)
        stall_s = rows * self.profile.stall_ns_per_row * 1e-9
        if self.profile.temp_write_bytes_per_row:
            disk_s += (
                rows * self.profile.temp_write_bytes_per_row
                / self.sut.disk.spec.seq_rate_bps
            )
        cpu_s = cycles / self._freq_hz
        time_s = cpu_s + disk_s + stall_s
        energy_j = (
            cpu_s * self._busy_w
            + (disk_s + stall_s) * self._idle_w
            + disk_s * self._disk_active_w
        )
        return CostEstimate(time_s=time_s, energy_j=energy_j)

    def weighted_cost(self, plan: PhysNode, weights: CostWeights) -> float:
        estimate = self.cost(plan)
        return estimate.weighted(weights.w_time, weights.w_energy)

    # -- per-node accounting --------------------------------------------

    def _rows_in(self, node: PhysNode) -> float:
        total = node.est_rows
        for child in node.children():
            total += self._rows_in(child)
        return total

    def _walk(self, node: PhysNode) -> tuple[float, float]:
        """(CPU cycles, disk seconds) for the subtree rooted at node."""
        cycles = 0.0
        disk_s = 0.0
        for child in node.children():
            child_cycles, child_disk = self._walk(child)
            cycles += child_cycles
            disk_s += child_disk
        profile = self.profile
        if isinstance(node, PhysScan):
            cycles += node.est_rows * profile.cycles_per_row_scan
            if node.predicate is not None:
                cycles += node.est_rows * profile.cycles_per_comparison
        elif isinstance(node, PhysHashJoin):
            cycles += node.build.est_rows * profile.cycles_per_hash_build
            cycles += node.probe.est_rows * profile.cycles_per_hash_probe
            cycles += (
                len(node.post_predicates)
                * node.est_rows * profile.cycles_per_comparison
            )
            disk_s += self._spill_seconds(
                node.build.est_rows, node.probe.est_rows
            )
        elif isinstance(node, PhysFilter):
            cycles += node.child.est_rows * profile.cycles_per_comparison
        elif isinstance(node, (PhysAggregate, PhysDistinct)):
            cycles += node.child.est_rows * profile.cycles_per_group_row
        elif isinstance(node, PhysSort):
            import math

            n = max(2.0, node.child.est_rows)
            cycles += n * math.log2(n) * profile.cycles_per_sort_row
        elif isinstance(node, PhysProject):
            cycles += node.child.est_rows * profile.cycles_per_arith
        elif isinstance(node, PhysLimit):
            pass
        return cycles, disk_s

    def _spill_seconds(self, build_rows: float, probe_rows: float) -> float:
        """Hybrid hash-join spill time, estimated from row counts."""
        if self.profile.storage != "disk":
            return 0.0
        row_bytes = 48.0  # planning-time width guess
        build_bytes = build_rows * row_bytes
        if build_bytes <= self.profile.work_mem_bytes:
            return 0.0
        overflow = 1.0 - self.profile.work_mem_bytes / build_bytes
        volume = (build_bytes + probe_rows * row_bytes) * overflow
        # written then read back
        return 2.0 * volume / self.sut.disk.spec.seq_rate_bps


def rank_plans(
    plans: list[PhysNode],
    coster: PlanCoster,
    weights: CostWeights,
) -> list[tuple[PhysNode, CostEstimate]]:
    """Order candidate plans by the weighted objective (best first)."""
    scored = [(plan, coster.cost(plan)) for plan in plans]
    scored.sort(
        key=lambda item: item[1].weighted(weights.w_time, weights.w_energy)
    )
    return scored
