"""Binding and logical analysis of a parsed SELECT.

The binder resolves table references, expands ``*``, qualifies every
column reference with its table binding, and classifies WHERE conjuncts
into per-table predicates, equi-join predicates, and residual
predicates.  The optimizer consumes the resulting :class:`BoundQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.catalog import Catalog
from repro.db.errors import PlanError
from repro.db.sql import ast


@dataclass(frozen=True)
class EquiJoin:
    """An equality predicate joining two bindings."""

    left: ast.ColumnRef   # qualified
    right: ast.ColumnRef  # qualified

    @property
    def bindings(self) -> frozenset[str]:
        return frozenset({self.left.table, self.right.table})

    def key_for(self, binding: str) -> ast.ColumnRef:
        if self.left.table == binding:
            return self.left
        if self.right.table == binding:
            return self.right
        raise PlanError(f"join {self} does not touch binding {binding!r}")

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} = {self.right.to_sql()}"


@dataclass
class BoundQuery:
    """A SELECT after binding/qualification."""

    select: ast.Select
    bindings: dict[str, str]  # binding -> table name
    items: list[ast.SelectItem]
    table_predicates: dict[str, list[ast.Expr]] = field(default_factory=dict)
    join_predicates: list[EquiJoin] = field(default_factory=list)
    residual_predicates: list[ast.Expr] = field(default_factory=list)
    group_by: list[ast.Expr] = field(default_factory=list)
    having: ast.Expr | None = None
    order_by: list[ast.OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

    @property
    def binding_order(self) -> list[str]:
        return [t.binding for t in self.select.tables]

    @property
    def has_aggregates(self) -> bool:
        if self.group_by:
            return True
        return any(_contains_aggregate(item.expr) for item in self.items)


def bind(select: ast.Select, catalog: Catalog) -> BoundQuery:
    """Resolve and classify a parsed SELECT against the catalog."""
    bindings: dict[str, str] = {}
    for ref in select.tables:
        if ref.binding in bindings:
            raise PlanError(f"duplicate table binding {ref.binding!r}")
        if not catalog.has_table(ref.name):
            raise PlanError(f"no table {ref.name!r}")
        bindings[ref.binding] = ref.name

    resolver = _Resolver(bindings, catalog)
    items = _expand_star(select.items, bindings, catalog)
    items = [
        ast.SelectItem(resolver.qualify(item.expr), item.alias)
        for item in items
    ]
    where = resolver.qualify(select.where) if select.where else None
    group_by = [resolver.qualify(e) for e in select.group_by]
    having = resolver.qualify(select.having) if select.having else None
    order_by = [
        ast.OrderItem(resolver.qualify_order(o.expr, items), o.descending)
        for o in select.order_by
    ]

    bound = BoundQuery(
        select=select,
        bindings=bindings,
        items=items,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=select.limit,
        distinct=select.distinct,
        table_predicates={b: [] for b in bindings},
    )
    for conjunct in ast.conjuncts(where):
        for factored in ast.conjuncts(factor_common_conjuncts(conjunct)):
            _classify(factored, bound)
    return bound


def _classify(pred: ast.Expr, bound: BoundQuery) -> None:
    refs = ast.column_refs(pred)
    touched = {r.table for r in refs}
    if len(touched) == 1:
        bound.table_predicates[touched.pop()].append(pred)
        return
    if (
        isinstance(pred, ast.Comparison)
        and pred.op == "="
        and isinstance(pred.left, ast.ColumnRef)
        and isinstance(pred.right, ast.ColumnRef)
        and pred.left.table != pred.right.table
    ):
        bound.join_predicates.append(EquiJoin(pred.left, pred.right))
        return
    bound.residual_predicates.append(pred)


def _expand_star(items: tuple[ast.SelectItem, ...],
                 bindings: dict[str, str],
                 catalog: Catalog) -> list[ast.SelectItem]:
    out: list[ast.SelectItem] = []
    for item in items:
        expr = item.expr
        if isinstance(expr, ast.ColumnRef) and expr.name == "*":
            targets = [expr.table] if expr.table else list(bindings)
            for binding in targets:
                if binding not in bindings:
                    raise PlanError(f"unknown binding {binding!r} in *")
                schema = catalog.schema(bindings[binding])
                for name in schema.column_names:
                    out.append(
                        ast.SelectItem(ast.ColumnRef(name, binding), None)
                    )
        else:
            out.append(item)
    return out


class _Resolver:
    def __init__(self, bindings: dict[str, str], catalog: Catalog):
        self.bindings = bindings
        self.catalog = catalog

    def _owner(self, ref: ast.ColumnRef) -> str:
        if ref.table is not None:
            if ref.table not in self.bindings:
                raise PlanError(f"unknown table binding {ref.table!r}")
            schema = self.catalog.schema(self.bindings[ref.table])
            if not schema.has_column(ref.name):
                raise PlanError(
                    f"no column {ref.name!r} in {ref.table!r}"
                )
            return ref.table
        owners = [
            b for b, t in self.bindings.items()
            if self.catalog.schema(t).has_column(ref.name)
        ]
        if not owners:
            raise PlanError(f"unknown column {ref.name!r}")
        if len(owners) > 1:
            raise PlanError(
                f"ambiguous column {ref.name!r} across {sorted(owners)}"
            )
        return owners[0]

    def qualify(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.ColumnRef):
            return ast.ColumnRef(expr.name, self._owner(expr))
        if isinstance(expr, ast.Comparison):
            return ast.Comparison(
                expr.op, self.qualify(expr.left), self.qualify(expr.right)
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                self.qualify(expr.operand),
                self.qualify(expr.low),
                self.qualify(expr.high),
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                self.qualify(expr.operand),
                tuple(self.qualify(i) for i in expr.items),
            )
        if isinstance(expr, ast.Like):
            return ast.Like(self.qualify(expr.operand), expr.pattern)
        if isinstance(expr, ast.CaseWhen):
            default = (
                self.qualify(expr.default)
                if expr.default is not None else None
            )
            return ast.CaseWhen(
                tuple(
                    (self.qualify(cond), self.qualify(value))
                    for cond, value in expr.whens
                ),
                default,
            )
        if isinstance(expr, ast.And):
            return ast.And(self.qualify(expr.left), self.qualify(expr.right))
        if isinstance(expr, ast.Or):
            return ast.Or(self.qualify(expr.left), self.qualify(expr.right))
        if isinstance(expr, ast.Not):
            return ast.Not(self.qualify(expr.operand))
        if isinstance(expr, ast.Arithmetic):
            return ast.Arithmetic(
                expr.op, self.qualify(expr.left), self.qualify(expr.right)
            )
        if isinstance(expr, ast.Negate):
            return ast.Negate(self.qualify(expr.operand))
        if isinstance(expr, ast.FuncCall):
            arg = self.qualify(expr.arg) if expr.arg is not None else None
            return ast.FuncCall(expr.name, arg, expr.distinct)
        return expr  # literals

    def qualify_order(self, expr: ast.Expr,
                      items: list[ast.SelectItem]) -> ast.Expr:
        """ORDER BY may reference a select alias; leave those unqualified."""
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            aliases = {
                item.output_name(i) for i, item in enumerate(items)
            }
            if expr.name in aliases:
                return expr
        return self.qualify(expr)


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            return True
        return expr.arg is not None and _contains_aggregate(expr.arg)
    if isinstance(expr, (ast.And, ast.Or, ast.Arithmetic, ast.Comparison)):
        return _contains_aggregate(expr.left) or _contains_aggregate(
            expr.right
        )
    if isinstance(expr, (ast.Not, ast.Negate)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Between):
        return any(
            _contains_aggregate(e)
            for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.operand) or any(
            _contains_aggregate(i) for i in expr.items
        )
    if isinstance(expr, ast.CaseWhen):
        parts = [
            piece for cond, value in expr.whens
            for piece in (cond, value)
        ]
        if expr.default is not None:
            parts.append(expr.default)
        return any(_contains_aggregate(p) for p in parts)
    return False


def factor_common_conjuncts(expr: ast.Expr) -> ast.Expr:
    """Rewrite ``(A AND X) OR (A AND Y)`` into ``A AND (X OR Y)``.

    TPC-H Q19's WHERE clause is a disjunction whose every branch repeats
    the join predicate; without this factoring the planner would see no
    usable equi-join.  Conjuncts present in *every* disjunct are hoisted
    above the OR (a semantics-preserving distributivity rewrite).
    """
    disjuncts = ast.disjuncts(expr)
    if len(disjuncts) < 2:
        return expr
    conjunct_sets = [set(ast.conjuncts(d)) for d in disjuncts]
    common = set.intersection(*conjunct_sets)
    if not common:
        return expr
    # Preserve source order of the common factors.
    ordered_common = [
        c for c in ast.conjuncts(disjuncts[0]) if c in common
    ]
    residuals = []
    for disjunct in disjuncts:
        rest = [c for c in ast.conjuncts(disjunct) if c not in common]
        residuals.append(ast.and_all(rest))
    out = ast.and_all(ordered_common)
    if all(r is not None for r in residuals):
        out = ast.And(out, ast.or_all(residuals))
    return out
