"""Cardinality and time/energy cost estimation.

Cardinality estimation is classical (uniformity + independence), feeding
the greedy join-order search.  On top of it sits the *energy-aware* cost
model the paper calls for ("considering energy consumption as a
first-class metric ... when planning queries"): each plan gets an
estimated (time, energy) pair from the engine profile's cycle constants
and the system's busy/idle powers, and plans are ranked by
``w_time * time + w_energy * energy``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.catalog import Catalog, TableStats
from repro.db.sql import ast
from repro.db.types import date_to_days

DEFAULT_SELECTIVITY = 1.0 / 3.0


def _literal_value(expr: ast.Expr) -> float | None:
    if isinstance(expr, ast.Literal) and not isinstance(expr.value, str):
        return float(expr.value)
    if isinstance(expr, ast.DateLiteral):
        return float(date_to_days(expr.iso))
    if isinstance(expr, ast.Negate):
        inner = _literal_value(expr.operand)
        return None if inner is None else -inner
    return None


def estimate_selectivity(pred: ast.Expr, stats: TableStats) -> float:
    """Fraction of rows passing ``pred`` (single-table predicate)."""
    if isinstance(pred, ast.And):
        return (
            estimate_selectivity(pred.left, stats)
            * estimate_selectivity(pred.right, stats)
        )
    if isinstance(pred, ast.Or):
        s1 = estimate_selectivity(pred.left, stats)
        s2 = estimate_selectivity(pred.right, stats)
        return min(1.0, s1 + s2 - s1 * s2)
    if isinstance(pred, ast.Not):
        return 1.0 - estimate_selectivity(pred.operand, stats)
    if isinstance(pred, ast.Comparison):
        return _comparison_selectivity(pred, stats)
    if isinstance(pred, ast.Between):
        if isinstance(pred.operand, ast.ColumnRef):
            col = stats.columns.get(pred.operand.name)
            low = _literal_value(pred.low)
            high = _literal_value(pred.high)
            if col is not None:
                return col.selectivity_range(low, high)
        return DEFAULT_SELECTIVITY
    if isinstance(pred, ast.InList):
        if isinstance(pred.operand, ast.ColumnRef):
            col = stats.columns.get(pred.operand.name)
            if col is not None:
                return min(1.0, len(pred.items) * col.selectivity_eq())
        return DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(pred: ast.Comparison,
                            stats: TableStats) -> float:
    column = None
    literal = None
    flipped = False
    if isinstance(pred.left, ast.ColumnRef):
        column = stats.columns.get(pred.left.name)
        literal = _literal_value(pred.right)
    elif isinstance(pred.right, ast.ColumnRef):
        column = stats.columns.get(pred.right.name)
        literal = _literal_value(pred.left)
        flipped = True
    if column is None:
        return DEFAULT_SELECTIVITY
    if pred.op == "=":
        return column.selectivity_eq()
    if pred.op == "<>":
        return 1.0 - column.selectivity_eq()
    if literal is None:
        return DEFAULT_SELECTIVITY
    op = pred.op
    if flipped:
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    if op in ("<", "<="):
        return column.selectivity_range(None, literal)
    return column.selectivity_range(literal, None)


def estimate_join_rows(left_rows: float, right_rows: float,
                       left_distinct: int, right_distinct: int) -> float:
    """Classic equi-join estimate: |L||R| / max(V(L,k), V(R,k))."""
    denom = max(1, left_distinct, right_distinct)
    return left_rows * right_rows / denom


def column_distinct(catalog: Catalog, table: str, column: str) -> int:
    stats = catalog.stats(table)
    col = stats.columns.get(column)
    return col.distinct if col is not None else max(1, stats.row_count)


# --------------------------------------------------------------------------
# Time/energy plan costing (the energy-aware optimizer extension).
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CostEstimate:
    """Estimated resources for a plan (or sub-plan)."""

    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        return self.time_s * self.energy_j

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            self.time_s + other.time_s, self.energy_j + other.energy_j
        )

    def weighted(self, w_time: float, w_energy: float) -> float:
        return w_time * self.time_s + w_energy * self.energy_j


@dataclass(frozen=True)
class CostWeights:
    """Objective weights: pure-time (classic), pure-energy, or blended."""

    w_time: float = 1.0
    w_energy: float = 0.0

    def __post_init__(self) -> None:
        if self.w_time < 0 or self.w_energy < 0:
            raise ValueError("weights must be non-negative")
        if self.w_time == 0 and self.w_energy == 0:
            raise ValueError("at least one weight must be positive")


TIME_OPTIMAL = CostWeights(1.0, 0.0)
ENERGY_OPTIMAL = CostWeights(0.0, 1.0)
EDP_BALANCED = CostWeights(0.5, 0.5)
