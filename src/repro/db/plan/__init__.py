"""Planning: binding, cost estimation, optimizer, physical plans."""
