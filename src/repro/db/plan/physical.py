"""Physical plan nodes.

A physical plan is a tree of dataclass nodes; :mod:`repro.db.exec.operators`
interprets it.  ``est_rows`` carries the optimizer's cardinality estimate
for costing and EXPLAIN output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.sql import ast


class PhysNode:
    """Base class for physical plan nodes."""

    est_rows: float

    def children(self) -> list["PhysNode"]:
        return []

    def describe(self) -> str:
        raise NotImplementedError


@dataclass
class PhysScan(PhysNode):
    table_name: str
    binding: str
    predicate: ast.Expr | None
    est_rows: float = 0.0
    #: column pruning: only these columns survive into the pipeline
    #: (None = all).  Page I/O is unaffected -- a row store reads whole
    #: pages -- but CPU-side batch width and spill volume shrink.
    columns: frozenset[str] | None = None

    def describe(self) -> str:
        pred = f" filter: {self.predicate.to_sql()}" if self.predicate else ""
        name = self.table_name
        if self.binding != self.table_name:
            name = f"{self.table_name} as {self.binding}"
        return f"SeqScan({name}){pred}"


@dataclass
class PhysHashJoin(PhysNode):
    build: PhysNode
    probe: PhysNode
    build_key: ast.ColumnRef
    probe_key: ast.ColumnRef
    #: extra equality predicates applicable once both sides are joined
    post_predicates: list[ast.Expr] = field(default_factory=list)
    est_rows: float = 0.0

    def children(self) -> list[PhysNode]:
        return [self.build, self.probe]

    def describe(self) -> str:
        extra = ""
        if self.post_predicates:
            extra = " and " + " and ".join(
                p.to_sql() for p in self.post_predicates
            )
        return (
            f"HashJoin({self.build_key.to_sql()} = "
            f"{self.probe_key.to_sql()}{extra})"
        )


@dataclass
class PhysFilter(PhysNode):
    child: PhysNode
    predicate: ast.Expr
    est_rows: float = 0.0

    def children(self) -> list[PhysNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate computation: func over an argument expression."""

    func: str                 # sum/count/avg/min/max
    arg: ast.Expr | None      # None for COUNT(*)
    output: str               # internal column name (__agg{i})
    distinct: bool = False    # COUNT(DISTINCT arg)


@dataclass
class PhysAggregate(PhysNode):
    child: PhysNode
    group_exprs: list[ast.Expr]        # keyed as __grp{i}
    aggregates: list[AggregateSpec]
    est_rows: float = 0.0

    def children(self) -> list[PhysNode]:
        return [self.child]

    def describe(self) -> str:
        groups = ", ".join(e.to_sql() for e in self.group_exprs) or "<all>"
        aggs = ", ".join(
            f"{a.func.upper()}({'*' if a.arg is None else a.arg.to_sql()})"
            for a in self.aggregates
        )
        return f"Aggregate(group by {groups}; {aggs})"


@dataclass
class PhysProject(PhysNode):
    child: PhysNode
    items: list[ast.SelectItem]
    #: when projecting over an aggregate, expressions have had their
    #: aggregate/group sub-terms replaced by __agg{i}/__grp{i} refs.
    est_rows: float = 0.0

    def children(self) -> list[PhysNode]:
        return [self.child]

    def describe(self) -> str:
        return "Project(" + ", ".join(i.to_sql() for i in self.items) + ")"


@dataclass
class PhysDistinct(PhysNode):
    child: PhysNode
    est_rows: float = 0.0

    def children(self) -> list[PhysNode]:
        return [self.child]

    def describe(self) -> str:
        return "Distinct"


@dataclass
class PhysSort(PhysNode):
    child: PhysNode
    keys: list[ast.OrderItem]
    est_rows: float = 0.0

    def children(self) -> list[PhysNode]:
        return [self.child]

    def describe(self) -> str:
        return "Sort(" + ", ".join(k.to_sql() for k in self.keys) + ")"


@dataclass
class PhysLimit(PhysNode):
    child: PhysNode
    limit: int
    est_rows: float = 0.0

    def children(self) -> list[PhysNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.limit})"


def format_plan(node: PhysNode, indent: int = 0) -> str:
    """Pretty-print a plan tree (EXPLAIN output)."""
    line = "  " * indent + f"{node.describe()}  [rows~{node.est_rows:.0f}]"
    lines = [line]
    for child in node.children():
        lines.append(format_plan(child, indent + 1))
    return "\n".join(lines)
