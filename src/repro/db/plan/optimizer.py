"""Query optimizer: predicate pushdown, greedy join ordering, rewrites.

The optimizer turns a :class:`~repro.db.plan.logical.BoundQuery` into a
physical plan:

1. single-table predicates are pushed into their scans;
2. join order is chosen greedily over the equi-join graph, smallest
   estimated intermediate result first, with the smaller input as the
   hash-join build side;
3. join predicates made redundant by earlier joins become post-join
   filters;
4. aggregates/group-bys are rewritten into an Aggregate + Project pair;
5. DISTINCT, ORDER BY, LIMIT are layered on top.
"""

from __future__ import annotations

from repro.db.catalog import Catalog
from repro.db.errors import PlanError
from repro.db.plan import cost as cost_mod
from repro.db.plan.logical import BoundQuery, EquiJoin, bind
from repro.db.plan.physical import (
    AggregateSpec,
    PhysAggregate,
    PhysDistinct,
    PhysFilter,
    PhysHashJoin,
    PhysLimit,
    PhysNode,
    PhysProject,
    PhysScan,
    PhysSort,
)
from repro.db.sql import ast


def plan_query(select: ast.Select, catalog: Catalog) -> PhysNode:
    """Plan a parsed SELECT into an executable physical tree."""
    bound = bind(select, catalog)
    node = _plan_joins(bound, catalog)
    for pred in bound.residual_predicates:
        node = PhysFilter(node, pred, est_rows=node.est_rows / 3.0)
    post_sort_keys = _resolve_order_keys(bound)
    if bound.order_by and post_sort_keys is None:
        # Sort keys are not part of the output: sort the qualified rows
        # before projecting (only possible without aggregation).
        if bound.has_aggregates:
            raise PlanError(
                "ORDER BY over aggregates must reference output columns"
            )
        node = PhysSort(node, list(bound.order_by), est_rows=node.est_rows)
    node = _plan_projection(bound, node)
    if bound.distinct:
        node = PhysDistinct(node, est_rows=node.est_rows)
    if post_sort_keys:
        node = PhysSort(node, post_sort_keys, est_rows=node.est_rows)
    if bound.limit is not None:
        node = PhysLimit(node, bound.limit,
                         est_rows=min(node.est_rows, bound.limit))
    return node


def _resolve_order_keys(bound: BoundQuery) -> list[ast.OrderItem] | None:
    """Rewrite ORDER BY keys to bare output-column names if possible.

    Returns None when any key is not derivable from the select list, in
    which case the sort must run before the projection.
    """
    if not bound.order_by:
        return []
    output_names: dict = {}
    for i, item in enumerate(bound.items):
        output_names[item.output_name(i)] = item.output_name(i)
    by_expr = {
        item.expr: item.output_name(i)
        for i, item in enumerate(bound.items)
    }
    resolved: list[ast.OrderItem] = []
    for key in bound.order_by:
        expr = key.expr
        if expr in by_expr:
            resolved.append(
                ast.OrderItem(ast.ColumnRef(by_expr[expr]), key.descending)
            )
            continue
        if (
            isinstance(expr, ast.ColumnRef)
            and expr.table is None
            and expr.name in output_names
        ):
            resolved.append(key)
            continue
        return None
    return resolved


# --------------------------------------------------------------------------
# Scans and joins.
# --------------------------------------------------------------------------

def _needed_columns(bound: BoundQuery) -> dict[str, frozenset[str]]:
    """Per-binding column sets referenced anywhere in the query."""
    needed: dict[str, set[str]] = {b: set() for b in bound.bindings}

    def absorb(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        for ref in ast.column_refs(expr):
            if ref.table in needed:
                needed[ref.table].add(ref.name)

    for item in bound.items:
        absorb(item.expr)
    for preds in bound.table_predicates.values():
        for pred in preds:
            absorb(pred)
    for join in bound.join_predicates:
        needed[join.left.table].add(join.left.name)
        needed[join.right.table].add(join.right.name)
    for pred in bound.residual_predicates:
        absorb(pred)
    for expr in bound.group_by:
        absorb(expr)
    absorb(bound.having)
    for key in bound.order_by:
        absorb(key.expr)
    return {b: frozenset(cols) for b, cols in needed.items()}


def _make_scan(bound: BoundQuery, catalog: Catalog, binding: str,
               columns: frozenset[str]) -> PhysScan:
    table_name = bound.bindings[binding]
    stats = catalog.stats(table_name)
    preds = bound.table_predicates.get(binding, [])
    predicate = ast.and_all(preds)
    selectivity = 1.0
    for pred in preds:
        selectivity *= cost_mod.estimate_selectivity(pred, stats)
    return PhysScan(
        table_name=table_name,
        binding=binding,
        predicate=predicate,
        est_rows=max(1.0, stats.row_count * selectivity),
        columns=columns,
    )


def _plan_joins(bound: BoundQuery, catalog: Catalog) -> PhysNode:
    needed = _needed_columns(bound)
    scans = {
        binding: _make_scan(bound, catalog, binding, needed[binding])
        for binding in bound.binding_order
    }
    if len(scans) == 1:
        return next(iter(scans.values()))

    remaining_preds = list(bound.join_predicates)
    joined: set[str] = set()
    # Seed with the smallest scan that participates in a join predicate
    # (or just the smallest scan if the graph is empty -- an error later).
    if not remaining_preds:
        raise PlanError(
            "cross joins are not supported: no equi-join predicates found"
        )
    seed = min(scans, key=lambda b: scans[b].est_rows)
    current: PhysNode = scans[seed]
    joined.add(seed)
    pending = [b for b in bound.binding_order if b != seed]

    while pending:
        choice = _best_join(bound, catalog, scans, joined, pending,
                            remaining_preds, current)
        if choice is None:
            raise PlanError(
                "query's join graph is disconnected (cross join needed)"
            )
        binding, join_pred = choice
        new_scan = scans[binding]
        build, probe, build_key, probe_key = _orient(
            current, new_scan, join_pred, binding
        )
        est = _join_estimate(catalog, bound, current, new_scan, join_pred)
        joined.add(binding)
        pending.remove(binding)
        remaining_preds.remove(join_pred)
        # Predicates now fully covered become post-join filters.
        post: list[ast.Expr] = []
        for pred in list(remaining_preds):
            if all(
                t in joined
                for t in (pred.left.table, pred.right.table)
            ):
                post.append(
                    ast.Comparison("=", pred.left, pred.right)
                )
                remaining_preds.remove(pred)
                est *= _post_pred_selectivity(catalog, bound, pred)
        current = PhysHashJoin(
            build=build,
            probe=probe,
            build_key=build_key,
            probe_key=probe_key,
            post_predicates=post,
            est_rows=max(1.0, est),
        )
    return current


def _best_join(
    bound: BoundQuery,
    catalog: Catalog,
    scans: dict[str, PhysScan],
    joined: set[str],
    pending: list[str],
    remaining_preds: list[EquiJoin],
    current: PhysNode,
) -> tuple[str, EquiJoin] | None:
    """Pick the (new binding, predicate) minimizing estimated output."""
    best: tuple[float, str, EquiJoin] | None = None
    for pred in remaining_preds:
        sides = pred.bindings
        inside = sides & joined
        outside = sides - joined
        if len(inside) != 1 or len(outside) != 1:
            continue
        binding = next(iter(outside))
        if binding not in pending:
            continue
        est = _join_estimate(catalog, bound, current, scans[binding], pred)
        key = (est, binding, pred)
        if best is None or est < best[0]:
            best = key
    if best is None:
        return None
    return best[1], best[2]


def _orient(
    current: PhysNode,
    new_scan: PhysScan,
    pred: EquiJoin,
    new_binding: str,
) -> tuple[PhysNode, PhysNode, ast.ColumnRef, ast.ColumnRef]:
    """Choose build/probe sides: build on the smaller input."""
    new_key = pred.key_for(new_binding)
    other = pred.left if pred.right is new_key else pred.right
    if new_key is pred.left:
        other = pred.right
    if new_scan.est_rows <= current.est_rows:
        return new_scan, current, new_key, other
    return current, new_scan, other, new_key


def _join_estimate(catalog: Catalog, bound: BoundQuery,
                   left: PhysNode, right: PhysScan,
                   pred: EquiJoin) -> float:
    l_key = pred.left
    r_key = pred.right
    l_distinct = cost_mod.column_distinct(
        catalog, bound.bindings[l_key.table], l_key.name
    )
    r_distinct = cost_mod.column_distinct(
        catalog, bound.bindings[r_key.table], r_key.name
    )
    return cost_mod.estimate_join_rows(
        left.est_rows, right.est_rows, l_distinct, r_distinct
    )


def _post_pred_selectivity(catalog: Catalog, bound: BoundQuery,
                           pred: EquiJoin) -> float:
    distinct = max(
        cost_mod.column_distinct(
            catalog, bound.bindings[pred.left.table], pred.left.name
        ),
        cost_mod.column_distinct(
            catalog, bound.bindings[pred.right.table], pred.right.name
        ),
    )
    return 1.0 / max(1, distinct)


# --------------------------------------------------------------------------
# Aggregation / projection rewrite.
# --------------------------------------------------------------------------

def _plan_projection(bound: BoundQuery, node: PhysNode) -> PhysNode:
    if not bound.has_aggregates:
        project = PhysProject(node, list(bound.items),
                              est_rows=node.est_rows)
        return project

    group_exprs = list(bound.group_by)
    aggregates: list[AggregateSpec] = []

    def register(func: str, arg: ast.Expr | None,
                 distinct: bool = False) -> str:
        for spec in aggregates:
            if (spec.func == func and spec.arg == arg
                    and spec.distinct == distinct):
                return spec.output
        name = f"__agg{len(aggregates)}"
        aggregates.append(AggregateSpec(func, arg, name, distinct))
        return name

    def rewrite(expr: ast.Expr) -> ast.Expr:
        for j, group in enumerate(group_exprs):
            if expr == group:
                return ast.ColumnRef(f"__grp{j}")
        if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
            return ast.ColumnRef(
                register(expr.name, expr.arg, expr.distinct)
            )
        if isinstance(expr, ast.Arithmetic):
            return ast.Arithmetic(
                expr.op, rewrite(expr.left), rewrite(expr.right)
            )
        if isinstance(expr, ast.Negate):
            return ast.Negate(rewrite(expr.operand))
        if isinstance(expr, ast.Comparison):
            return ast.Comparison(
                expr.op, rewrite(expr.left), rewrite(expr.right)
            )
        if isinstance(expr, ast.And):
            return ast.And(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, ast.Or):
            return ast.Or(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, ast.Not):
            return ast.Not(rewrite(expr.operand))
        if isinstance(expr, ast.CaseWhen):
            default = (
                rewrite(expr.default) if expr.default is not None
                else None
            )
            return ast.CaseWhen(
                tuple(
                    (rewrite(cond), rewrite(value))
                    for cond, value in expr.whens
                ),
                default,
            )
        if isinstance(expr, ast.ColumnRef) and expr.table is not None:
            raise PlanError(
                f"column {expr.to_sql()} must appear in GROUP BY or "
                "inside an aggregate"
            )
        return expr

    items = [
        ast.SelectItem(rewrite(item.expr), item.output_name(i))
        for i, item in enumerate(bound.items)
    ]
    est_groups = max(1.0, min(node.est_rows, node.est_rows ** 0.5)) \
        if group_exprs else 1.0
    agg = PhysAggregate(node, group_exprs, aggregates, est_rows=est_groups)
    out: PhysNode = agg
    if bound.having is not None:
        out = PhysFilter(out, rewrite(bound.having),
                         est_rows=max(1.0, est_groups / 3.0))
    return PhysProject(out, items, est_rows=out.est_rows)
