"""Engine profiles: the two DBMSs the paper measures.

A profile bundles the storage engine choice with per-operation CPU cycle
costs -- the knobs that turn execution counters into simulated work.

* :func:`commercial_profile` models the commercial DBMS: disk-based row
  store with a buffer pool, a leaner executor (lower per-row costs), and
  hash joins/sorts that spill temp runs when their inputs exceed
  ``work_mem``.  Spill traffic is what keeps the disk busy on *warm*
  runs (paper Sec. 3.5 observes exactly that), producing the ~60/40
  CPU/disk wall-time split behind the commercial workload's +3% PVC
  time penalty.
* :func:`mysql_profile` models MySQL 5.1 with the MEMORY storage engine
  ("to stress the CPU"): no disk at all, heavier per-row interpretation
  costs.  Runs are fully CPU-bound, giving the 1/(1-u) PVC time scaling.

Cycle constants are calibrated so a ten-query TPC-H Q5 workload at the
paper's scale factors lands on the paper's absolute magnitudes (48.5 s /
1228.7 J for the commercial stock run).  ``work_mem`` and the buffer
pool scale with the data (pass ``scale_factor``) so the *fractions* --
and therefore every ratio the paper reports -- are scale-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.system import CPU_BOUND, IO_MIXED


@dataclass(frozen=True)
class EngineProfile:
    """Cost/configuration profile of a DBMS engine."""

    name: str
    storage: str                 # 'memory' or 'disk'
    workload_class: str          # hardware voltage-table selector
    cycles_per_row_scan: float
    cycles_per_comparison: float
    cycles_per_arith: float
    cycles_per_hash_build: float
    cycles_per_hash_probe: float
    cycles_per_sort_row: float
    cycles_per_group_row: float
    cycles_per_output_row: float
    query_overhead_cycles: float
    work_mem_bytes: int
    buffer_pool_bytes: int
    #: frequency-invariant stall time (lock/latch/sync waits, non-
    #: overlapped prefetch) per row flowing through the executor.  This
    #: is the non-scalable wall-time share behind the commercial
    #: workload's +3% (not +5%) PVC time penalty.
    stall_ns_per_row: float = 0.0
    #: temp/log write volume per row processed (warm-run disk activity
    #: the paper observes in Sec. 3.5).
    temp_write_bytes_per_row: float = 0.0

    def scaled_memory(self, scale_factor: float) -> "EngineProfile":
        """Scale memory limits with the data size (ratio invariance)."""
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        return replace(
            self,
            work_mem_bytes=max(1, int(self.work_mem_bytes * scale_factor)),
            buffer_pool_bytes=max(
                1, int(self.buffer_pool_bytes * scale_factor)
            ),
        )


def commercial_profile(scale_factor: float = 1.0) -> EngineProfile:
    """The commercial DBMS: disk row store, leaner executor, spills."""
    base = EngineProfile(
        name="commercial",
        storage="disk",
        workload_class=IO_MIXED,
        cycles_per_row_scan=519.0,
        cycles_per_comparison=126.0,
        cycles_per_arith=81.0,
        cycles_per_hash_build=587.0,
        cycles_per_hash_probe=451.0,
        cycles_per_sort_row=181.0,
        cycles_per_group_row=415.0,
        cycles_per_output_row=813.0,
        query_overhead_cycles=9e6,
        work_mem_bytes=192 * 1024 * 1024,        # at SF 1.0
        buffer_pool_bytes=1536 * 1024 * 1024,    # holds the SF 1.0 database
        stall_ns_per_row=90.0,
        temp_write_bytes_per_row=2.2,
    )
    return base.scaled_memory(scale_factor)


def mysql_profile(scale_factor: float = 1.0) -> EngineProfile:
    """MySQL 5.1 with the MEMORY engine: CPU-bound interpretation."""
    base = EngineProfile(
        name="mysql",
        storage="memory",
        workload_class=CPU_BOUND,
        cycles_per_row_scan=920.0,
        cycles_per_comparison=800.0,
        cycles_per_arith=150.0,
        cycles_per_hash_build=1000.0,
        cycles_per_hash_probe=800.0,
        cycles_per_sort_row=300.0,
        cycles_per_group_row=700.0,
        cycles_per_output_row=1450.0,
        query_overhead_cycles=2e7,
        work_mem_bytes=64 * 1024 * 1024,
        buffer_pool_bytes=0,
    )
    # Memory limits are irrelevant for the memory engine, but keep the
    # scaling hook uniform for callers.
    return base.scaled_memory(scale_factor) if scale_factor != 1.0 else base


PROFILES = {
    "commercial": commercial_profile,
    "mysql": mysql_profile,
}


def profile_by_name(name: str, scale_factor: float = 1.0) -> EngineProfile:
    try:
        factory = PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine profile {name!r}; options: {sorted(PROFILES)}"
        ) from None
    return factory(scale_factor)
