"""The :class:`Database` facade: tables in, SQL in, results + traces out.

A database is configured with an :class:`~repro.db.profiles.EngineProfile`
(commercial disk engine or MySQL memory engine).  ``execute`` runs a
query for real -- parse, bind, optimize, execute over numpy columns --
and returns a :class:`QueryResult` whose counters feed
:func:`repro.db.cost_model.build_trace` to produce the hardware work
trace for the energy simulation.
"""

from __future__ import annotations

from repro.db.catalog import Catalog
from repro.db.cost_model import build_trace, server_cycles
from repro.db.errors import PlanError
from repro.db.exec.executor import run_plan
from repro.db.plan.optimizer import plan_query
from repro.db.plan.physical import PhysNode, format_plan
from repro.db.profiles import EngineProfile, mysql_profile
from repro.db.results import QueryResult
from repro.db.schema import Table, TableSchema
from repro.db.sql import ast
from repro.db.sql.parser import parse
from repro.db.storage.buffer import BufferPool
from repro.db.storage.engines import DiskEngine, MemoryEngine, StorageEngine
from repro.hardware.trace import Trace


class Database:
    """An embedded database instance over one storage engine.

    Repeated queries hit a *plan cache* (prepared statements): plans are
    keyed by SQL text plus a catalog/storage *generation* counter, so a
    workload of identical statements parses and plans once.  Any event
    that could change what a statement means or what work it performs
    bumps the generation: ``create_table``/``register_table``/
    ``drop_table`` (catalog change), ``warm``/``cool`` (explicit
    buffer-pool change), and -- on the disk engine -- any execution
    that itself changes the set of pool-resident pages (the
    :class:`~repro.db.storage.buffer.BufferPool` content version folds
    into the counter).  The generation invalidates both this cache and
    any downstream cached execution traces keyed on the same counter,
    so trace caches converge to steady-state (warm) executions rather
    than replaying a stale cold trace.
    """

    def __init__(self, profile: EngineProfile | None = None):
        self.profile = profile if profile is not None else mysql_profile()
        self.catalog = Catalog()
        self.storage: StorageEngine
        if self.profile.storage == "disk":
            self.buffer_pool = BufferPool(self.profile.buffer_pool_bytes)
            self.storage = DiskEngine(self.buffer_pool)
        elif self.profile.storage == "memory":
            self.buffer_pool = None
            self.storage = MemoryEngine()
        else:
            raise PlanError(
                f"unknown storage engine {self.profile.storage!r}"
            )
        self._generation = 0
        self._plan_cache: dict[str, tuple[int, PhysNode]] = {}
        #: disabled by perf baselines that model the cache-free pipeline
        self.plan_cache_enabled = True
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: total queries actually executed (not served from any cache)
        self.executions = 0

    # -- cache generation -------------------------------------------------

    @property
    def generation(self) -> int:
        """Catalog/storage state counter; caches keyed on it self-invalidate.

        Both terms are monotone, so the sum changes whenever either the
        catalog or the buffer-pool contents do.
        """
        if self.buffer_pool is not None:
            return self._generation + self.buffer_pool.version
        return self._generation

    def _bump_generation(self) -> None:
        self._generation += 1
        self._plan_cache.clear()

    # -- DDL / loading ---------------------------------------------------

    def create_table(self, schema: TableSchema,
                     data: dict[str, object]) -> Table:
        """Create and load a table from column arrays/sequences."""
        table = Table.from_arrays(schema, data)
        self.catalog.register(table)
        self._bump_generation()
        return table

    def register_table(self, table: Table) -> None:
        self.catalog.register(table)
        self._bump_generation()

    def drop_table(self, name: str) -> None:
        self.catalog.drop(name)
        if self.buffer_pool is not None:
            self.buffer_pool.evict_table(name)
        self._bump_generation()

    # -- buffer management (warm/cold experiments) -----------------------

    def warm(self, *table_names: str) -> None:
        """Preload tables into the buffer pool (no-op on memory engine)."""
        if not isinstance(self.storage, DiskEngine):
            return
        names = table_names or tuple(self.catalog.table_names)
        for name in names:
            self.storage.warm(self.catalog.table(name))
        self._bump_generation()

    def cool(self) -> None:
        """Empty the buffer pool (the paper's reboot before cold runs)."""
        if self.buffer_pool is not None:
            self.buffer_pool.clear()
            self._bump_generation()

    # -- querying ---------------------------------------------------------

    def _to_select(self, query: str | ast.Select) -> ast.Select:
        if isinstance(query, ast.Select):
            return query
        return parse(query)

    def plan(self, query: str | ast.Select) -> PhysNode:
        """Plan a query, serving repeated SQL text from the plan cache."""
        if not isinstance(query, str):
            return plan_query(query, self.catalog)
        if not self.plan_cache_enabled:
            return plan_query(parse(query), self.catalog)
        cached = self._plan_cache.get(query)
        if cached is not None and cached[0] == self.generation:
            self.plan_cache_hits += 1
            return cached[1]
        self.plan_cache_misses += 1
        plan = plan_query(parse(query), self.catalog)
        self._plan_cache[query] = (self.generation, plan)
        return plan

    def explain(self, query: str | ast.Select,
                with_costs: bool = False, sut=None) -> str:
        """Plan tree; with ``with_costs``, append per-node (time, energy)
        estimates from the energy-aware coster."""
        plan = self.plan(query)
        if not with_costs:
            return format_plan(plan)

        from repro.db.plan.costing import PlanCoster
        from repro.hardware.profiles import paper_sut

        coster = PlanCoster(self.profile,
                            sut if sut is not None else paper_sut())

        def annotate(node, indent=0):
            estimate = coster.cost(node, include_overhead=(indent == 0))
            line = (
                "  " * indent
                + f"{node.describe()}  [rows~{node.est_rows:.0f}"
                f"  t~{estimate.time_s:.4f}s  e~{estimate.energy_j:.3f}J]"
            )
            lines = [line]
            for child in node.children():
                lines.extend(annotate(child, indent + 1))
            return lines

        return "\n".join(annotate(plan))

    def execute(self, query: str | ast.Select) -> QueryResult:
        plan = self.plan(query)
        self.executions += 1
        return run_plan(
            plan, self.catalog, self.storage, self.profile.work_mem_bytes
        )

    # -- energy-aware plan costing ------------------------------------------

    def estimate_cost(self, query: str | ast.Select, sut=None):
        """Pre-execution (time, energy) estimate for a query's plan.

        ``sut`` defaults to the calibrated paper machine.  Returns
        ``(plan, CostEstimate)``; rank objectives by calling
        ``estimate.weighted(w_time, w_energy)`` (see
        :class:`repro.db.plan.cost.CostWeights`).
        """
        from repro.db.plan.costing import PlanCoster
        from repro.hardware.profiles import paper_sut

        plan = self.plan(query)
        machine = sut if sut is not None else paper_sut()
        coster = PlanCoster(self.profile, machine)
        return plan, coster.cost(plan)

    # -- energy/time accounting -------------------------------------------

    def trace_for(self, result: QueryResult, label: str = "query") -> Trace:
        """Hardware work trace for an executed query (server side)."""
        return build_trace(self.profile, result.stats, label=label)

    def server_cycles_for(self, result: QueryResult) -> float:
        return server_cycles(self.profile, result.stats)

    @property
    def workload_class(self) -> str:
        """Which calibrated voltage table applies to this engine's runs."""
        return self.profile.workload_class
