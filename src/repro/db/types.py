"""Column data types and value handling.

Columns are numpy-backed:

* ``INT64``/``FLOAT64`` map directly to numpy dtypes.
* ``DATE`` is stored as int32 days since 1970-01-01 (``date_to_days``).
* ``STRING`` is dictionary-encoded: an int32 code array plus a list of
  distinct values, which makes equality predicates and group-bys cheap
  (compare codes) and keeps memory compact for TPC-H's low-cardinality
  string columns (region names, flags).
"""

from __future__ import annotations

import datetime
import enum

import numpy as np

from repro.db.errors import TypeMismatchError

_EPOCH = datetime.date(1970, 1, 1)


class DataType(enum.Enum):
    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"

    @property
    def width_bytes(self) -> int:
        """Approximate on-disk width, used for page-count estimation."""
        return {
            DataType.INT64: 8,
            DataType.FLOAT64: 8,
            DataType.STRING: 16,
            DataType.DATE: 4,
        }[self]


def date_to_days(value: str | datetime.date) -> int:
    """Convert a date (or 'YYYY-MM-DD' string) to days since epoch."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return (value - _EPOCH).days


def days_to_date(days: int) -> datetime.date:
    return _EPOCH + datetime.timedelta(days=int(days))


class Column:
    """A typed column of values.

    For STRING columns, ``data`` holds int32 dictionary codes and
    ``dictionary`` the distinct values (code -> value).  For all other
    types ``data`` holds the values directly.
    """

    __slots__ = ("dtype", "data", "dictionary", "_index")

    def __init__(self, dtype: DataType, data: np.ndarray,
                 dictionary: list[str] | None = None):
        self.dtype = dtype
        self.data = data
        self.dictionary = dictionary
        self._index: dict[str, int] | None = None
        if dtype is DataType.STRING and dictionary is None:
            raise TypeMismatchError("STRING columns need a dictionary")
        if dtype is not DataType.STRING and dictionary is not None:
            raise TypeMismatchError("only STRING columns carry a dictionary")

    # -- constructors --------------------------------------------------

    @classmethod
    def from_values(cls, dtype: DataType, values) -> "Column":
        """Build a column from a plain Python sequence."""
        if dtype is DataType.INT64:
            return cls(dtype, np.asarray(values, dtype=np.int64))
        if dtype is DataType.FLOAT64:
            return cls(dtype, np.asarray(values, dtype=np.float64))
        if dtype is DataType.DATE:
            days = [
                v if isinstance(v, (int, np.integer)) else date_to_days(v)
                for v in values
            ]
            return cls(dtype, np.asarray(days, dtype=np.int32))
        if dtype is DataType.STRING:
            dictionary: list[str] = []
            index: dict[str, int] = {}
            codes = np.empty(len(values), dtype=np.int32)
            for i, v in enumerate(values):
                code = index.get(v)
                if code is None:
                    code = len(dictionary)
                    index[v] = code
                    dictionary.append(v)
                codes[i] = code
            col = cls(dtype, codes, dictionary)
            col._index = index
            return col
        raise TypeMismatchError(f"unsupported dtype {dtype}")

    @classmethod
    def from_codes(cls, codes: np.ndarray,
                   dictionary: list[str]) -> "Column":
        return cls(DataType.STRING, np.asarray(codes, dtype=np.int32),
                   dictionary)

    # -- basics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def take(self, indices: np.ndarray) -> "Column":
        """Select rows by position (shares the dictionary)."""
        col = Column(self.dtype, self.data[indices], self.dictionary)
        col._index = self._index
        return col

    def head(self, n: int) -> "Column":
        """The first ``n`` rows as a contiguous slice (shares the dictionary).

        Copies the ``n`` kept rows (no index array, unlike ``take``) so
        the result owns its memory -- a cached LIMIT result must not pin
        the full pre-limit arrays alive through a numpy view.
        """
        col = Column(self.dtype, self.data[:n].copy(), self.dictionary)
        col._index = self._index
        return col

    def code_for(self, value: str) -> int:
        """Dictionary code for ``value`` (-1 if absent, matching nothing)."""
        if self.dtype is not DataType.STRING:
            raise TypeMismatchError("code_for only applies to STRING columns")
        if self._index is None:
            self._index = {v: i for i, v in enumerate(self.dictionary)}
        return self._index.get(value, -1)

    def values(self) -> np.ndarray:
        """Decoded values (object array for strings, dates as date objects)."""
        if self.dtype is DataType.STRING:
            lookup = np.asarray(self.dictionary, dtype=object)
            return lookup[self.data]
        if self.dtype is DataType.DATE:
            return np.asarray(
                [days_to_date(d) for d in self.data], dtype=object
            )
        return self.data

    def raw(self) -> np.ndarray:
        """The underlying numeric array (codes for strings, days for dates)."""
        return self.data

    @property
    def width_bytes(self) -> int:
        return self.dtype.width_bytes


def literal_to_comparable(column: Column, value) -> float | int:
    """Convert a literal to the column's raw comparison domain."""
    if column.dtype is DataType.STRING:
        if not isinstance(value, str):
            raise TypeMismatchError(
                f"cannot compare STRING column to {type(value).__name__}"
            )
        return column.code_for(value)
    if column.dtype is DataType.DATE:
        if isinstance(value, str):
            return date_to_days(value)
        if isinstance(value, datetime.date):
            return date_to_days(value)
        return int(value)
    if isinstance(value, bool):
        raise TypeMismatchError("boolean literals are not comparable")
    if not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeMismatchError(
            f"cannot compare numeric column to {type(value).__name__}"
        )
    return value
