"""Catalog: registered tables plus per-column statistics.

Statistics (row counts, distinct counts, min/max) feed the optimizer's
cardinality estimation, which drives both join ordering and the
time/energy cost estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.errors import CatalogError
from repro.db.schema import Table, TableSchema
from repro.db.types import DataType


@dataclass(frozen=True)
class ColumnStats:
    distinct: int
    min_value: float | None
    max_value: float | None

    def selectivity_eq(self) -> float:
        """Estimated selectivity of an equality predicate."""
        return 1.0 / max(1, self.distinct)

    def selectivity_range(self, low: float | None, high: float | None
                          ) -> float:
        """Estimated selectivity of a (half-)open range predicate."""
        if self.min_value is None or self.max_value is None:
            return 1.0 / 3.0
        span = self.max_value - self.min_value
        if span <= 0:
            return 1.0
        lo = self.min_value if low is None else max(low, self.min_value)
        hi = self.max_value if high is None else min(high, self.max_value)
        if hi <= lo:
            return 0.0
        return min(1.0, (hi - lo) / span)


@dataclass(frozen=True)
class TableStats:
    row_count: int
    columns: dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(f"no statistics for column {name!r}") from None


def analyze(table: Table) -> TableStats:
    """Collect statistics over a loaded table (full-scan ANALYZE)."""
    col_stats: dict[str, ColumnStats] = {}
    for cdef in table.schema.columns:
        col = table.column(cdef.name)
        raw = col.raw()
        if len(raw) == 0:
            col_stats[cdef.name] = ColumnStats(0, None, None)
            continue
        if cdef.dtype is DataType.STRING:
            distinct = len(col.dictionary or [])
            col_stats[cdef.name] = ColumnStats(distinct, None, None)
        else:
            distinct = int(len(np.unique(raw)))
            col_stats[cdef.name] = ColumnStats(
                distinct, float(raw.min()), float(raw.max())
            )
    return TableStats(table.row_count, col_stats)


class Catalog:
    """Name -> (table, stats) registry."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}

    def register(self, table: Table, collect_stats: bool = True) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        if collect_stats:
            self._stats[table.name] = analyze(table)

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no table {name!r}")
        del self._tables[name]
        self._stats.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def schema(self, name: str) -> TableSchema:
        return self.table(name).schema

    def stats(self, name: str) -> TableStats:
        if name not in self._stats:
            if name in self._tables:
                self._stats[name] = analyze(self._tables[name])
            else:
                raise CatalogError(f"no table {name!r}")
        return self._stats[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def resolve_column(self, column: str,
                       tables: list[str]) -> str:
        """Find which of ``tables`` owns ``column`` (must be unambiguous)."""
        owners = [
            t for t in tables if self.schema(t).has_column(column)
        ]
        if not owners:
            raise CatalogError(
                f"column {column!r} not found in tables {tables}"
            )
        if len(owners) > 1:
            raise CatalogError(
                f"column {column!r} is ambiguous across {owners}"
            )
        return owners[0]
