"""Query results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.exec.stats import ExecutionStats
from repro.db.types import Column, DataType


@dataclass
class QueryResult:
    """Columnar result of one query execution.

    ``stats`` holds the work counters the energy model consumes;
    ``size_bytes`` approximates the wire size the client must fetch.
    """

    names: list[str]
    columns: list[Column]
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    def __post_init__(self) -> None:
        if len(self.names) != len(self.columns):
            raise ValueError("names/columns length mismatch")

    @property
    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def column_count(self) -> int:
        return len(self.columns)

    @property
    def size_bytes(self) -> int:
        width = sum(col.width_bytes for col in self.columns)
        return self.row_count * width

    def column(self, name: str) -> Column:
        try:
            return self.columns[self.names.index(name)]
        except ValueError:
            raise KeyError(f"no result column {name!r}") from None

    def rows(self) -> list[tuple]:
        """Materialize decoded rows (client-side view)."""
        decoded = []
        for col in self.columns:
            if col.dtype is DataType.STRING:
                lookup = col.dictionary or []
                decoded.append([lookup[c] for c in col.data])
            elif col.dtype is DataType.DATE:
                decoded.append(list(col.values()))
            else:
                decoded.append([v.item() for v in col.data])
        return list(zip(*decoded)) if decoded else []

    def scalar(self):
        """The single value of a 1x1 result."""
        if self.row_count != 1 or self.column_count != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{self.row_count}x{self.column_count}"
            )
        return self.rows()[0][0]
