"""Relational engine substrate: SQL, planner, executor, storage."""

from repro.db.engine import Database
from repro.db.errors import (
    CatalogError,
    DatabaseError,
    ExecutionError,
    PlanError,
    SqlSyntaxError,
    TypeMismatchError,
)
from repro.db.profiles import EngineProfile, commercial_profile, mysql_profile
from repro.db.results import QueryResult
from repro.db.schema import ColumnDef, Table, TableSchema
from repro.db.types import Column, DataType

__all__ = [
    "CatalogError",
    "Column",
    "ColumnDef",
    "Database",
    "DatabaseError",
    "DataType",
    "EngineProfile",
    "ExecutionError",
    "PlanError",
    "QueryResult",
    "SqlSyntaxError",
    "Table",
    "TableSchema",
    "TypeMismatchError",
    "commercial_profile",
    "mysql_profile",
]
