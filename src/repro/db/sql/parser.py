"""Recursive-descent SQL parser for the supported SELECT subset.

Grammar (roughly):

    select    := SELECT [DISTINCT] items FROM tables [WHERE expr]
                 [GROUP BY exprs] [HAVING expr]
                 [ORDER BY order_items] [LIMIT n]
    items     := item ("," item)*        item := expr [AS? alias]
    tables    := table ("," table | [INNER] JOIN table ON expr)*
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := additive [cmp additive | BETWEEN a AND b | IN (list)]
    additive  := term (("+"|"-") term)*
    term      := factor (("*"|"/") factor)*
    factor    := "-" factor | primary
    primary   := literal | DATE 'iso' | func "(" expr|"*" ")"
               | column | "(" expr ")"

Explicit JOIN ... ON is normalized into the comma-join + WHERE form the
planner consumes.
"""

from __future__ import annotations

from repro.db.errors import SqlSyntaxError
from repro.db.sql.ast import (
    And,
    Arithmetic,
    Between,
    CaseWhen,
    ColumnRef,
    Comparison,
    DateLiteral,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    OrderItem,
    Select,
    SelectItem,
    TableRef,
    and_all,
)
from repro.db.sql.lexer import Token, TokenType, tokenize

_CMP_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_FUNC_NAMES = {"sum", "count", "avg", "min", "max", "abs"}


def parse(sql: str) -> Select:
    """Parse a SELECT statement."""
    return _Parser(tokenize(sql)).parse_select_statement()


def parse_expression(sql: str) -> Expr:
    """Parse a standalone scalar/boolean expression (used in tests)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word.upper()}, found {self.current.value!r}",
                self.current.position,
            )

    def accept_punct(self, ch: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == ch:
            self.advance()
            return True
        return False

    def expect_punct(self, ch: str) -> None:
        if not self.accept_punct(ch):
            raise SqlSyntaxError(
                f"expected {ch!r}, found {self.current.value!r}",
                self.current.position,
            )

    def expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )

    # -- statement ----------------------------------------------------

    def parse_select_statement(self) -> Select:
        select = self.parse_select()
        self.expect_eof()
        return select

    def parse_select(self) -> Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self._parse_select_items()
        self.expect_keyword("from")
        tables, join_predicates = self._parse_table_refs()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        where = and_all(join_predicates + ([where] if where else []))
        group_by: tuple = ()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = tuple(self._parse_expr_list())
        having = None
        if self.accept_keyword("having"):
            having = self.parse_expr()
        order_by: tuple = ()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = tuple(self._parse_order_items())
        limit = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError("LIMIT expects a number", token.position)
            limit = int(token.value)
        return Select(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if (
            self.current.type is TokenType.OPERATOR
            and self.current.value == "*"
        ):
            self.advance()
            return SelectItem(ColumnRef("*"))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self._expect_identifier("alias")
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _parse_table_refs(self) -> tuple[list[TableRef], list[Expr]]:
        tables = [self._parse_table_ref()]
        predicates: list[Expr] = []
        while True:
            if self.accept_punct(","):
                tables.append(self._parse_table_ref())
                continue
            if self.current.is_keyword("inner") or self.current.is_keyword(
                "join"
            ):
                self.accept_keyword("inner")
                self.expect_keyword("join")
                tables.append(self._parse_table_ref())
                self.expect_keyword("on")
                predicates.append(self.parse_expr())
                continue
            break
        return tables, predicates

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier("table name")
        alias = None
        if self.accept_keyword("as"):
            alias = self._expect_identifier("table alias")
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return TableRef(name, alias)

    def _parse_order_items(self) -> list[OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            descending = False
            if self.accept_keyword("desc"):
                descending = True
            else:
                self.accept_keyword("asc")
            items.append(OrderItem(expr, descending))
            if not self.accept_punct(","):
                break
        return items

    def _parse_expr_list(self) -> list[Expr]:
        exprs = [self.parse_expr()]
        while self.accept_punct(","):
            exprs.append(self.parse_expr())
        return exprs

    def _expect_identifier(self, what: str) -> str:
        token = self.advance()
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(
                f"expected {what}, found {token.value!r}", token.position
            )
        return token.value

    # -- expressions ----------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in _CMP_OPS:
            self.advance()
            right = self._parse_additive()
            op = "<>" if token.value == "!=" else token.value
            return Comparison(op, left, right)
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high)
        negated = False
        if self.current.is_keyword("not"):
            # lookahead for NOT IN / NOT LIKE
            nxt = self.tokens[self.pos + 1]
            if nxt.is_keyword("in") or nxt.is_keyword("like"):
                self.advance()
                negated = True
        if self.accept_keyword("in"):
            self.expect_punct("(")
            items = tuple(self._parse_expr_list())
            self.expect_punct(")")
            expr: Expr = InList(left, items)
            return Not(expr) if negated else expr
        if self.accept_keyword("like"):
            pattern = self.advance()
            if pattern.type is not TokenType.STRING:
                raise SqlSyntaxError(
                    "LIKE expects a quoted pattern", pattern.position
                )
            expr = Like(left, pattern.value)
            return Not(expr) if negated else expr
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_term()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in ("+", "-")
        ):
            op = self.advance().value
            left = Arithmetic(op, left, self._parse_term())
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in ("*", "/")
        ):
            op = self.advance().value
            left = Arithmetic(op, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Expr:
        if (
            self.current.type is TokenType.OPERATOR
            and self.current.value == "-"
        ):
            self.advance()
            return Negate(self._parse_factor())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("date"):
            self.advance()
            value = self.advance()
            if value.type is not TokenType.STRING:
                raise SqlSyntaxError(
                    "DATE expects a quoted ISO date", value.position
                )
            return DateLiteral(value.value)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.type is TokenType.PUNCT and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER:
            name = self.advance().value
            if name in _FUNC_NAMES and self.accept_punct("("):
                if (
                    self.current.type is TokenType.OPERATOR
                    and self.current.value == "*"
                ):
                    self.advance()
                    self.expect_punct(")")
                    return FuncCall(name, None)
                distinct = self.accept_keyword("distinct")
                if distinct and name != "count":
                    raise SqlSyntaxError(
                        f"DISTINCT is only supported in COUNT, not "
                        f"{name.upper()}",
                        self.current.position,
                    )
                arg = self.parse_expr()
                self.expect_punct(")")
                return FuncCall(name, arg, distinct=distinct)
            if self.accept_punct("."):
                column = self._expect_identifier("column name")
                return ColumnRef(column, table=name)
            return ColumnRef(name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r}", token.position
        )

    def _parse_case(self) -> Expr:
        self.expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            cond = self.parse_expr()
            self.expect_keyword("then")
            value = self.parse_expr()
            whens.append((cond, value))
        if not whens:
            raise SqlSyntaxError(
                "CASE needs at least one WHEN branch",
                self.current.position,
            )
        default = None
        if self.accept_keyword("else"):
            default = self.parse_expr()
        self.expect_keyword("end")
        return CaseWhen(tuple(whens), default)
