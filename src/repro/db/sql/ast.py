"""SQL abstract syntax tree.

Every node renders back to SQL via ``to_sql()``; the QED aggregator
relies on this to build merged queries, and tests use it for round-trip
checks (parse -> to_sql -> parse yields an equal tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class for scalar/boolean expressions."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int, float, str

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, float):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class DateLiteral(Expr):
    iso: str  # 'YYYY-MM-DD'

    def to_sql(self) -> str:
        return f"DATE '{self.iso}'"


@dataclass(frozen=True)
class Comparison(Expr):
    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr

    def to_sql(self) -> str:
        return (
            f"{self.operand.to_sql()} BETWEEN "
            f"{self.low.to_sql()} AND {self.high.to_sql()}"
        )


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]

    def to_sql(self) -> str:
        inner = ", ".join(item.to_sql() for item in self.items)
        return f"{self.operand.to_sql()} IN ({inner})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    whens: tuple[tuple["Expr", "Expr"], ...]
    default: "Expr | None" = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE with ``%`` (any run) and ``_`` (any char) wildcards."""

    operand: Expr
    pattern: str

    def to_sql(self) -> str:
        escaped = self.pattern.replace("'", "''")
        return f"{self.operand.to_sql()} LIKE '{escaped}'"


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} AND {self.right.to_sql()})"


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} OR {self.right.to_sql()})"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"


@dataclass(frozen=True)
class Arithmetic(Expr):
    op: str  # '+', '-', '*', '/'
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class Negate(Expr):
    operand: Expr

    def to_sql(self) -> str:
        return f"(-{self.operand.to_sql()})"


AGGREGATE_FUNCS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # lower-cased
    arg: Expr | None  # None only for COUNT(*)
    distinct: bool = False  # COUNT(DISTINCT expr)

    def to_sql(self) -> str:
        inner = "*" if self.arg is None else self.arg.to_sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCS


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    def to_sql(self) -> str:
        sql = self.expr.to_sql()
        return f"{sql} AS {self.alias}" if self.alias else sql

    def output_name(self, ordinal: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return f"col{ordinal}"


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    def to_sql(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name

    @property
    def binding(self) -> str:
        """The name the query text uses for this table."""
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False

    def to_sql(self) -> str:
        return self.expr.to_sql() + (" DESC" if self.descending else "")


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: Expr | None = None
    group_by: tuple[Expr, ...] = field(default=())
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        parts.append("FROM " + ", ".join(t.to_sql() for t in self.tables))
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(e.to_sql() for e in self.group_by)
            )
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND factors."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def disjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level OR terms."""
    if expr is None:
        return []
    if isinstance(expr, Or):
        return disjuncts(expr.left) + disjuncts(expr.right)
    return [expr]


def and_all(exprs: list[Expr]) -> Expr | None:
    """Combine predicates with AND (None for an empty list)."""
    result: Expr | None = None
    for expr in exprs:
        result = expr if result is None else And(result, expr)
    return result


def or_all(exprs: list[Expr]) -> Expr | None:
    """Combine predicates with OR (None for an empty list)."""
    result: Expr | None = None
    for expr in exprs:
        result = expr if result is None else Or(result, expr)
    return result


def column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references in an expression, in evaluation order."""
    out: list[ColumnRef] = []

    def walk(node: Expr) -> None:
        if isinstance(node, ColumnRef):
            out.append(node)
        elif isinstance(node, Comparison):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, Like):
            walk(node.operand)
        elif isinstance(node, CaseWhen):
            for cond, value in node.whens:
                walk(cond)
                walk(value)
            if node.default is not None:
                walk(node.default)
        elif isinstance(node, (And, Or)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, Arithmetic):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Negate):
            walk(node.operand)
        elif isinstance(node, FuncCall) and node.arg is not None:
            walk(node.arg)

    walk(expr)
    return out
