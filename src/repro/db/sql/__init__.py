"""SQL front end: lexer, parser, AST."""
