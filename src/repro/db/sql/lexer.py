"""SQL lexer: turns query text into a token stream."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.db.errors import SqlSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having",
    "order", "limit", "and", "or", "not", "between", "in", "as",
    "asc", "desc", "date", "join", "inner", "on", "is", "null", "like",
    "case", "when", "then", "else", "end",
}

OPERATORS = ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/"]

PUNCTUATION = {"(", ")", ",", "."}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.value}, {self.value!r}@{self.position})"


def tokenize(sql: str) -> list[Token]:
    """Lex ``sql`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            # line comment
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            value, i = _lex_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            value, i = _lex_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, lowered, start))
            continue
        matched = False
        for op in OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _lex_string(sql: str, start: int) -> tuple[str, int]:
    """Lex a single-quoted string with '' escaping."""
    i = start + 1
    out: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _lex_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            # Don't swallow a trailing qualifier dot like "t1.col".
            if i + 1 < n and (sql[i + 1].isdigit()):
                seen_dot = True
                i += 1
            elif i == start:
                seen_dot = True
                i += 1
            else:
                break
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1] if i + 1 < n else ""
            nxt2 = sql[i + 2] if i + 2 < n else ""
            if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    return sql[start:i], i
