"""Storage engines: memory (MySQL memory-engine-like) and disk (row store).

A storage engine answers table scans with column data and *records the
I/O the scan implied* into the query's :class:`ExecutionStats`:

* :class:`MemoryEngine` keeps everything in RAM -- scans cost CPU only.
  This is the configuration the paper uses for MySQL "to stress the CPU".
* :class:`DiskEngine` lays tables out as 8 KB row-store pages behind an
  LRU buffer pool.  Cold scans generate sequential reads; partially
  cached scans generate a mix of short random runs and long sequential
  runs; spills (hash join/sort temp files) generate sequential
  write+read traffic.  This is the commercial-DBMS configuration, whose
  warm runs still show disk activity (paper Sec. 3.5).
"""

from __future__ import annotations

from repro.db.errors import ExecutionError
from repro.db.exec.stats import ExecutionStats
from repro.db.schema import Table
from repro.db.storage.buffer import BufferPool
from repro.db.storage.pages import (
    PAGE_SIZE_BYTES,
    SEQUENTIAL_RUN_BYTES,
    page_key,
    pages_for,
)
from repro.db.types import Column
from repro.hardware.trace import DiskAccess


class StorageEngine:
    """Interface: scan tables and account for the implied I/O."""

    def scan(self, table: Table, stats: ExecutionStats
             ) -> dict[str, Column]:
        raise NotImplementedError

    def spill(self, bytes_total: float, stats: ExecutionStats,
              label: str = "spill") -> None:
        """Write ``bytes_total`` of temp data and read it back."""
        raise NotImplementedError

    @property
    def is_persistent(self) -> bool:
        raise NotImplementedError


class MemoryEngine(StorageEngine):
    """All tables resident in RAM; scans are pure CPU."""

    def scan(self, table: Table, stats: ExecutionStats
             ) -> dict[str, Column]:
        return table.columns

    def spill(self, bytes_total: float, stats: ExecutionStats,
              label: str = "spill") -> None:
        raise ExecutionError(
            "memory engine cannot spill; raise work_mem or use disk engine"
        )

    @property
    def is_persistent(self) -> bool:
        return False


class DiskEngine(StorageEngine):
    """Row-store pages behind a shared LRU buffer pool."""

    def __init__(self, buffer_pool: BufferPool):
        self.buffer_pool = buffer_pool

    @property
    def is_persistent(self) -> bool:
        return True

    def table_pages(self, table: Table) -> int:
        return pages_for(table.row_count, table.schema.row_width_bytes)

    def scan(self, table: Table, stats: ExecutionStats
             ) -> dict[str, Column]:
        """Scan the table, recording buffer misses as disk reads.

        A row store reads *all* columns regardless of the projection, so
        the page count depends only on the table.  Consecutive missing
        pages coalesce into runs; long runs transfer sequentially, short
        runs pay a random access each.
        """
        n_pages = self.table_pages(table)
        miss_runs: list[int] = []
        run = 0
        for index in range(n_pages):
            hit = self.buffer_pool.access(page_key(table.name, index))
            if hit:
                if run:
                    miss_runs.append(run)
                    run = 0
            else:
                run += 1
        if run:
            miss_runs.append(run)
        self._record_runs(miss_runs, table.name, stats)
        return table.columns

    #: Cold table scans issue synchronous chunked reads (no readahead
    #: after a restart -- the behaviour behind the paper's 3x-slower
    #: cold run), in chunks of this size.
    COLD_CHUNK_BYTES = 224 * 1024
    #: The DBMS processes pages while the cold scan streams in, so the
    #: CPU overlap duty is higher than for background temp I/O.
    COLD_SCAN_CPU_OVERLAP = 0.28

    def _record_runs(self, miss_runs: list[int], table_name: str,
                     stats: ExecutionStats) -> None:
        chunk_bytes = 0.0
        chunk_ops = 0
        random_runs = 0
        random_bytes = 0.0
        for run in miss_runs:
            run_bytes = run * PAGE_SIZE_BYTES
            if run_bytes >= SEQUENTIAL_RUN_BYTES:
                chunk_bytes += run_bytes
                chunk_ops += max(1, round(run_bytes / self.COLD_CHUNK_BYTES))
            else:
                random_runs += 1
                random_bytes += run_bytes
        if chunk_ops:
            stats.record_io(DiskAccess(
                num_ops=chunk_ops,
                bytes_total=chunk_bytes,
                sequential=False,
                cpu_overlap_utilization=self.COLD_SCAN_CPU_OVERLAP,
                label=f"scan:{table_name}",
            ))
        if random_runs:
            stats.record_io(DiskAccess(
                num_ops=random_runs,
                bytes_total=random_bytes,
                sequential=False,
                label=f"scan:{table_name}",
            ))

    def warm(self, table: Table) -> None:
        """Preload every page of ``table`` into the buffer pool."""
        throwaway = ExecutionStats()
        self.scan(table, throwaway)

    def spill(self, bytes_total: float, stats: ExecutionStats,
              label: str = "spill") -> None:
        """Temp-file traffic: sequential write followed by read-back."""
        if bytes_total <= 0:
            return
        ops = max(1, int(bytes_total // SEQUENTIAL_RUN_BYTES))
        stats.record_io(DiskAccess(
            num_ops=ops, bytes_total=bytes_total, sequential=True,
            write=True, label=f"{label}:write",
        ))
        stats.record_io(DiskAccess(
            num_ops=ops, bytes_total=bytes_total, sequential=True,
            write=False, label=f"{label}:read",
        ))
