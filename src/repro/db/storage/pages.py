"""Page-level bookkeeping for the disk storage engine."""

from __future__ import annotations

PAGE_SIZE_BYTES = 8192

#: Miss runs at least this long are read with sequential transfers;
#: shorter runs pay a random access (seek + rotation).
SEQUENTIAL_RUN_BYTES = 128 * 1024


def pages_for(row_count: int, row_width_bytes: int) -> int:
    """Number of pages a row-store table of this shape occupies."""
    if row_count < 0 or row_width_bytes <= 0:
        raise ValueError("row_count >= 0 and row_width_bytes > 0 required")
    if row_count == 0:
        return 0
    rows_per_page = max(1, PAGE_SIZE_BYTES // row_width_bytes)
    return -(-row_count // rows_per_page)  # ceil division


def page_key(table: str, index: int) -> tuple[str, int]:
    return (table, index)
