"""LRU buffer pool.

The pool decides which table pages are memory-resident: a warm scan hits
entirely in the pool while a cold scan misses everywhere and pays disk
time -- the difference behind the paper's Sec. 3.5 warm/cold comparison
(48.5 s / 1228.7 J CPU warm versus 156 s / 2146 J CPU cold).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.db.storage.pages import PAGE_SIZE_BYTES


class BufferPool:
    """Page-granular LRU cache."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.capacity_pages = capacity_bytes // PAGE_SIZE_BYTES
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Monotone counter of *content* changes (pages admitted or
        #: dropped; pure LRU reordering does not count).  Caches keyed
        #: on it -- plans, execution traces -- self-invalidate whenever
        #: the resident page set, and therefore a query's I/O work,
        #: changes.
        self.version = 0

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * PAGE_SIZE_BYTES

    def access(self, key: tuple[str, int]) -> bool:
        """Touch a page; returns True on hit, False on miss (page loaded)."""
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._admit(key)
        return False

    def contains(self, key: tuple[str, int]) -> bool:
        return key in self._pages

    def _admit(self, key: tuple[str, int]) -> None:
        if self.capacity_pages == 0:
            return
        while len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1
        self._pages[key] = None
        self.version += 1

    def evict_table(self, table: str) -> int:
        """Drop every page of ``table``; returns the number dropped."""
        victims = [k for k in self._pages if k[0] == table]
        for key in victims:
            del self._pages[key]
        if victims:
            self.version += 1
        return len(victims)

    def clear(self) -> None:
        """Cold-start the pool (the paper's reboot before the cold run)."""
        if self._pages:
            self.version += 1
        self._pages.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
