"""Storage: pages, buffer pool, memory/disk engines."""
