"""Database error hierarchy."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all database errors."""


class SqlSyntaxError(DatabaseError):
    """Raised by the lexer/parser on malformed SQL."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class CatalogError(DatabaseError):
    """Unknown table/column, duplicate definitions, etc."""


class PlanError(DatabaseError):
    """Raised when a query cannot be planned (unsupported shape)."""


class ExecutionError(DatabaseError):
    """Raised during query execution."""


class TypeMismatchError(DatabaseError):
    """Incompatible operand types in an expression."""
