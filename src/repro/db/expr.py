"""Vectorized expression evaluation over column batches.

A *batch* maps qualified column names (``"binding.column"``) to
:class:`~repro.db.types.Column` objects of equal length.  Predicates are
evaluated with an *active-row* mask so that comparison counts honour
short-circuit semantics:

* ``a OR b``: ``b`` is only charged for rows where ``a`` was false;
* ``a AND b``: ``b`` is only charged for rows where ``a`` was true;
* ``x IN (v1, .., vk)``: each row is charged up to its first match.

The numeric *result* is still computed with full-width numpy operations
(that is the vectorized engine's implementation strategy); only the
*work accounting* follows the row-at-a-time semantics of the classical
engines the paper measures, because that is what determines CPU energy.
"""

from __future__ import annotations

import numpy as np

from repro.db.errors import ExecutionError, TypeMismatchError
from repro.db.exec.stats import ExprCounters
from repro.db.sql import ast
from repro.db.types import Column, DataType, date_to_days


class Batch:
    """Named columns of equal length (the unit of vectorized execution)."""

    def __init__(self, columns: dict[str, Column], n_rows: int):
        self.columns = columns
        self.n_rows = n_rows

    @classmethod
    def from_table(cls, binding: str, columns: dict[str, Column],
                   n_rows: int) -> "Batch":
        qualified = {
            f"{binding}.{name}": col for name, col in columns.items()
        }
        return cls(qualified, n_rows)

    def column(self, ref: ast.ColumnRef) -> Column:
        if ref.table is not None:
            key = f"{ref.table}.{ref.name}"
            try:
                return self.columns[key]
            except KeyError:
                raise ExecutionError(f"unknown column {key!r}") from None
        if ref.name in self.columns:  # bare output-column name
            return self.columns[ref.name]
        suffix = f".{ref.name}"
        matches = [k for k in self.columns if k.endswith(suffix)]
        if not matches:
            raise ExecutionError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise ExecutionError(
                f"ambiguous column {ref.name!r}: {sorted(matches)}"
            )
        return self.columns[matches[0]]

    def take(self, indices: np.ndarray) -> "Batch":
        return Batch(
            {k: col.take(indices) for k, col in self.columns.items()},
            len(indices),
        )

    def head(self, n: int) -> "Batch":
        """The first ``n`` rows by contiguous slicing (LIMIT).

        Clamped to ``[0, n_rows]``: a programmatically built plan can
        carry a negative limit, which must degrade to an empty batch
        (as the arange-based implementation did), not a batch whose
        ``n_rows`` disagrees with its columns.
        """
        n = max(0, min(n, self.n_rows))
        return Batch(
            {k: col.head(n) for k, col in self.columns.items()}, n
        )

    def merged_with(self, other: "Batch") -> "Batch":
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise ExecutionError(f"duplicate columns in join: {overlap}")
        if self.n_rows != other.n_rows:
            raise ExecutionError("cannot merge batches of differing length")
        combined = dict(self.columns)
        combined.update(other.columns)
        return Batch(combined, self.n_rows)


# --------------------------------------------------------------------------
# Scalar (numeric) evaluation.
# --------------------------------------------------------------------------

def evaluate_scalar(expr: ast.Expr, batch: Batch,
                    counters: ExprCounters) -> np.ndarray:
    """Evaluate a numeric expression to a full-length array."""
    if isinstance(expr, ast.ColumnRef):
        col = batch.column(expr)
        if col.dtype is DataType.STRING:
            raise TypeMismatchError(
                f"column {expr.to_sql()} is a string; not numeric"
            )
        return col.raw()
    if isinstance(expr, ast.Literal):
        if isinstance(expr.value, str):
            raise TypeMismatchError("string literal in numeric context")
        return np.full(batch.n_rows, expr.value)
    if isinstance(expr, ast.DateLiteral):
        return np.full(batch.n_rows, date_to_days(expr.iso), dtype=np.int64)
    if isinstance(expr, ast.Arithmetic):
        left = evaluate_scalar(expr.left, batch, counters)
        right = evaluate_scalar(expr.right, batch, counters)
        counters.arithmetic_ops += batch.n_rows
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return np.divide(left, right)
        raise ExecutionError(f"unknown arithmetic op {expr.op!r}")
    if isinstance(expr, ast.Negate):
        counters.arithmetic_ops += batch.n_rows
        return -evaluate_scalar(expr.operand, batch, counters)
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name.upper()} outside aggregation context"
            )
        if expr.name == "abs":
            counters.arithmetic_ops += batch.n_rows
            return np.abs(evaluate_scalar(expr.arg, batch, counters))
        raise ExecutionError(f"unknown function {expr.name!r}")
    if isinstance(expr, ast.CaseWhen):
        return _evaluate_case(expr, batch, counters)
    raise ExecutionError(
        f"expression {expr.to_sql()} is not a scalar expression"
    )


def _evaluate_case(expr: ast.CaseWhen, batch: Batch,
                   counters: ExprCounters) -> np.ndarray:
    """Searched CASE with per-row short-circuit condition accounting.

    A row evaluates WHEN conditions in order until one matches, so
    condition *i* is charged only for rows unmatched by 1..i-1 --
    the same semantics the OR-chain accounting uses.
    """
    remaining = np.ones(batch.n_rows, dtype=bool)
    conditions: list[np.ndarray] = []
    values: list[np.ndarray] = []
    for cond, value in expr.whens:
        hit = evaluate_predicate(cond, batch, counters, remaining)
        conditions.append(hit)
        values.append(
            np.asarray(evaluate_scalar(value, batch, counters),
                       dtype=np.float64)
        )
        remaining = remaining & ~hit
    if expr.default is not None:
        default = np.asarray(
            evaluate_scalar(expr.default, batch, counters),
            dtype=np.float64,
        )
    else:
        default = np.zeros(batch.n_rows)
    return np.select(conditions, values, default=default)


# --------------------------------------------------------------------------
# Predicate evaluation with short-circuit accounting.
# --------------------------------------------------------------------------

def evaluate_predicate(
    expr: ast.Expr,
    batch: Batch,
    counters: ExprCounters,
    active: np.ndarray | None = None,
) -> np.ndarray:
    """Evaluate a boolean expression to a full-length bool mask.

    ``active`` marks rows still being evaluated for accounting purposes;
    the returned mask is always full length (inactive rows are False).
    """
    if active is None:
        active = np.ones(batch.n_rows, dtype=bool)
    n_active = int(active.sum())

    if isinstance(expr, ast.Or):
        left = evaluate_predicate(expr.left, batch, counters, active)
        remaining = active & ~left
        right = evaluate_predicate(expr.right, batch, counters, remaining)
        return left | right
    if isinstance(expr, ast.And):
        left = evaluate_predicate(expr.left, batch, counters, active)
        right = evaluate_predicate(expr.right, batch, counters, left)
        return left & right
    if isinstance(expr, ast.Not):
        inner = evaluate_predicate(expr.operand, batch, counters, active)
        return active & ~inner
    if isinstance(expr, ast.Comparison):
        counters.comparisons += n_active
        left, right = _comparable_operands(expr.left, expr.right, batch,
                                           counters)
        mask = _compare(expr.op, left, right)
        return mask & active
    if isinstance(expr, ast.Between):
        operand = _scalar_side(expr.operand, batch, counters)
        low = _scalar_side(expr.low, batch, counters)
        high = _scalar_side(expr.high, batch, counters)
        counters.comparisons += n_active
        ge = operand >= low
        # The upper bound is only checked for rows passing the lower one.
        counters.comparisons += int((ge & active).sum())
        return ge & (operand <= high) & active
    if isinstance(expr, ast.InList):
        return _evaluate_in_list(expr, batch, counters, active)
    if isinstance(expr, ast.Like):
        return _evaluate_like(expr, batch, counters, active)
    raise ExecutionError(
        f"expression {expr.to_sql()} is not a boolean predicate"
    )


def _evaluate_like(expr: ast.Like, batch: Batch,
                   counters: ExprCounters,
                   active: np.ndarray) -> np.ndarray:
    """LIKE pattern match over a string column (decoded values)."""
    import re

    col = _string_column(expr.operand, batch)
    if col is None:
        raise TypeMismatchError("LIKE requires a string column operand")
    counters.comparisons += int(active.sum())
    regex = re.compile(
        "^"
        + re.escape(expr.pattern).replace("%", ".*").replace("_", ".")
        + "$"
    )
    # Match once per dictionary entry, then broadcast through the codes.
    dictionary = col.dictionary or []
    code_hits = np.fromiter(
        (regex.match(value) is not None for value in dictionary),
        dtype=bool, count=len(dictionary),
    )
    mask = code_hits[col.raw()] if len(dictionary) else np.zeros(
        batch.n_rows, dtype=bool
    )
    return mask & active


def _evaluate_in_list(expr: ast.InList, batch: Batch,
                      counters: ExprCounters,
                      active: np.ndarray) -> np.ndarray:
    """IN-list with per-row first-match accounting."""
    result = np.zeros(batch.n_rows, dtype=bool)
    remaining = active.copy()
    for item in expr.items:
        counters.comparisons += int(remaining.sum())
        left, right = _comparable_operands(expr.operand, item, batch,
                                           counters)
        hit = _compare("=", left, right) & remaining
        result |= hit
        remaining &= ~hit
    return result


def _compare(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _scalar_side(expr: ast.Expr, batch: Batch,
                 counters: ExprCounters) -> np.ndarray:
    """Numeric operand of a comparison (raw domain for dates)."""
    return evaluate_scalar(expr, batch, counters)


def _comparable_operands(
    left: ast.Expr, right: ast.Expr, batch: Batch, counters: ExprCounters
) -> tuple[np.ndarray, np.ndarray]:
    """Align the two sides of a comparison into a common raw domain.

    Handles the string cases: column-vs-literal compares dictionary
    codes; column-vs-column decodes (different dictionaries).
    """
    left_col = _string_column(left, batch)
    right_col = _string_column(right, batch)
    if left_col is not None and right_col is not None:
        if left_col.dictionary is right_col.dictionary:
            return left_col.raw(), right_col.raw()
        return left_col.values(), right_col.values()
    if left_col is not None:
        return left_col.raw(), _string_literal_codes(left_col, right, batch)
    if right_col is not None:
        return _string_literal_codes(right_col, left, batch), right_col.raw()
    return (
        evaluate_scalar(left, batch, counters),
        evaluate_scalar(right, batch, counters),
    )


def _string_column(expr: ast.Expr, batch: Batch) -> Column | None:
    if isinstance(expr, ast.ColumnRef):
        col = batch.column(expr)
        if col.dtype is DataType.STRING:
            return col
    return None


def _string_literal_codes(col: Column, expr: ast.Expr,
                          batch: Batch) -> np.ndarray:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, str):
        return np.full(batch.n_rows, col.code_for(expr.value),
                       dtype=np.int32)
    raise TypeMismatchError(
        f"cannot compare string column to {expr.to_sql()}"
    )
