"""Table schemas and the in-memory table representation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.errors import CatalogError, TypeMismatchError
from repro.db.types import Column, DataType


@dataclass(frozen=True)
class ColumnDef:
    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name {self.name!r}")


@dataclass
class TableSchema:
    name: str
    columns: list[ColumnDef]
    _by_name: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("table name must be non-empty")
        self._by_name = {}
        for i, col in enumerate(self.columns):
            if col.name in self._by_name:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            self._by_name[col.name] = i

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> ColumnDef:
        try:
            return self.columns[self._by_name[name]]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def row_width_bytes(self) -> int:
        """Row width for page-count estimation (row-store layout)."""
        return sum(c.dtype.width_bytes for c in self.columns) + 8  # header


class Table:
    """A loaded table: schema plus one :class:`Column` per column."""

    def __init__(self, schema: TableSchema, columns: dict[str, Column]):
        self.schema = schema
        missing = [c.name for c in schema.columns if c.name not in columns]
        if missing:
            raise CatalogError(
                f"table {schema.name!r} missing columns: {missing}"
            )
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise CatalogError("all columns must have the same length")
        for cdef in schema.columns:
            col = columns[cdef.name]
            if col.dtype is not cdef.dtype:
                raise TypeMismatchError(
                    f"column {cdef.name!r}: expected {cdef.dtype}, "
                    f"got {col.dtype}"
                )
        self.columns = columns
        self.row_count = lengths.pop() if lengths else 0

    @classmethod
    def from_arrays(cls, schema: TableSchema, data: dict[str, object]
                    ) -> "Table":
        """Build a table from plain sequences/arrays keyed by column name."""
        missing = [c.name for c in schema.columns if c.name not in data]
        if missing:
            raise CatalogError(
                f"table {schema.name!r} missing columns: {missing}"
            )
        columns = {
            cdef.name: Column.from_values(cdef.dtype, data[cdef.name])
            for cdef in schema.columns
        }
        return cls(schema, columns)

    @property
    def name(self) -> str:
        return self.schema.name

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    @property
    def size_bytes(self) -> int:
        return self.row_count * self.schema.row_width_bytes

    def row(self, i: int) -> tuple:
        """One row as a tuple of decoded values (testing convenience)."""
        out = []
        for cdef in self.schema.columns:
            col = self.columns[cdef.name]
            if col.dtype is DataType.STRING:
                out.append(col.dictionary[col.data[i]])
            else:
                out.append(col.data[i].item())
        return tuple(out)

    def select_rows(self, mask_or_idx: np.ndarray) -> "Table":
        """A new table holding the selected rows."""
        if mask_or_idx.dtype == np.bool_:
            indices = np.flatnonzero(mask_or_idx)
        else:
            indices = mask_or_idx
        cols = {
            name: col.take(indices) for name, col in self.columns.items()
        }
        return Table(self.schema, cols)
