"""AST rule engine for the project invariant linter (``repro lint``).

The simulator's headline guarantees -- bitwise-reproducible runs keyed
by :mod:`repro.obs.fingerprint` run ids, tracing-off runs identical to
seed behavior, first-writer-wins safety in the mmap trace store -- are
structural properties, not test outcomes.  This package enforces them
mechanically: each :class:`Rule` is an AST pass with a stable id, a
severity, and a default path scope; the :class:`Linter` runs every
registered rule over every parsed module and merges the findings.

Suppressions are inline and must carry a reason::

    risky_thing()  # repro: noqa[FLOAT-EQ]: exact zero is a sentinel

A bare ``# repro: noqa`` (no rule id) or a reasonless suppression is
itself a finding, so the repo can never accumulate unexplained
escapes.  Suppressions that match nothing are reported as warnings to
keep them from outliving the code they excused.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Meta finding ids emitted by the engine itself (not registered rules).
PARSE_ID = "PARSE"
NOQA_BLANKET_ID = "NOQA-BLANKET"
NOQA_REASON_ID = "NOQA-REASON"
NOQA_UNKNOWN_ID = "NOQA-UNKNOWN"
NOQA_UNUSED_ID = "NOQA-UNUSED"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = SEVERITY_ERROR

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.severity}] {self.message}")


# -- AST module context ----------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute (``tracer`` from
    ``self.tracer``), else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class Module:
    """One parsed source file plus the derived views rules share."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def functions(
        self,
    ) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            n for n in ast.walk(self.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def call_sites(self, name: str) -> list[ast.Call]:
        """Every in-module call whose callee's terminal name is
        ``name`` (covers ``f(...)``, ``self.f(...)``, ``obj.f(...)``)."""
        return [
            n for n in ast.walk(self.tree)
            if isinstance(n, ast.Call)
            and terminal_name(n.func) == name
        ]


# -- rules -----------------------------------------------------------------


class Rule:
    """Base class: subclass, set the class attributes, implement
    :meth:`check`, and decorate with :func:`register`."""

    rule_id: str = ""
    severity: str = SEVERITY_ERROR
    #: One-line statement of the invariant the rule protects (docs/JSON).
    invariant: str = ""
    #: fnmatch globs (repo-relative posix paths) the rule applies to.
    include: tuple[str, ...] = ("src/repro/*",)
    #: fnmatch globs exempted even when included.
    exclude: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not any(fnmatch.fnmatch(path, pat) for pat in self.include):
            return False
        return not any(fnmatch.fnmatch(path, pat) for pat in self.exclude)

    def check(self, module: Module) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


def rule_catalog() -> dict[str, dict]:
    """``{rule_id: {severity, invariant, include, exclude}}``."""
    return {
        rule.rule_id: {
            "severity": rule.severity,
            "invariant": rule.invariant,
            "include": list(rule.include),
            "exclude": list(rule.exclude),
        }
        for rule in all_rules()
    }


# -- noqa suppressions -----------------------------------------------------

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s-]*)\])?"
    r"(?::\s*(?P<reason>.*\S))?"
)


@dataclass
class Suppression:
    line: int
    rule_ids: tuple[str, ...]
    reason: str
    used: bool = False


def _comment_tokens(source: str) -> Iterator[tuple[int, str]]:
    """``(lineno, text)`` for every comment token (regexing raw lines
    would also match noqa examples inside string literals)."""
    readline = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def parse_suppressions(
    module_path: str, source: str
) -> tuple[list[Suppression], list[Finding]]:
    """Inline ``# repro: noqa[RULE-ID]: reason`` directives.

    Malformed directives (no bracketed rule id, or no reason) are
    findings in their own right and suppress nothing.
    """
    suppressions: list[Suppression] = []
    problems: list[Finding] = []

    def problem(lineno: int, rule_id: str, message: str) -> None:
        problems.append(Finding(
            path=module_path, line=lineno, col=1,
            rule_id=rule_id, message=message,
            severity=SEVERITY_ERROR,
        ))

    for lineno, text in _comment_tokens(source):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules_raw = match.group("rules")
        reason = (match.group("reason") or "").strip()
        if rules_raw is None or not rules_raw.strip():
            problem(lineno, NOQA_BLANKET_ID,
                    "blanket 'repro: noqa' is not allowed; name the "
                    "rule: # repro: noqa[RULE-ID]: reason")
            continue
        rule_ids = tuple(
            r.strip() for r in rules_raw.split(",") if r.strip()
        )
        if not reason:
            problem(lineno, NOQA_REASON_ID,
                    f"noqa[{', '.join(rule_ids)}] needs a reason: "
                    "# repro: noqa[RULE-ID]: why this is safe")
            continue
        suppressions.append(Suppression(lineno, rule_ids, reason))
    return suppressions, problems


# -- linter ----------------------------------------------------------------


class Linter:
    """Run a rule set over sources/paths and merge findings."""

    def __init__(self, rules: list[Rule] | None = None,
                 respect_scopes: bool = True):
        self.rules = rules if rules is not None else all_rules()
        self.respect_scopes = respect_scopes
        self.known_ids = {r.rule_id for r in self.rules}

    def lint_source(self, source: str, path: str) -> list[Finding]:
        suppressions, findings = parse_suppressions(path, source)
        try:
            module = Module(path, source)
        except SyntaxError as exc:
            findings.append(Finding(
                path=path, line=exc.lineno or 1,
                col=(exc.offset or 0) + 1, rule_id=PARSE_ID,
                message=f"syntax error: {exc.msg}",
                severity=SEVERITY_ERROR,
            ))
            return sorted(findings)
        for rule in self.rules:
            if self.respect_scopes and not rule.applies_to(path):
                continue
            for finding in rule.check(module):
                suppressed = False
                for supp in suppressions:
                    if supp.line == finding.line and (
                        finding.rule_id in supp.rule_ids
                    ):
                        supp.used = True
                        suppressed = True
                if not suppressed:
                    findings.append(finding)
        for supp in suppressions:
            unknown = [
                rid for rid in supp.rule_ids if rid not in self.known_ids
            ]
            if unknown:
                findings.append(Finding(
                    path=path, line=supp.line, col=1,
                    rule_id=NOQA_UNKNOWN_ID,
                    message=f"noqa names unknown rule(s) "
                            f"{', '.join(unknown)}",
                    severity=SEVERITY_ERROR,
                ))
            elif not supp.used:
                findings.append(Finding(
                    path=path, line=supp.line, col=1,
                    rule_id=NOQA_UNUSED_ID,
                    message=f"noqa[{', '.join(supp.rule_ids)}] "
                            "suppresses nothing; remove it",
                    severity=SEVERITY_WARNING,
                ))
        return sorted(findings)

    def lint_file(self, path: Path, display: str) -> list[Finding]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding(
                path=display, line=1, col=1, rule_id=PARSE_ID,
                message=f"unreadable: {exc}", severity=SEVERITY_ERROR,
            )]
        return self.lint_source(source, display)

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        for display, path in iter_python_files(paths):
            findings.extend(self.lint_file(path, display))
        return sorted(findings)


def _display_path(path: Path) -> str:
    """Repo-relative posix path when possible (scopes match on it)."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(
    paths: Iterable[str | Path],
) -> Iterator[tuple[str, Path]]:
    """``(display_path, real_path)`` for every .py under ``paths``,
    sorted for deterministic output order."""
    seen: set[str] = set()
    out: list[tuple[str, Path]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
        else:
            files = [path]
        for f in files:
            if "__pycache__" in f.parts:
                continue
            display = _display_path(f)
            if display not in seen:
                seen.add(display)
                out.append((display, f))
    yield from sorted(out)


# -- output formats --------------------------------------------------------


def render_text(findings: list[Finding], files: int) -> str:
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == SEVERITY_ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"repro lint: {files} file(s), {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding], files: int,
                paths: list[str]) -> str:
    errors = sum(1 for f in findings if f.severity == SEVERITY_ERROR)
    doc = {
        "format": "repro-lint",
        "version": 1,
        "paths": paths,
        "files": files,
        "rules": rule_catalog(),
        "findings": [f.to_dict() for f in findings],
        "counts": {
            "errors": errors,
            "warnings": len(findings) - errors,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
