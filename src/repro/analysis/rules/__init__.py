"""Rule registration: importing this package registers every rule."""

from repro.analysis.rules import determinism, lock_store, obs_guard

__all__ = ["determinism", "lock_store", "obs_guard"]
