"""Determinism rules: wall-clock reads, unseeded randomness, set
iteration order, and float equality on physical quantities.

Bitwise-reproducible runs are the contract behind
:func:`repro.obs.fingerprint.run_id_for`: two runs of the same config
must produce identical schedules, energies, and run ids.  Each rule
here bans one way a contribution can silently break that.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.engine import (
    Finding,
    Module,
    Rule,
    dotted_name,
    register,
)


@register
class WallClockRule(Rule):
    """Simulated time only: no wall-clock reads in the library.

    ``cluster/``, ``obs/``, and ``core/`` advance on arrival
    timestamps; a ``time.time()`` read anywhere in the library makes a
    run depend on the host, breaking run-id reproducibility.  Real
    timing belongs in ``benchmarks/`` and ``measurement/perf.py``.
    """

    rule_id = "DET-WALLCLOCK"
    invariant = ("simulated time only: wall-clock reads are confined "
                 "to benchmarks/ and measurement/perf.py")
    include = ("src/repro/*",)
    exclude = ("src/repro/measurement/perf.py",)

    _BANNED = {
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.date.today", "date.today",
    }
    _BANNED_IMPORTS = {
        "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
                 "monotonic", "monotonic_ns", "process_time",
                 "process_time_ns"},
    }

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name in self._BANNED:
                    yield self.finding(
                        module, node,
                        f"wall-clock read {name}() -- simulated time "
                        "only (arrival timestamps); real timing "
                        "belongs in benchmarks/ or measurement/perf.py",
                    )
            elif isinstance(node, ast.ImportFrom):
                banned = self._BANNED_IMPORTS.get(node.module or "")
                if banned:
                    for alias in node.names:
                        if alias.name in banned:
                            yield self.finding(
                                module, node,
                                f"imports wall-clock source "
                                f"{node.module}.{alias.name} -- "
                                "simulated time only",
                            )


@register
class RngRule(Rule):
    """Randomness arrives through a threaded seeded ``rng=``.

    The PR-6 determinism audit threads one ``np.random.Generator``
    through arrivals and fault outcomes; the process-global stdlib
    ``random`` module, numpy's legacy global state, and an unseeded
    ``default_rng()`` all re-randomize per process and break same-seed
    identity.
    """

    rule_id = "DET-RNG"
    invariant = ("randomness flows through a seeded rng= parameter; no "
                 "stdlib random, legacy np.random globals, or unseeded "
                 "default_rng()")
    include = ("src/repro/*",)

    _SEEDED_CONSTRUCTORS = {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
    }

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            module, node,
                            "imports the process-global stdlib random "
                            "module; thread a seeded "
                            "np.random.Generator (rng=) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module, node,
                        "imports from the process-global stdlib random "
                        "module; thread a seeded np.random.Generator "
                        "(rng=) instead",
                    )

    def _check_call(self, module: Module,
                    node: ast.Call) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if parts[0] == "random" and len(parts) > 1:
            yield self.finding(
                module, node,
                f"{name}() uses process-global stdlib random state; "
                "thread a seeded np.random.Generator (rng=) instead",
            )
            return
        if not name.startswith(("np.random.", "numpy.random.")):
            return
        tail = parts[-1]
        if tail == "default_rng":
            if not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    "unseeded np.random.default_rng() draws entropy "
                    "from the OS; pass an explicit seed or accept a "
                    "threaded rng= parameter",
                )
        elif tail not in self._SEEDED_CONSTRUCTORS:
            yield self.finding(
                module, node,
                f"{name}() uses numpy's legacy global RNG state; use "
                "a threaded seeded np.random.Generator (rng=) instead",
            )


@register
class SetOrderRule(Rule):
    """No iteration over raw sets: their order is hash-randomized.

    A ``for`` over a set (or a list/tuple/join built from one) varies
    across processes under PYTHONHASHSEED; if that order reaches a
    schedule, fingerprint, or placement map, two identical configs stop
    sharing a run id.  Wrap the set in ``sorted(...)`` -- or, where the
    consumer is provably order-free, suppress with a reason.
    """

    rule_id = "DET-SETORDER"
    invariant = ("set iteration is wrapped in sorted(...) before it "
                 "can reach schedules, fingerprints, or placement maps")
    include = ("src/repro/*",)

    #: Calls whose result ignores input order: iterating a set inside
    #: these is harmless (sum/min/max are order-free in exact
    #: arithmetic; float sums over sets are caught at the loop form).
    _ORDER_FREE_CALLS = {
        "sorted", "sum", "min", "max", "any", "all", "len",
        "set", "frozenset",
    }
    _ITER_WRAPPERS = {"list", "tuple", "iter", "enumerate", "zip", "map"}

    def check(self, module: Module) -> Iterable[Finding]:
        for scope in [module.tree] + module.functions():
            env = self._set_typed_names(scope)
            for node in self._scope_walk(scope):
                yield from self._check_node(module, node, env)

    def _scope_walk(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk ``scope`` without descending into nested functions
        (they get their own env pass)."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _set_typed_names(self, scope: ast.AST) -> set[str]:
        """Names assigned only set-typed values in this scope."""
        env: set[str] = set()
        poisoned: set[str] = set()
        # Two passes so chained assignments (b = a after a = set())
        # resolve regardless of AST walk order.
        for _ in range(2):
            for node in self._scope_walk(scope):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                    ann = dotted_name(node.annotation) or ""
                    sub = (
                        dotted_name(node.annotation.value) or ""
                        if isinstance(node.annotation, ast.Subscript)
                        else ""
                    )
                    if {ann, sub} & {"set", "frozenset", "Set",
                                     "FrozenSet", "typing.Set"}:
                        for t in targets:
                            if isinstance(t, ast.Name):
                                env.add(t.id)
                        continue
                    value = node.value
                if value is None:
                    continue
                is_set = self._is_set(value, env)
                for t in targets:
                    if isinstance(t, ast.Name):
                        if is_set and t.id not in poisoned:
                            env.add(t.id)
                        elif not is_set:
                            env.discard(t.id)
                            poisoned.add(t.id)
        return env

    def _is_set(self, node: ast.expr, env: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in env
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference", "copy",
            ):
                return self._is_set(node.func.value, env)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return (self._is_set(node.left, env)
                    or self._is_set(node.right, env))
        if isinstance(node, ast.IfExp):
            return (self._is_set(node.body, env)
                    and self._is_set(node.orelse, env))
        return False

    def _check_node(self, module: Module, node: ast.AST,
                    env: set[str]) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            if self._is_set(node.iter, env):
                yield self._order_finding(module, node.iter, "for loop")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                               ast.DictComp)):
            if self._consumed_order_free(module, node):
                return
            for comp in node.generators:
                if self._is_set(comp.iter, env):
                    yield self._order_finding(
                        module, comp.iter, "comprehension"
                    )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            wraps = (
                name in self._ITER_WRAPPERS
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join")
            )
            if wraps and node.args and self._is_set(node.args[0], env):
                label = name or "join"
                yield self._order_finding(
                    module, node.args[0], f"{label}() materialization"
                )

    def _consumed_order_free(self, module: Module,
                             node: ast.AST) -> bool:
        """Comprehension fed directly into an order-free consumer."""
        parent = module.parent(node)
        return (
            isinstance(parent, ast.Call)
            and node in parent.args
            and dotted_name(parent.func) in self._ORDER_FREE_CALLS
        )

    def _order_finding(self, module: Module, node: ast.AST,
                       context: str) -> Finding:
        return self.finding(
            module, node,
            f"set iteration order is hash-randomized across processes "
            f"({context}); wrap in sorted(...) before the order can "
            "reach a schedule, fingerprint, or placement map",
        )


@register
class FloatEqRule(Rule):
    """No ``==``/``!=`` on float energy/time/power quantities.

    Names matching ``*_joules``/``*_s``/``*_w`` (and ``*_j``,
    ``*joule*``, ``*watts``) carry accumulated float arithmetic; the
    project's identity checks are tolerance-based (<= 1e-9), so an
    exact comparison is either a latent bug or an exact-sentinel check
    that deserves an explanatory noqa.
    """

    rule_id = "FLOAT-EQ"
    invariant = ("energy/time/power floats compare via tolerances, "
                 "never ==/!=")
    include = ("src/repro/*",)

    _QUANTITY_RE = re.compile(
        r"(?:^|_)(?:joules?|watts?)$|_(?:s|w|j)$"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            elements = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (elements[i], elements[i + 1]):
                    name = terminal_quantity(side)
                    if name is not None:
                        yield self.finding(
                            module, node,
                            f"float equality on quantity '{name}'; "
                            "compare with a tolerance "
                            "(abs(a - b) <= eps) or noqa an "
                            "exact-sentinel check with a reason",
                        )
                        break


def terminal_quantity(node: ast.expr) -> str | None:
    """The quantity-suffixed identifier a comparison side names."""
    from repro.analysis.engine import terminal_name

    name = terminal_name(node)
    if name is not None and FloatEqRule._QUANTITY_RE.search(name):
        return name
    return None
