"""LOCK-STORE: writer-lock discipline in the columnar trace store.

:class:`repro.hardware.trace_store.ColumnarTraceStore` is the one
genuinely concurrent component: many processes append to one
``store-<ns>.rows`` tail and republish the JSON row-span index.  Its
safety argument is *first-writer-wins under an fcntl writer lock* --
every tail write and index publication happens inside
``with self._writer_lock():``, and readers never lock.

This rule is a static race detector for that argument: it walks the
module's call graph from its entry points (functions nothing in the
module calls) and flags any mutation primitive reachable without the
lock held.  Mutation primitives are

* a writable ``open()`` of the ``rows_path`` container,
* ``os.replace()`` onto the ``index_path``, and
* any call to ``_publish_index``.

A helper whose only call sites sit inside the lock (like
``_publish_index`` itself) is compliant; a new code path that reaches a
tail write without first taking the lock is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import (
    Finding,
    Module,
    Rule,
    dotted_name,
    register,
    terminal_name,
)

_LOCK_NAME = "_writer_lock"
_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _writable_mode(call: ast.Call) -> bool:
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # default 'r'
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in mode.value for c in "awx+")
    return True  # dynamic mode: assume the worst


def _primitives(body: list[ast.stmt]) -> list[tuple[ast.Call, str]]:
    """Mutation primitives in a statement list (nested defs excluded)."""
    out: list[tuple[ast.Call, str]] = []
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _FuncDef):
            continue
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "open" and node.args and terminal_name(
                node.args[0]
            ) == "rows_path" and _writable_mode(node):
                out.append((node, "writable open of the rows tail"))
            elif terminal_name(node.func) == "_publish_index":
                out.append((node, "index republication"))
            elif name == "os.replace":
                if len(node.args) >= 2 and terminal_name(
                    node.args[1]
                ) == "index_path":
                    out.append(
                        (node, "os.replace onto the published index")
                    )
        stack.extend(ast.iter_child_nodes(node))
    return out


def _in_lock(module: Module, node: ast.AST) -> bool:
    """Is ``node`` lexically inside ``with ..._writer_lock():``?"""
    for anc in module.ancestors(node):
        if isinstance(anc, _FuncDef):
            return False
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Call) and terminal_name(
                    ctx.func
                ) == _LOCK_NAME:
                    return True
    return False


@register
class LockStoreRule(Rule):
    """Tail writes/index publication reachable only under the lock."""

    rule_id = "LOCK-STORE"
    invariant = ("every store-*.rows tail write and index "
                 "republication is reachable only from inside the "
                 "fcntl writer-lock context manager")
    include = ("src/repro/*",)

    def check(self, module: Module) -> Iterable[Finding]:
        funcs: dict[str, list[ast.AST]] = {}
        for f in module.functions():
            funcs.setdefault(f.name, []).append(f)

        calls_in: dict[ast.AST | None, list[ast.Call]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                calls_in.setdefault(
                    module.enclosing_function(node), []
                ).append(node)

        violations: dict[ast.Call, str] = {}
        visited: set[tuple[int, bool]] = set()

        def visit(func: ast.AST | None, locked: bool) -> None:
            key = (id(func), locked)
            if key in visited:
                return
            visited.add(key)
            body = module.tree.body if func is None else func.body
            for prim, why in _primitives(body):
                if not locked and not _in_lock(module, prim):
                    violations.setdefault(
                        prim,
                        f"{why} reachable without the writer lock; "
                        f"wrap the path in 'with "
                        f"self.{_LOCK_NAME}():' (first-writer-wins "
                        "depends on it)",
                    )
            for call in calls_in.get(func, []):
                callee = terminal_name(call.func)
                if callee == _LOCK_NAME or callee not in funcs:
                    continue
                child_locked = locked or _in_lock(module, call)
                for target in funcs[callee]:
                    visit(target, child_locked)

        # Entry points: module level plus every function nothing in
        # this module calls (external callers hold no lock).
        visit(None, False)
        for name, defs in funcs.items():
            if not module.call_sites(name):
                for f in defs:
                    visit(f, False)

        return [
            self.finding(module, node, message)
            for node, message in sorted(
                violations.items(),
                key=lambda kv: (kv[0].lineno, kv[0].col_offset),
            )
        ]
