"""OBS-GUARD: zero-cost-disabled observability hooks.

The cluster hot paths (scheduler event loop, node playback, master
queue) promise that a run with tracing and metrics disabled is
bitwise-identical to seed behavior and pays only dead branch checks.
That only holds if every ``tracer.*`` / ``metrics.*`` touch sits under
an ``if tracing:`` / ``if metrics is not None:`` guard (or equivalent:
``if self.tracer.enabled:``, an early ``if metrics is None: return``).

Private helpers may rely on their callers holding the guard -- the rule
accepts an unguarded touch inside ``_helper`` when *every* in-module
call site of ``_helper`` is itself guarded (transitively).  Public
functions must guard internally: external callers can't be audited.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import (
    Finding,
    Module,
    Rule,
    register,
    terminal_name,
)

_KIND_NAMES = ("tracer", "metrics")
_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _guard_label(kind: str) -> str:
    return ("if tracing: / if tracer.enabled:" if kind == "tracer"
            else "if metrics is not None:")


class _Scope:
    """Per-function alias/flag environment for one observable kind."""

    def __init__(self, func: ast.AST | None, module: Module):
        self.func = func
        # names that *are* the tracer/metrics object in this scope
        self.names: dict[str, set[str]] = {
            k: {k} for k in _KIND_NAMES
        }
        # boolean flags holding a guard result (tracing = tracer.enabled)
        self.flags: dict[str, set[str]] = {
            "tracer": {"tracing"}, "metrics": set(),
        }
        body = module.tree.body if func is None else func.body
        for node in _walk_scope(body):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if not targets:
                continue
            kind = self.kind_of(node.value)
            if kind is not None:
                self.names[kind].update(targets)
                continue
            for k in _KIND_NAMES:
                if _positive_guard(node.value, k, self):
                    self.flags[k].update(targets)

    def kind_of(self, node: ast.AST) -> str | None:
        """Which observable object an expression terminates in."""
        name = terminal_name(node)
        if name is None:
            return None
        for kind in _KIND_NAMES:
            if name in self.names[kind]:
                return kind
        return None


def _walk_scope(body: list[ast.stmt]):
    """Walk statements without descending into nested functions."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _FuncDef):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _positive_guard(test: ast.AST, kind: str, scope: _Scope) -> bool:
    """Does ``test`` being truthy imply the kind is enabled/attached?"""
    if isinstance(test, ast.Name):
        return (test.id in scope.flags[kind]
                or (kind == "metrics" and test.id in scope.names[kind])
                or (kind == "tracer" and test.id in scope.names[kind]))
    if isinstance(test, ast.Attribute):
        return (test.attr == "enabled"
                and scope.kind_of(test.value) == kind)
    if isinstance(test, ast.Compare):
        return (
            len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and scope.kind_of(test.left) == kind
        )
    if isinstance(test, ast.BoolOp):
        values = [
            _positive_guard(v, kind, scope) for v in test.values
        ]
        return (any(values) if isinstance(test.op, ast.And)
                else all(values))
    return False


def _negative_guard(test: ast.AST, kind: str, scope: _Scope) -> bool:
    """Does ``test`` being truthy imply the kind is disabled/absent?"""
    if isinstance(test, ast.Compare):
        return (
            len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and scope.kind_of(test.left) == kind
        )
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _positive_guard(test.operand, kind, scope)
    return False


def _terminates(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Continue,
                             ast.Break))


@register
class ObsGuardRule(Rule):
    """Every tracer/metrics touch in the hot paths is guarded."""

    rule_id = "OBS-GUARD"
    invariant = ("tracer./metrics. touches in scheduler/node/"
                 "master-queue hot paths sit under if tracing: / "
                 "if metrics is not None: (zero-cost disabled)")
    include = ("src/repro/cluster/*", "src/repro/cli.py")

    def check(self, module: Module) -> Iterable[Finding]:
        scopes: dict[ast.AST | None, _Scope] = {}

        def scope_for(func: ast.AST | None) -> _Scope:
            if func not in scopes:
                scopes[func] = _Scope(func, module)
            return scopes[func]

        funcs = {
            f.name: f for f in module.functions()
        }
        dup_names = {
            name for name in funcs
            if sum(1 for f in module.functions() if f.name == name) > 1
        }

        # direct unguarded touches per function (None = module level)
        unguarded: dict[ast.AST | None, list[tuple[ast.AST, str]]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr == "enabled":
                continue
            func = module.enclosing_function(node)
            scope = scope_for(func)
            kind = scope.kind_of(node.value)
            if kind is None:
                continue
            # skip the target side of `self.tracer.x = ...`? there is
            # none in practice; reads and calls are what we guard.
            if not self._is_guarded(module, node, kind, scope):
                unguarded.setdefault(func, []).append((node, kind))

        caller_safe_memo: dict[tuple[str, str], bool] = {}

        def call_guarded(call: ast.Call, kind: str) -> bool:
            func = module.enclosing_function(call)
            scope = scope_for(func)
            if self._is_guarded(module, call, kind, scope):
                return True
            if func is None or not func.name.startswith("_"):
                return False
            return callers_guarded(func.name, kind)

        def callers_guarded(fname: str, kind: str) -> bool:
            """All in-module call sites of ``fname`` hold the guard."""
            key = (fname, kind)
            if key in caller_safe_memo:
                return caller_safe_memo[key]
            caller_safe_memo[key] = False  # cycles are unguarded
            if fname in dup_names:
                return False
            sites = module.call_sites(fname)
            ok = bool(sites) and all(
                call_guarded(site, kind) for site in sites
            )
            caller_safe_memo[key] = ok
            return ok

        findings: list[Finding] = []
        for func, touches in unguarded.items():
            fname = getattr(func, "name", None)
            helper = (fname is not None and fname.startswith("_")
                      and fname not in dup_names)
            for node, kind in touches:
                if helper and callers_guarded(fname, kind):
                    continue
                where = (f"helper '{fname}' is not guarded at every "
                         f"call site" if helper
                         else "unguarded hot-path hook")
                findings.append(self.finding(
                    module, node,
                    f"{kind} touch outside a "
                    f"'{_guard_label(kind)}' guard ({where}); "
                    "disabled observability must cost one dead branch",
                ))
        return findings

    def _is_guarded(self, module: Module, node: ast.AST, kind: str,
                    scope: _Scope) -> bool:
        # Lexical guard: an ancestor branch conditioned on the kind.
        prev: ast.AST = node
        for anc in module.ancestors(node):
            if isinstance(anc, _FuncDef):
                break
            if isinstance(anc, ast.If):
                if prev in anc.body and _positive_guard(
                    anc.test, kind, scope
                ):
                    return True
                if prev in anc.orelse and _negative_guard(
                    anc.test, kind, scope
                ):
                    return True
            elif isinstance(anc, ast.IfExp):
                if prev is anc.body and _positive_guard(
                    anc.test, kind, scope
                ):
                    return True
                if prev is anc.orelse and _negative_guard(
                    anc.test, kind, scope
                ):
                    return True
            elif isinstance(anc, ast.While):
                if prev in anc.body and _positive_guard(
                    anc.test, kind, scope
                ):
                    return True
            elif isinstance(anc, ast.BoolOp) and isinstance(
                anc.op, ast.And
            ):
                idx = next(
                    (i for i, v in enumerate(anc.values) if v is prev),
                    None,
                )
                if idx is not None and any(
                    _positive_guard(v, kind, scope)
                    for v in anc.values[:idx]
                ):
                    return True
            prev = anc
        # Early-exit guard: `if metrics is None: return` before us at
        # the top level of the enclosing function.
        func = scope.func
        if func is None:
            return False
        top = prev if prev in getattr(func, "body", []) else None
        if top is None:
            for anc in [node] + list(module.ancestors(node)):
                if anc in func.body:
                    top = anc
                    break
        if top is None:
            return False
        for stmt in func.body:
            if stmt is top:
                return False
            if (
                isinstance(stmt, ast.If)
                and _negative_guard(stmt.test, kind, scope)
                and stmt.body and _terminates(stmt.body[-1])
            ):
                return True
        return False
