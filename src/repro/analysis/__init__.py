"""Project invariant linter: AST rules enforcing the simulator's
structural guarantees (determinism, zero-cost observability, trace
store lock discipline).  Run it as ``python -m repro lint``."""

from repro.analysis.engine import (
    Finding,
    Linter,
    Module,
    Rule,
    all_rules,
    register,
    rule_catalog,
)

__all__ = [
    "Finding",
    "Linter",
    "Module",
    "Rule",
    "all_rules",
    "register",
    "rule_catalog",
]
