"""``python -m repro lint``: run the invariant rules over the repo.

Exit status: 0 when clean (warnings allowed), 1 on any error-severity
finding, 2 on usage errors.  ``--format json`` emits a machine-readable
report (the CI ``lint`` stage uploads it as an artifact).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import (
    SEVERITY_ERROR,
    Linter,
    iter_python_files,
    render_json,
    render_text,
)

#: Scanned when no paths are given (relative to the invocation cwd).
DEFAULT_PATHS = ("src", "scripts", "benchmarks", "examples", "tests")


def run_lint(paths: list[str] | None, fmt: str = "text") -> int:
    if not paths:
        paths = [p for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print("repro lint: no default paths found; pass files or "
                  "directories explicitly")
            return 2
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path(s): {', '.join(missing)}")
        return 2
    files = list(iter_python_files(paths))
    linter = Linter()
    findings = []
    for display, path in files:
        findings.extend(linter.lint_file(path, display))
    findings.sort()
    if fmt == "json":
        print(render_json(findings, len(files), list(paths)))
    else:
        print(render_text(findings, len(files)))
    has_errors = any(f.severity == SEVERITY_ERROR for f in findings)
    return 1 if has_errors else 0
