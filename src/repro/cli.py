"""Command-line interface: regenerate the paper's experiments.

    python -m repro table1
    python -m repro pvc --profile commercial --sf 0.05
    python -m repro qed --sf 0.05 --batches 35 40 45 50
    python -m repro disk
    python -m repro warmcold --sf 0.05
    python -m repro experiments --sf 0.02      # everything, compact

Each command prints a paper-vs-measured table (see
:mod:`repro.measurement.report`) and exits non-zero if any reproduction
check fails its documented tolerance.
"""

from __future__ import annotations

import argparse
import sys

from repro.calibration import fit, targets
from repro.measurement.report import ComparisonTable


def _table_from_residuals(title: str, residuals) -> ComparisonTable:
    table = ComparisonTable(title)
    for r in residuals:
        table.add(r.label, r.paper, r.measured)
    return table


def cmd_table1(_args) -> int:
    table = _table_from_residuals(
        "Table 1: system power breakdown (wall W)",
        fit.table1_residuals(),
    )
    table.print()
    bad = [
        r for r in fit.table1_residuals()
        if r.abs_error > targets.TABLE1_WATTS_TOLERANCE
    ]
    return 1 if bad else 0


def cmd_pvc(args) -> int:
    residuals = fit.pvc_residuals(args.profile, args.sf)
    table = _table_from_residuals(
        f"PVC sweep: {args.profile} profile (ratios vs stock)", residuals
    )
    table.print()
    bad = [
        r for r in residuals
        if r.abs_error > targets.PVC_RATIO_TOLERANCE
    ]
    for r in bad:
        print(f"OUT OF TOLERANCE: {r.label} "
              f"(paper {r.paper:.3f}, measured {r.measured:.3f})")
    return 1 if bad else 0


def cmd_qed(args) -> int:
    residuals = fit.qed_residuals(
        args.sf, batch_sizes=tuple(args.batches)
    )
    table = _table_from_residuals(
        "QED vs sequential (Figure 6 ratios)", residuals
    )
    table.print()
    bad = [
        r for r in residuals
        if r.abs_error > targets.QED_RATIO_TOLERANCE
    ]
    return 1 if bad else 0


def cmd_disk(_args) -> int:
    residuals = fit.fig5_residuals()
    table = _table_from_residuals(
        "Figure 5: random-read improvement factors", residuals
    )
    table.print()
    bad = [
        r for r in residuals
        if r.rel_error > targets.FIG5_IMPROVEMENT_REL_TOLERANCE
    ]
    return 1 if bad else 0


def cmd_warmcold(args) -> int:
    residuals = fit.warm_cold_residuals(args.sf)
    table = _table_from_residuals(
        "Section 3.5: warm vs cold (SF-1.0 magnitudes)", residuals
    )
    table.print()
    bad = [
        r for r in residuals
        if r.rel_error > targets.WARMCOLD_REL_TOLERANCE
    ]
    return 1 if bad else 0


def cmd_experiments(args) -> int:
    status = 0
    status |= cmd_table1(args)
    for profile in ("commercial", "mysql"):
        args.profile = profile
        status |= cmd_pvc(args)
    status |= cmd_disk(args)
    status |= cmd_warmcold(args)
    args.batches = list(targets.QED_BATCH_SIZES)
    status |= cmd_qed(args)
    print("\nall experiments within tolerance"
          if status == 0 else "\nSOME EXPERIMENTS OUT OF TOLERANCE")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the CIDR'09 ecoDB experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1 power breakdown")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("pvc", help="PVC sweep (Figures 1-3)")
    p.add_argument("--profile", choices=("commercial", "mysql"),
                   default="commercial")
    p.add_argument("--sf", type=float, default=0.02,
                   help="TPC-H scale factor")
    p.set_defaults(func=cmd_pvc)

    p = sub.add_parser("qed", help="QED comparison (Figure 6)")
    p.add_argument("--sf", type=float, default=0.05)
    p.add_argument("--batches", type=int, nargs="+",
                   default=list(targets.QED_BATCH_SIZES))
    p.set_defaults(func=cmd_qed)

    p = sub.add_parser("disk", help="disk access patterns (Figure 5)")
    p.set_defaults(func=cmd_disk)

    p = sub.add_parser("warmcold", help="warm vs cold runs (Sec 3.5)")
    p.add_argument("--sf", type=float, default=0.02)
    p.set_defaults(func=cmd_warmcold)

    p = sub.add_parser("experiments", help="run everything")
    p.add_argument("--sf", type=float, default=0.02)
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
