"""Command-line interface: regenerate the paper's experiments.

    python -m repro table1
    python -m repro pvc --profile commercial --sf 0.05
    python -m repro qed --sf 0.05 --batches 35 40 45 50
    python -m repro disk
    python -m repro warmcold --sf 0.05
    python -m repro cluster --nodes 8 --arrivals 500 --policy consolidate
    python -m repro cluster --profile diurnal --policy dynamic \
        --fleet examples/hetero_fleet.json --window 30
    python -m repro cluster --qed master --qed-threshold 20 \
        --qed-max-wait 0.3 --qed-placement hash
    python -m repro cluster --policy dynamic --sla 1.0 \
        --faults examples/fault_plan.json --retry-max 4
    python -m repro cluster --policy least --shards 8 --replicas 2 \
        --quorum majority --faults examples/fault_plan.json
    python -m repro cluster --placement examples/placement.json \
        --policy dynamic
    python -m repro lint                       # invariant linter
    python -m repro experiments --sf 0.02      # everything, compact

Each reproduction command prints a paper-vs-measured table (see
:mod:`repro.measurement.report`) and exits non-zero if any check fails
its documented tolerance.  ``cluster`` simulates serving an arrival
stream across a fleet of simulated servers with batched compiled-trace
playback (exits non-zero if a power-capped run overshoots its cap).
"""

from __future__ import annotations

import argparse
import sys

from repro.calibration import fit, targets
from repro.measurement.report import ComparisonTable


def _table_from_residuals(title: str, residuals) -> ComparisonTable:
    table = ComparisonTable(title)
    for r in residuals:
        table.add(r.label, r.paper, r.measured)
    return table


def cmd_table1(_args) -> int:
    table = _table_from_residuals(
        "Table 1: system power breakdown (wall W)",
        fit.table1_residuals(),
    )
    table.print()
    bad = [
        r for r in fit.table1_residuals()
        if r.abs_error > targets.TABLE1_WATTS_TOLERANCE
    ]
    return 1 if bad else 0


def cmd_pvc(args) -> int:
    residuals = fit.pvc_residuals(args.profile, args.sf)
    table = _table_from_residuals(
        f"PVC sweep: {args.profile} profile (ratios vs stock)", residuals
    )
    table.print()
    bad = [
        r for r in residuals
        if r.abs_error > targets.PVC_RATIO_TOLERANCE
    ]
    for r in bad:
        print(f"OUT OF TOLERANCE: {r.label} "
              f"(paper {r.paper:.3f}, measured {r.measured:.3f})")
    return 1 if bad else 0


def cmd_qed(args) -> int:
    residuals = fit.qed_residuals(
        args.sf, batch_sizes=tuple(args.batches)
    )
    table = _table_from_residuals(
        "QED vs sequential (Figure 6 ratios)", residuals
    )
    table.print()
    bad = [
        r for r in residuals
        if r.abs_error > targets.QED_RATIO_TOLERANCE
    ]
    return 1 if bad else 0


def cmd_disk(_args) -> int:
    residuals = fit.fig5_residuals()
    table = _table_from_residuals(
        "Figure 5: random-read improvement factors", residuals
    )
    table.print()
    bad = [
        r for r in residuals
        if r.rel_error > targets.FIG5_IMPROVEMENT_REL_TOLERANCE
    ]
    return 1 if bad else 0


def cmd_warmcold(args) -> int:
    residuals = fit.warm_cold_residuals(args.sf)
    table = _table_from_residuals(
        "Section 3.5: warm vs cold (SF-1.0 magnitudes)", residuals
    )
    table.print()
    bad = [
        r for r in residuals
        if r.rel_error > targets.WARMCOLD_REL_TOLERANCE
    ]
    return 1 if bad else 0


def _load_fleet(path: str):
    """Node specs from a fleet-description JSON file.

    Schema: ``{"groups": [{"count": 2, "prefix": "big", "hw": "paper",
    "underclock_pct": 0, "downgrade": "none", "capacity": 1.0,
    "sleep_wall_w": 3.5, "wake_latency_s": 30.0}, ...]}`` -- every key
    but ``count`` optional.
    """
    import json

    from repro.cluster import NodeGroup, hetero_fleet
    from repro.hardware.cpu import PvcSetting, VoltageDowngrade

    with open(path) as handle:
        doc = json.load(handle)
    groups = []
    for i, raw in enumerate(doc.get("groups", [])):
        extra = set(raw) - {
            "count", "prefix", "hw", "underclock_pct", "downgrade",
            "capacity", "sleep_wall_w", "wake_latency_s",
        }
        if extra:
            raise ValueError(f"fleet group {i}: unknown keys {sorted(extra)}")
        groups.append(NodeGroup(
            count=int(raw["count"]),
            prefix=raw.get("prefix", f"g{i}n"),
            hw=raw.get("hw", "paper"),
            setting=PvcSetting(
                float(raw.get("underclock_pct", 0.0)),
                VoltageDowngrade(raw.get("downgrade", "none")),
            ),
            capacity=float(raw.get("capacity", 1.0)),
            sleep_wall_w=float(raw.get("sleep_wall_w", 3.5)),
            wake_latency_s=float(raw.get("wake_latency_s", 30.0)),
        ))
    return hetero_fleet(groups)


def _build_stream(args, queries: list[str]):
    """(arrivals, schedule-or-None) for the chosen load profile."""
    from repro.workloads.arrivals import (
        bursty_arrivals,
        diurnal_schedule,
        poisson_arrivals,
        ramp_schedule,
        rate_schedule_arrivals,
        uniform_arrivals,
    )

    cycled = [queries[i % len(queries)] for i in range(args.arrivals)]
    if args.profile == "poisson":
        return poisson_arrivals(
            cycled, args.mean_interarrival, seed=args.seed
        ), None
    if args.profile == "uniform":
        return uniform_arrivals(cycled, args.mean_interarrival), None
    if args.profile == "bursty":
        return bursty_arrivals(
            cycled, burst_size=max(1, args.arrivals // 10),
            burst_gap_s=args.mean_interarrival * 20,
        ), None
    if args.profile == "diurnal":
        schedule = diurnal_schedule(
            args.base_rate, args.peak_rate, args.period, args.horizon
        )
    else:  # ramp
        schedule = ramp_schedule(args.base_rate, args.peak_rate,
                                 args.horizon)
    return rate_schedule_arrivals(queries, schedule, seed=args.seed), schedule


def cmd_cluster(args) -> int:
    from repro.cluster import (
        AdaptivePvcRouter,
        ClusterSimulator,
        ConsolidatePlacement,
        ConsolidateRouter,
        DynamicConsolidateRouter,
        HashSplitPlacement,
        HashSplitRouter,
        LeastLoadedPlacement,
        LeastLoadedRouter,
        MasterQueue,
        PowerCapRouter,
        RoundRobinRouter,
        uniform_fleet,
    )
    from repro.core.qed.policy import BatchPolicy
    from repro.db.profiles import mysql_profile
    from repro.workloads.runner import TraceCache
    from repro.workloads.selection import selection_workload
    from repro.workloads.tpch.generator import tpch_database

    if args.qed_batch is not None and args.qed_threshold is not None:
        print("error: --qed-batch is a deprecated alias of "
              "--qed-threshold; pass one, not both", file=sys.stderr)
        return 2
    threshold = (
        args.qed_threshold if args.qed_threshold is not None
        else args.qed_batch
    )
    if args.qed is None:
        # Back-compat: --qed-batch alone means per-node queues.  The
        # canonical --qed-threshold never implies a mode on its own.
        if args.qed_batch is None and args.qed_threshold is not None:
            print("error: --qed-threshold needs --qed master|node",
                  file=sys.stderr)
            return 2
        qed_mode = "node" if args.qed_batch is not None else "off"
    else:
        qed_mode = args.qed
        if qed_mode != "node" and args.qed_batch is not None:
            print("error: --qed-batch implies --qed node and "
                  f"contradicts --qed {qed_mode}; use --qed-threshold",
                  file=sys.stderr)
            return 2
        if qed_mode == "off" and threshold is not None:
            print("error: --qed off contradicts --qed-threshold; "
                  "drop one", file=sys.stderr)
            return 2
    if qed_mode != "off" and threshold is None:
        print("error: --qed master|node needs --qed-threshold (the "
              "batch-dispatch threshold)", file=sys.stderr)
        return 2
    if qed_mode == "off" and args.qed_max_wait is not None:
        print("error: --qed-max-wait needs --qed master|node (no queue "
              "exists without a QED mode)", file=sys.stderr)
        return 2
    if args.qed_placement is not None and qed_mode != "master":
        print("error: --qed-placement only applies to --qed master "
              "(per-node queues dispatch on their own node)",
              file=sys.stderr)
        return 2
    if (
        qed_mode == "master"
        and args.policy in ("consolidate", "dynamic", "adaptive")
        and (args.qed_placement or "least") != "consolidate"
    ):
        print("error: a consolidate- or adaptive-family --policy under "
              "--qed master needs --qed-placement consolidate (the "
              "policy only acts on routed dispatches)", file=sys.stderr)
        return 2
    if args.policy == "powercap" and qed_mode != "off":
        print("error: the powercap policy cannot cap QED-queued work "
              "(batch dispatch re-times it); drop --qed or pick "
              "another policy", file=sys.stderr)
        return 2
    if qed_mode == "node" and args.fleet is not None:
        print("error: --qed node cannot apply to a --fleet description "
              "(its groups carry no queue policy); use --qed master",
              file=sys.stderr)
        return 2
    if args.faults is None and (
        args.retry_max is not None or args.retry_backoff is not None
    ):
        print("error: --retry-max/--retry-backoff tune the fault "
              "recovery policy and need --faults", file=sys.stderr)
        return 2
    if args.placement is not None and (
        args.shards is not None or args.replicas is not None
        or args.quorum is not None
    ):
        print("error: --placement loads a full map and excludes "
              "--shards/--replicas/--quorum", file=sys.stderr)
        return 2
    if args.shards is None and (
        args.replicas is not None or args.quorum is not None
    ):
        print("error: --replicas/--quorum shape a generated placement "
              "and need --shards", file=sys.stderr)
        return 2
    if args.scheduler == "vectorized" and args.playback == "loop":
        print("error: --playback loop replays per-piece timelines the "
              "vectorized scheduler never materializes; use "
              "--scheduler auto|legacy", file=sys.stderr)
        return 2
    if args.trace_store != "npz" and args.trace_cache is None:
        print("error: --trace-store picks the --trace-cache layout and "
              "needs --trace-cache DIR", file=sys.stderr)
        return 2
    # Validate every flag-derived object *before* the expensive
    # database build so bad flags fail fast with a clean message.
    try:
        queries = selection_workload(args.distinct).queries
        stream, schedule = _build_stream(args, queries)
        if args.policy == "spread":
            router = RoundRobinRouter()
        elif args.policy == "least":
            router = LeastLoadedRouter()
        elif args.policy == "hash":
            router = HashSplitRouter()
        elif args.policy == "consolidate":
            router = ConsolidateRouter(max_backlog_s=args.max_backlog)
        elif args.policy == "dynamic":
            router = DynamicConsolidateRouter(
                max_backlog_s=args.max_backlog,
                target_utilization=args.target_util,
                hysteresis=args.hysteresis,
                min_awake=args.min_awake,
                schedule=schedule,
            )
        elif args.policy == "adaptive":
            router = AdaptivePvcRouter(deadline_s=args.deadline)
        else:
            router = PowerCapRouter(
                cap_w=args.cap_w, max_delay_s=args.max_delay
            )
        policy = (
            BatchPolicy(threshold, max_wait_s=args.qed_max_wait)
            if qed_mode != "off" else None
        )
        master_queue = None
        if qed_mode == "master":
            placement = {
                "least": LeastLoadedPlacement,
                "consolidate": ConsolidatePlacement,
                "hash": HashSplitPlacement,
            }[args.qed_placement or "least"]()
            master_queue = MasterQueue(policy, placement=placement)
        if args.fleet is not None:
            specs = _load_fleet(args.fleet)
        else:
            specs = uniform_fleet(
                args.nodes,
                wake_latency_s=args.wake_latency,
                queue_policy=policy if qed_mode == "node" else None,
            )
        if args.window is not None and args.window <= 0:
            raise ValueError("--window must be positive")
        # An empty stream is a valid (if degenerate) run: the simulator
        # returns a well-formed zero-arrival measurement.
        fault_plan = None
        retry = None
        if args.faults is not None:
            from repro.cluster import RetryPolicy, load_fault_plan

            fault_plan = load_fault_plan(args.faults)
            retry = RetryPolicy(
                max_attempts=(
                    args.retry_max if args.retry_max is not None else 3
                ),
                backoff_s=(
                    args.retry_backoff
                    if args.retry_backoff is not None else 1.0
                ),
            )
        placement_map = None
        if args.placement is not None:
            from repro.cluster import load_placement

            placement_map = load_placement(args.placement)
        elif args.shards is not None:
            from repro.cluster import generate_placement

            quorum = 1
            if args.quorum is not None:
                quorum = (
                    "majority" if args.quorum == "majority"
                    else int(args.quorum)
                )
            placement_map = generate_placement(
                specs, shards=args.shards,
                replicas=(
                    args.replicas if args.replicas is not None else 1
                ),
                quorum=quorum,
            )
    except (ValueError, OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    tracer = None
    metrics = None
    if args.trace is not None:
        from repro.obs import SpanTracer

        tracer = SpanTracer()
    if args.metrics is not None:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry(
            window_s=args.window if args.window is not None else 30.0
        )

    print(f"building lineitem database at SF {args.sf} ...")
    db = tpch_database(args.sf, mysql_profile(), seed=0,
                       tables=["lineitem"])
    trace_cache = (
        TraceCache.for_workload(args.trace_cache, "mysql", args.sf,
                                seed=0, tables=("lineitem",),
                                columnar=args.trace_store == "columnar")
        if args.trace_cache else None
    )
    sim = ClusterSimulator(db, specs, router, trace_cache=trace_cache,
                           master_queue=master_queue, faults=fault_plan,
                           retry=retry, placement=placement_map,
                           tracer=tracer, metrics=metrics)
    vectorized = {"auto": None, "vectorized": True,
                  "legacy": False}[args.scheduler]
    try:
        m = sim.run(stream, mode=args.playback, vectorized=vectorized)
    except ValueError as exc:
        # e.g. a power cap below the fleet's idle floor, or --scheduler
        # vectorized on a configuration the fast path cannot express
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"\ncluster: {len(specs)} nodes, {len(stream)} arrivals "
          f"({args.profile}), policy={args.policy}, "
          f"playback={args.playback}")
    print(f"  {'node':8s} {'queries':>7} {'util':>6} {'busy s':>8} "
          f"{'idle s':>8} {'sleep s':>8} {'energy J':>10}")
    for n in m.nodes:
        print(f"  {n.name:8s} {n.queries:7d} {n.utilization:6.1%} "
              f"{n.busy_s:8.2f} {n.idle_s:8.2f} {n.sleep_s:8.2f} "
              f"{n.wall_joules:10.1f}")
    print(f"  served {m.served}, shed {len(m.shed)}, "
          f"awake nodes {m.awake_nodes}/{len(m.nodes)}, "
          f"re-sleeps {m.re_sleeps}")
    if placement_map is not None:
        shard_count = sum(
            tp.shards for tp in placement_map.tables.values()
        )
        print(f"  placement      : {len(placement_map.tables)} "
              f"table(s), {shard_count} shards over "
              f"{len(placement_map.node_names)} nodes")
    if m.qed is not None:
        q = m.qed
        print(f"  QED ({q.mode}): {q.batches} batches, mean size "
              f"{q.mean_batch_size:.1f}, {q.merged_windows} merged / "
              f"{q.singleton_windows} singleton windows, "
              f"{q.fallback_batches} non-mergeable fallbacks")
        print(f"  {'partition':44s} {'queries':>7} {'batches':>7} "
              f"{'mean':>5} {'max':>4} {'merged':>6} {'fallbk':>6}")
        for p in q.partitions:
            print(f"  {p.partition[:44]:44s} {p.queries:7d} "
                  f"{p.batches:7d} {p.mean_batch_size:5.1f} "
                  f"{p.max_batch:4d} {p.merged_windows:6d} "
                  f"{p.fallback_batches:6d}")
    print(f"  horizon        : {m.horizon_s:10.2f} s")
    print(f"  wall energy    : {m.wall_joules:10.1f} J "
          f"(avg {m.avg_power_w:.1f} W, peak model {m.peak_power_w:.1f} W)")
    print(f"  EDP            : {m.edp:10.1f} J*s")
    print(f"  response p50   : {m.p50_response_s*1e3:10.1f} ms")
    print(f"  response p95   : {m.p95_response_s*1e3:10.1f} ms")
    print(f"  response p99   : {m.p99_response_s*1e3:10.1f} ms")
    if args.sla is not None:
        print(f"  SLA {args.sla:.3f}s misses: "
              f"{m.sla_violations(args.sla)}")
    if m.faults is not None:
        f = m.faults
        print(f"  faults         : {f.crashes} crashes, "
              f"{f.failed_wakes} failed wakes, {f.retries} retries "
              f"({f.requeued} requeued from crashes), "
              f"{f.dead_lettered} dead-lettered")
        print(f"  wasted work    : {f.wasted_busy_s:10.2f} s busy, "
              f"{f.wasted_joules:.1f} J written off")
        if f.re_replications:
            print(f"  re-replication : {f.re_replications} shard "
                  f"copies, {f.copy_s:.2f} s copy work, "
                  f"{f.copy_joules:.1f} J")
        if args.sla is not None:
            split = m.sla_split(args.sla)
            print(f"  SLA split      : affected "
                  f"{split['affected_met']:.0f}/"
                  f"{split['affected_total']:.0f} "
                  f"({split['affected_attainment']:.1%}), unaffected "
                  f"{split['unaffected_met']:.0f}/"
                  f"{split['unaffected_total']:.0f} "
                  f"({split['unaffected_attainment']:.1%})")
    if args.window is not None:
        print(f"\n  phase report ({args.window:g} s windows):")
        print(f"  {'window':>14} {'arrivals':>8} {'modeled J':>10} "
              f"{'avg W':>7} {'awake n·s':>9} {'re-sleep':>8} "
              f"{'p95 ms':>8}")
        for w in m.window_report(args.window):
            print(f"  [{w.start_s:5.0f},{w.end_s:6.0f}) {w.arrivals:8d} "
                  f"{w.modeled_joules:10.1f} {w.avg_power_w:7.1f} "
                  f"{w.awake_node_s:9.1f} {w.re_sleeps:8d} "
                  f"{w.p95_response_s*1e3:8.1f}")
    if m.run_id is not None:
        print(f"  run id         : {m.run_id}")
    if tracer is not None:
        from repro.obs import write_trace

        meta = write_trace(args.trace, tracer, measurement=m)
        att = meta["attribution"]
        print(f"  trace          : {args.trace} "
              f"({len(tracer.spans)} spans)")
        print(f"  energy reconcile: {att['reconciliation_abs_j']:.3e} J "
              f"(rel {att['reconciliation_rel']:.3e})")
    if metrics is not None:
        from repro.obs import write_metrics

        write_metrics(args.metrics, metrics)
        print(f"  metrics        : {args.metrics} "
              f"({len(metrics.samples)} samples, "
              f"{metrics.window_s:g} s windows)")
    if m.cap_w is not None:
        print(f"  power cap      : {m.cap_w:.1f} W "
              f"(overshoot {m.power_cap_overshoot_w:.2f} W)")
        return 1 if m.power_cap_overshoot_w > 0 else 0
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args.paths, fmt=args.format)


def cmd_obs_report(args) -> int:
    from repro.obs import (
        load_trace,
        render_attribution,
        render_span_stats,
        span_stats,
        validate_trace,
    )

    try:
        meta, spans = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    errors = validate_trace(meta, spans)
    print(f"trace: {args.trace}")
    print(f"  run id  : {meta.get('run_id')}")
    print(f"  horizon : {float(meta.get('horizon_s', 0.0)):.2f} s")
    print(f"  spans   : {len(spans)}")
    stats = span_stats(spans)
    if stats:
        print()
        print(render_span_stats(stats))
    attribution = meta.get("attribution")
    if attribution is not None:
        print()
        print(render_attribution(attribution))
    if errors:
        print()
        for err in errors:
            print(f"INVALID: {err}", file=sys.stderr)
        return 1
    print("\ntrace valid")
    return 0


def cmd_experiments(args) -> int:
    status = 0
    status |= cmd_table1(args)
    for profile in ("commercial", "mysql"):
        args.profile = profile
        status |= cmd_pvc(args)
    status |= cmd_disk(args)
    status |= cmd_warmcold(args)
    args.batches = list(targets.QED_BATCH_SIZES)
    status |= cmd_qed(args)
    print("\nall experiments within tolerance"
          if status == 0 else "\nSOME EXPERIMENTS OUT OF TOLERANCE")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the CIDR'09 ecoDB experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1 power breakdown")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("pvc", help="PVC sweep (Figures 1-3)")
    p.add_argument("--profile", choices=("commercial", "mysql"),
                   default="commercial")
    p.add_argument("--sf", type=float, default=0.02,
                   help="TPC-H scale factor")
    p.set_defaults(func=cmd_pvc)

    p = sub.add_parser("qed", help="QED comparison (Figure 6)")
    p.add_argument("--sf", type=float, default=0.05)
    p.add_argument("--batches", type=int, nargs="+",
                   default=list(targets.QED_BATCH_SIZES))
    p.set_defaults(func=cmd_qed)

    p = sub.add_parser("disk", help="disk access patterns (Figure 5)")
    p.set_defaults(func=cmd_disk)

    p = sub.add_parser("warmcold", help="warm vs cold runs (Sec 3.5)")
    p.add_argument("--sf", type=float, default=0.02)
    p.set_defaults(func=cmd_warmcold)

    p = sub.add_parser(
        "cluster",
        help="simulate an arrival stream across a fleet",
    )
    p.add_argument("--sf", type=float, default=0.01,
                   help="TPC-H scale factor")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--arrivals", type=int, default=200)
    p.add_argument("--distinct", type=int, default=20,
                   help="distinct selection queries cycled by arrivals")
    p.add_argument("--policy",
                   choices=("spread", "least", "hash", "consolidate",
                            "dynamic", "adaptive", "powercap"),
                   default="spread")
    p.add_argument("--profile",
                   choices=("poisson", "uniform", "bursty", "diurnal",
                            "ramp"),
                   default="poisson",
                   help="arrival load profile (diurnal/ramp are "
                        "rate-schedule driven; --arrivals is ignored)")
    p.add_argument("--fleet", default=None, metavar="FLEET.json",
                   help="heterogeneous fleet description (overrides "
                        "--nodes/--wake-latency; composes with "
                        "--qed master, excludes --qed node)")
    p.add_argument("--mean-interarrival", type=float, default=0.05,
                   help="poisson/uniform mean inter-arrival time (s)")
    p.add_argument("--base-rate", type=float, default=2.0,
                   help="diurnal trough / ramp start rate (q/s)")
    p.add_argument("--peak-rate", type=float, default=20.0,
                   help="diurnal crest / ramp end rate (q/s)")
    p.add_argument("--period", type=float, default=120.0,
                   help="diurnal: seconds per day/night cycle")
    p.add_argument("--horizon", type=float, default=240.0,
                   help="diurnal/ramp: stream length (s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--wake-latency", type=float, default=30.0,
                   help="sleep-to-awake transition (s)")
    p.add_argument("--max-backlog", type=float, default=1.0,
                   help="consolidate/dynamic: per-node backlog cap (s)")
    p.add_argument("--target-util", type=float, default=0.7,
                   help="dynamic: awake-set sizing target utilization")
    p.add_argument("--hysteresis", type=float, default=0.3,
                   help="dynamic: re-sleep hysteresis band")
    p.add_argument("--min-awake", type=int, default=1,
                   help="dynamic: never sleep below this many nodes")
    p.add_argument("--deadline", type=float, default=0.5,
                   help="adaptive: per-query response deadline (s)")
    p.add_argument("--window", type=float, default=None,
                   help="print a phase report sliced in windows (s)")
    p.add_argument("--cap-w", type=float, default=500.0,
                   help="powercap: fleet wall-power cap (W)")
    p.add_argument("--max-delay", type=float, default=None,
                   help="powercap: shed if delayed more than this (s)")
    p.add_argument("--qed", choices=("master", "node", "off"),
                   default=None,
                   help="QED admission queueing: one master queue on "
                        "the coordinator partitioned by mergeable "
                        "template (the paper's design), a private "
                        "queue per node, or none")
    p.add_argument("--qed-threshold", type=int, default=None,
                   help="QED batch-dispatch threshold (queries)")
    p.add_argument("--qed-max-wait", type=float, default=None,
                   help="QED queue timeout (s): a partial batch "
                        "dispatches once its oldest query waited this "
                        "long")
    p.add_argument("--qed-placement",
                   choices=("least", "consolidate", "hash"),
                   default=None,
                   help="master-queue batch placement (default least): "
                        "least-loaded awake node, delegate to the "
                        "routing policy (cooperates with dynamic "
                        "consolidation), or hash-split one merged "
                        "batch across nodes")
    p.add_argument("--qed-batch", type=int, default=None,
                   help="deprecated alias: per-node threshold "
                        "(implies --qed node)")
    p.add_argument("--sla", type=float, default=None,
                   help="report response-time SLA misses (s)")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="fault-injection plan: seeded crashes, wake "
                        "failures, stragglers, unavailability windows")
    p.add_argument("--retry-max", type=int, default=None,
                   help="faults: retry attempts before a lost query is "
                        "dead-lettered (default 3)")
    p.add_argument("--retry-backoff", type=float, default=None,
                   help="faults: base retry backoff in seconds, "
                        "doubling per attempt (default 1.0)")
    p.add_argument("--placement", default=None, metavar="PLAN.json",
                   help="data-placement map: partitioned tables with "
                        "replicated shards pinned to named nodes "
                        "(excludes --shards/--replicas/--quorum)")
    p.add_argument("--shards", type=int, default=None,
                   help="generate a default placement: hash-partition "
                        "lineitem into this many shards spread over "
                        "the fleet by chained declustering")
    p.add_argument("--replicas", type=int, default=None,
                   help="replicas per generated shard (default 1; "
                        "needs --shards)")
    p.add_argument("--quorum", default=None,
                   help="generated placement: awake replicas required "
                        "per shard before consolidation may sleep a "
                        "holder -- an integer or 'majority' "
                        "(default 1; needs --shards)")
    p.add_argument("--playback", choices=("batched", "loop"),
                   default="batched")
    p.add_argument("--scheduler",
                   choices=("auto", "vectorized", "legacy"),
                   default="auto",
                   help="event core: auto picks the vectorized chunked "
                        "path when the configuration allows it, "
                        "vectorized demands it (errors otherwise), "
                        "legacy forces the per-arrival loop "
                        "(--playback loop implies legacy)")
    p.add_argument("--trace-cache", default=None, metavar="DIR",
                   help="persist compiled traces across processes")
    p.add_argument("--trace-store", choices=("npz", "columnar"),
                   default="npz",
                   help="--trace-cache layout: one .npz file per trace, "
                        "or the shared memory-mapped columnar container "
                        "(one append-only file per workload namespace, "
                        "zero-copy across processes)")
    p.add_argument("--trace", default=None, metavar="TRACE.json",
                   help="export a per-query span trace: .jsonl is "
                        "line-delimited, anything else is Chrome "
                        "trace_event JSON (loads in Perfetto / "
                        "chrome://tracing)")
    p.add_argument("--metrics", default=None, metavar="METRICS.json",
                   help="export streaming metrics sampled on --window "
                        "boundaries (30 s default when --window unset)")
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("obs", help="observability trace tooling")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    r = obs_sub.add_parser(
        "report",
        help="validate an exported trace; print span and energy "
             "attribution breakdowns",
    )
    r.add_argument("trace", help="trace file (.jsonl or Chrome JSON)")
    r.set_defaults(func=cmd_obs_report)

    p = sub.add_parser(
        "lint",
        help="AST invariant linter (determinism, zero-cost "
             "observability, trace-store lock discipline)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src scripts "
                        "benchmarks examples tests)")
    p.add_argument("--format", choices=("text", "json"),
                   default="text",
                   help="text findings or a machine-readable JSON "
                        "report")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("experiments", help="run everything")
    p.add_argument("--sf", type=float, default=0.02)
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
