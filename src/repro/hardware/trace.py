"""Work-segment model: the interface between the DBMS and the hardware.

Executing a query (or a whole workload) against the database substrate
produces a :class:`Trace` -- an ordered list of *work segments* describing
what the machine has to do.  The :class:`~repro.hardware.system.SystemUnderTest`
then "plays" the trace under a given PVC setting, turning work into wall
time and energy.  This split is what lets a single execution be re-costed
under many processor settings without re-running the query.

Segment kinds
-------------
``CpuWork``
    Pure computation: a number of CPU cycles executed at some duty-cycle
    utilization.  Wall time scales inversely with CPU frequency, so this
    is the portion of a workload that stretches under PVC underclocking.
``DiskAccess``
    A batch of disk reads or writes (sequential or random).  Wall time
    comes from the disk model and is frequency-*invariant*; the CPU idles
    (or runs light overlap work) while it waits.
``ClientWork``
    Computation attributed to the client (JDBC-style row fetch,
    materialization, QED result splitting).  Semantically identical to
    ``CpuWork`` but typically tagged with a low utilization, which makes
    the DVFS governor drop to a lower p-state -- the effect behind QED's
    low-power result-handling phases.
``Idle``
    Fixed wall-clock idle time (think time, sleeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass(frozen=True)
class CpuWork:
    """``cycles`` of computation executed at ``utilization`` duty cycle.

    ``utilization`` is the fraction of wall time the CPU is busy while the
    segment runs; the remaining time is spent idle (pipeline gaps between
    request handling, lock waits, and so on).  Busy time is
    ``cycles / frequency`` and wall time is ``busy / utilization``.
    """

    cycles: float
    utilization: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")


@dataclass(frozen=True)
class ClientWork:
    """Client-side computation (fetch/materialize/split), low duty cycle."""

    cycles: float
    utilization: float = 0.35
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")


@dataclass(frozen=True)
class DiskAccess:
    """A batch of disk operations.

    ``num_ops`` read/write calls moving ``bytes_total`` bytes in total.
    ``sequential`` selects the sequential- or random-access cost model.
    ``cpu_overlap_utilization`` is the light CPU activity (interrupt
    handling, buffer management) that overlaps the I/O window.
    """

    num_ops: int
    bytes_total: float
    sequential: bool
    write: bool = False
    cpu_overlap_utilization: float = 0.10
    label: str = ""

    def __post_init__(self) -> None:
        if self.num_ops < 0:
            raise ValueError("num_ops must be non-negative")
        if self.bytes_total < 0:
            raise ValueError("bytes_total must be non-negative")
        if not 0.0 <= self.cpu_overlap_utilization <= 1.0:
            raise ValueError("cpu_overlap_utilization must be in [0, 1]")


@dataclass(frozen=True)
class Idle:
    """Fixed wall-clock idle period."""

    seconds: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")


Segment = CpuWork | ClientWork | DiskAccess | Idle


#: Segment-kind codes in a :class:`CompiledTrace`.
KIND_CPU = 0
KIND_CLIENT = 1
KIND_DISK = 2
KIND_IDLE = 3

#: One segment as a fixed-width record: the row format of the shared
#: columnar trace store (:mod:`repro.hardware.trace_store`).  Every
#: :class:`CompiledTrace` array maps onto one field, so a contiguous
#: span of rows in a memory-mapped container file *is* a compiled
#: trace -- no per-entry archive parsing on the read path.
ROW_DTYPE = np.dtype([
    ("kind", np.int8),
    ("cycles", np.float64),
    ("utilization", np.float64),
    ("num_ops", np.int64),
    ("bytes_total", np.float64),
    ("sequential", np.bool_),
    ("write", np.bool_),
    ("seconds", np.float64),
])


@dataclass(frozen=True)
class CompiledTrace:
    """A :class:`Trace` packed into structure-of-arrays form.

    One row per segment; which fields are meaningful depends on the
    row's ``kinds`` code (cycles/utilization for CPU and client work,
    num_ops/bytes_total/sequential/write/utilization for disk, seconds
    for idle).  This is the unit of *vectorized* playback: the
    :class:`~repro.hardware.system.SystemUnderTest` can re-cost the
    whole trace under any PVC setting with array operations instead of
    a per-segment Python loop -- compile once, replay many.
    """

    kinds: np.ndarray
    cycles: np.ndarray
    utilization: np.ndarray
    num_ops: np.ndarray
    bytes_total: np.ndarray
    sequential: np.ndarray
    write: np.ndarray
    seconds: np.ndarray
    labels: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.kinds)

    @classmethod
    def from_trace(cls, trace: "Trace") -> "CompiledTrace":
        n = len(trace.segments)
        kinds = np.zeros(n, dtype=np.int8)
        cycles = np.zeros(n, dtype=np.float64)
        utilization = np.zeros(n, dtype=np.float64)
        num_ops = np.zeros(n, dtype=np.int64)
        bytes_total = np.zeros(n, dtype=np.float64)
        sequential = np.zeros(n, dtype=bool)
        write = np.zeros(n, dtype=bool)
        seconds = np.zeros(n, dtype=np.float64)
        labels: list[str] = []
        for i, seg in enumerate(trace.segments):
            labels.append(seg.label)
            if isinstance(seg, CpuWork):
                kinds[i] = KIND_CPU
                cycles[i] = seg.cycles
                utilization[i] = seg.utilization
            elif isinstance(seg, ClientWork):
                kinds[i] = KIND_CLIENT
                cycles[i] = seg.cycles
                utilization[i] = seg.utilization
            elif isinstance(seg, DiskAccess):
                kinds[i] = KIND_DISK
                num_ops[i] = seg.num_ops
                bytes_total[i] = seg.bytes_total
                sequential[i] = seg.sequential
                write[i] = seg.write
                utilization[i] = seg.cpu_overlap_utilization
            elif isinstance(seg, Idle):
                kinds[i] = KIND_IDLE
                seconds[i] = seg.seconds
            else:  # pragma: no cover - exhaustive over Segment
                raise TypeError(f"unknown segment type: {type(seg)!r}")
        return cls(
            kinds=kinds, cycles=cycles, utilization=utilization,
            num_ops=num_ops, bytes_total=bytes_total,
            sequential=sequential, write=write, seconds=seconds,
            labels=tuple(labels),
        )

    @classmethod
    def concat(cls, traces: "list[CompiledTrace]") -> "CompiledTrace":
        """Stack several compiled traces into one (fleet-scale playback).

        The result plays every input back-to-back; callers that need the
        per-input boundaries can reconstruct them from the input lengths
        (see :meth:`~repro.hardware.system.SystemUnderTest.run_compiled_batch`).
        """
        if not traces:
            return cls.from_trace(Trace())
        if len(traces) == 1:
            return traces[0]
        labels: list[str] = []
        for t in traces:
            labels.extend(t.labels)
        return cls(
            kinds=np.concatenate([t.kinds for t in traces]),
            cycles=np.concatenate([t.cycles for t in traces]),
            utilization=np.concatenate([t.utilization for t in traces]),
            num_ops=np.concatenate([t.num_ops for t in traces]),
            bytes_total=np.concatenate([t.bytes_total for t in traces]),
            sequential=np.concatenate([t.sequential for t in traces]),
            write=np.concatenate([t.write for t in traces]),
            seconds=np.concatenate([t.seconds for t in traces]),
            labels=tuple(labels),
        )

    # -- persistence (execute once, replay in another process) ----------

    def save(self, path: str | Path) -> None:
        """Write the packed arrays to ``path`` as an ``.npz`` archive.

        The literal ``path`` is written (``np.savez`` would append an
        ``.npz`` suffix to a bare name, which :meth:`load` -- opening
        the literal path -- could then not find).
        """
        with open(Path(path), "wb") as f:
            np.savez(
                f,
                kinds=self.kinds, cycles=self.cycles,
                utilization=self.utilization, num_ops=self.num_ops,
                bytes_total=self.bytes_total, sequential=self.sequential,
                write=self.write, seconds=self.seconds,
                labels=np.asarray(self.labels, dtype=np.str_),
            )

    @classmethod
    def load(cls, path: str | Path) -> "CompiledTrace":
        """Read a trace previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            return cls(
                kinds=data["kinds"], cycles=data["cycles"],
                utilization=data["utilization"], num_ops=data["num_ops"],
                bytes_total=data["bytes_total"],
                sequential=data["sequential"], write=data["write"],
                seconds=data["seconds"],
                labels=tuple(str(s) for s in data["labels"]),
            )

    def to_rows(self) -> np.ndarray:
        """Pack the trace into a contiguous :data:`ROW_DTYPE` record array.

        Labels are not part of the row format; the columnar store keeps
        them in its index so the data file stays fixed-width.
        """
        rows = np.empty(len(self), dtype=ROW_DTYPE)
        rows["kind"] = self.kinds
        rows["cycles"] = self.cycles
        rows["utilization"] = self.utilization
        rows["num_ops"] = self.num_ops
        rows["bytes_total"] = self.bytes_total
        rows["sequential"] = self.sequential
        rows["write"] = self.write
        rows["seconds"] = self.seconds
        return rows

    @classmethod
    def from_rows(
        cls, rows: np.ndarray, labels: tuple[str, ...]
    ) -> "CompiledTrace":
        """Rebuild a trace from a :data:`ROW_DTYPE` span (zero-copy).

        The field views returned by a structured array share its buffer,
        so traces built from a memory-mapped store alias one physical
        copy across every node (and every process) playing them back.
        """
        if len(labels) != len(rows):
            raise ValueError(
                f"label count {len(labels)} != row count {len(rows)}"
            )
        return cls(
            kinds=rows["kind"], cycles=rows["cycles"],
            utilization=rows["utilization"], num_ops=rows["num_ops"],
            bytes_total=rows["bytes_total"],
            sequential=rows["sequential"], write=rows["write"],
            seconds=rows["seconds"], labels=tuple(labels),
        )


@dataclass
class Trace:
    """An ordered sequence of work segments produced by one execution."""

    segments: list[Segment] = field(default_factory=list)
    _compiled: CompiledTrace | None = field(
        default=None, repr=False, compare=False
    )

    def add(self, segment: Segment) -> None:
        self.segments.append(segment)
        self._compiled = None

    def extend(self, other: "Trace") -> None:
        self.segments.extend(other.segments)
        self._compiled = None

    def compiled(self) -> CompiledTrace:
        """Packed structure-of-arrays form (memoized until mutated)."""
        if self._compiled is None or len(self._compiled) != len(self.segments):
            self._compiled = CompiledTrace.from_trace(self)
        return self._compiled

    def __iter__(self):
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def total_cpu_cycles(self) -> float:
        """All server-side CPU cycles in the trace."""
        return sum(s.cycles for s in self.segments if isinstance(s, CpuWork))

    @property
    def total_client_cycles(self) -> float:
        """All client-side CPU cycles in the trace."""
        return sum(
            s.cycles for s in self.segments if isinstance(s, ClientWork)
        )

    @property
    def total_disk_bytes(self) -> float:
        return sum(
            s.bytes_total for s in self.segments if isinstance(s, DiskAccess)
        )

    @property
    def total_disk_ops(self) -> int:
        return sum(
            s.num_ops for s in self.segments if isinstance(s, DiskAccess)
        )

    def scaled(self, factor: float) -> "Trace":
        """Return a copy with every work quantity multiplied by ``factor``.

        Useful for extrapolating a small-scale-factor run to the paper's
        scale factor: TPC-H work is uniform, so cycles, bytes, and idle
        time all scale linearly with data size.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        scaled_segments: list[Segment] = []
        for seg in self.segments:
            if isinstance(seg, CpuWork):
                scaled_segments.append(
                    CpuWork(seg.cycles * factor, seg.utilization, seg.label)
                )
            elif isinstance(seg, ClientWork):
                scaled_segments.append(
                    ClientWork(seg.cycles * factor, seg.utilization, seg.label)
                )
            elif isinstance(seg, DiskAccess):
                scaled_segments.append(
                    DiskAccess(
                        num_ops=max(0, round(seg.num_ops * factor)),
                        bytes_total=seg.bytes_total * factor,
                        sequential=seg.sequential,
                        write=seg.write,
                        cpu_overlap_utilization=seg.cpu_overlap_utilization,
                        label=seg.label,
                    )
                )
            else:
                scaled_segments.append(Idle(seg.seconds * factor, seg.label))
        return Trace(scaled_segments)

    def merged(self) -> "Trace":
        """Coalesce adjacent segments of identical kind and parameters.

        Purely an optimization for very long traces; playing a merged
        trace yields the same time and energy.
        """
        out: list[Segment] = []
        for seg in self.segments:
            if out and _mergeable(out[-1], seg):
                out[-1] = _merge(out[-1], seg)
            else:
                out.append(seg)
        return Trace(out)


def _mergeable(a: Segment, b: Segment) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, (CpuWork, ClientWork)):
        return a.utilization == b.utilization and a.label == b.label
    if isinstance(a, DiskAccess):
        return (
            a.sequential == b.sequential
            and a.write == b.write
            and a.cpu_overlap_utilization == b.cpu_overlap_utilization
            and a.label == b.label
        )
    return a.label == b.label


def _merge(a: Segment, b: Segment) -> Segment:
    if isinstance(a, CpuWork):
        return CpuWork(a.cycles + b.cycles, a.utilization, a.label)
    if isinstance(a, ClientWork):
        return ClientWork(a.cycles + b.cycles, a.utilization, a.label)
    if isinstance(a, DiskAccess):
        return DiskAccess(
            num_ops=a.num_ops + b.num_ops,
            bytes_total=a.bytes_total + b.bytes_total,
            sequential=a.sequential,
            write=a.write,
            cpu_overlap_utilization=a.cpu_overlap_utilization,
            label=a.label,
        )
    return Idle(a.seconds + b.seconds, a.label)
