"""Sensor models: the paper's measurement instruments.

* :class:`EpuSensor` -- the ASUS EPU on-board CPU power sensor, read by
  graphically sampling the 6-Engine GUI once per second.  The paper
  computes "CPU joules = average sampled wattage x execution time"; this
  class reproduces that estimator, including its sampling bias on short
  or bursty runs.
* :class:`WallMeter` -- the Yokogawa WT210 wall-power meter.
* :class:`CurrentProbe` -- per-rail disk current measurement (5 V/12 V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.disk import DiskEnergy
from repro.hardware.system import PowerInterval, RunMeasurement


def _power_at(timeline: list[PowerInterval], t: float,
              component: str) -> float | None:
    """Instantaneous power of ``component`` at time ``t`` (None if past end)."""
    elapsed = 0.0
    for interval in timeline:
        if t < elapsed + interval.duration_s:
            if component == "cpu":
                return interval.cpu_w
            if component == "wall":
                return interval.dc_total_w
            if component == "disk_5v":
                return interval.disk_5v_w
            if component == "disk_12v":
                return interval.disk_12v_w
            raise ValueError(f"unknown component {component!r}")
        elapsed += interval.duration_s
    return None


@dataclass
class SampledReading:
    """Result of a sampled measurement."""

    samples_w: list[float]
    duration_s: float

    @property
    def mean_power_w(self) -> float:
        if not self.samples_w:
            return 0.0
        return sum(self.samples_w) / len(self.samples_w)

    @property
    def joules(self) -> float:
        """The paper's estimator: mean sampled watts x duration."""
        return self.mean_power_w * self.duration_s


class EpuSensor:
    """1 Hz GUI-sampled CPU wattage (paper Sec. 3.1 workaround)."""

    def __init__(self, sample_period_s: float = 1.0, phase_s: float = 0.5):
        if sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if phase_s < 0:
            raise ValueError("phase_s must be non-negative")
        self.sample_period_s = sample_period_s
        self.phase_s = phase_s

    def read(self, run: RunMeasurement) -> SampledReading:
        if run.duration_s > 0 and not run.timeline:
            raise ValueError(
                "measurement carries no power timeline to sample; "
                "replayed runs need with_timeline=True "
                "(see SystemUnderTest.run_compiled)"
            )
        samples: list[float] = []
        t = self.phase_s
        while t < run.duration_s:
            power = _power_at(run.timeline, t, "cpu")
            if power is None:
                break
            samples.append(power)
            t += self.sample_period_s
        return SampledReading(samples, run.duration_s)

    def sampling_error(self, run: RunMeasurement) -> float:
        """Relative error of the sampled estimate vs the exact integral."""
        exact = run.cpu_joules
        if exact == 0:
            return 0.0
        return (self.read(run).joules - exact) / exact


class WallMeter:
    """Exact wall-energy integration (the WT210 integrates internally)."""

    def read_joules(self, run: RunMeasurement) -> float:
        return run.wall_joules

    def read_avg_power_w(self, run: RunMeasurement) -> float:
        return run.avg_wall_power_w


class CurrentProbe:
    """Disk rail measurement: energy on the 5 V and 12 V lines."""

    def read(self, run: RunMeasurement) -> DiskEnergy:
        return run.disk_energy
