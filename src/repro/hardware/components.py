"""Fixed-draw board components: motherboard, GPU, CPU fan.

These are the components whose power the paper characterizes only as
constants in the Table 1 buildup (PSU + motherboard on, +CPU/fan, +RAM,
+GPU).  DC draws are chosen so the PSU efficiency curve reproduces the
published wall readings; see :mod:`repro.hardware.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Motherboard:
    """ASUS P5Q3 Deluxe-like board with the onboard EPU sensor.

    ``standby_w`` is the board's share of the soft-off draw (wake logic,
    standby rails); ``on_w`` is the DC draw once powered, chipset and VRM
    overhead included; ``cpu_support_w`` is the extra board circuitry
    activated when a CPU is installed (VRM phases, chipset links) --
    the paper notes installing the CPU "activates other components".
    """

    name: str = "p5q3-deluxe-like"
    standby_w: float = 4.7
    on_w: float = 13.4
    cpu_support_w: float = 14.0

    def __post_init__(self) -> None:
        for value in (self.standby_w, self.on_w, self.cpu_support_w):
            if value < 0:
                raise ValueError("power terms must be non-negative")


@dataclass
class Gpu:
    """Entry-level discrete GPU (GeForce 8400GS-like), idle on a server."""

    name: str = "8400gs-like"
    idle_w: float = 11.3

    def __post_init__(self) -> None:
        if self.idle_w < 0:
            raise ValueError("idle_w must be non-negative")


@dataclass
class CpuFan:
    """Stock cooler fan; counted with the CPU in the Table 1 buildup."""

    w: float = 1.8

    def __post_init__(self) -> None:
        if self.w < 0:
            raise ValueError("fan power must be non-negative")
