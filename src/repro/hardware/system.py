"""System under test: plays work traces, producing time and energy.

:class:`SystemUnderTest` composes the component models (CPU, memory,
disk, PSU, board, GPU) and converts a :class:`~repro.hardware.trace.Trace`
into a :class:`RunMeasurement` under a given PVC setting.  The result
carries a piecewise-constant power *timeline* that the sensor models in
:mod:`repro.hardware.sensors` can sample, mirroring how the paper reads
the EPU sensor and the wall meter.

Segment semantics
-----------------
``CpuWork``/``ClientWork``
    The governor selects a p-state from the segment's duty-cycle
    utilization.  Busy time is ``cycles / f(pstate)``; the idle gaps
    inside the segment come from *external* latency and are computed at
    the stock top frequency, so slowing the CPU stretches only the busy
    part.  Fully-busy work therefore scales as ``1/f`` while low-duty
    work stretches sub-linearly -- which is why the paper's CPU-bound
    MySQL runs pay ~5% time for a 5% underclock while the mixed
    commercial runs pay only ~3%.
``DiskAccess``
    Wall time from the disk model, frequency-invariant.  The CPU runs
    light overlap work at the governor's lowest p-state.
``Idle``
    Everything idles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.components import CpuFan, Gpu, Motherboard
from repro.hardware.cpu import (
    Cpu,
    CpuSpec,
    EffectiveVoltageTable,
    PvcSetting,
    STOCK_SETTING,
    e8500_like_spec,
)
from repro.hardware.disk import Disk, DiskEnergy, DiskSpec, ZERO_DISK_ENERGY
from repro.hardware.dvfs import Governor, UtilizationGovernor
from repro.hardware.memory import Memory, MemorySpec
from repro.hardware.psu import Psu, PsuSpec
from repro.hardware.trace import (
    KIND_CLIENT,
    KIND_CPU,
    KIND_DISK,
    KIND_IDLE,
    ClientWork,
    CompiledTrace,
    CpuWork,
    DiskAccess,
    Idle,
    Trace,
)

#: Workload classes select which calibrated effective-voltage table
#: applies (see profiles.py): fully CPU-bound runs (MySQL memory engine)
#: versus mixed CPU/I-O runs (commercial disk engine).
CPU_BOUND = "cpu_bound"
IO_MIXED = "io_mixed"


@dataclass(frozen=True)
class PowerInterval:
    """A window of constant per-component power draw."""

    duration_s: float
    cpu_w: float
    memory_w: float
    disk_5v_w: float
    disk_12v_w: float
    board_w: float
    gpu_w: float
    fan_w: float
    label: str = ""

    @property
    def disk_w(self) -> float:
        return self.disk_5v_w + self.disk_12v_w

    @property
    def dc_total_w(self) -> float:
        return (
            self.cpu_w + self.memory_w + self.disk_w
            + self.board_w + self.gpu_w + self.fan_w
        )


@dataclass
class RunMeasurement:
    """Time and energy for one played trace.

    ``cpu_joules`` corresponds to the paper's EPU-sensor figure;
    ``disk_energy`` to the 5V/12V current-probe figures; ``wall_joules``
    to the Yokogawa wall reading (PSU losses included).
    """

    duration_s: float
    cpu_joules: float
    memory_joules: float
    disk_energy: DiskEnergy
    board_joules: float
    gpu_joules: float
    fan_joules: float
    wall_joules: float
    timeline: list[PowerInterval] = field(default_factory=list)

    @property
    def disk_joules(self) -> float:
        return self.disk_energy.total_joules

    @property
    def dc_joules(self) -> float:
        return (
            self.cpu_joules + self.memory_joules + self.disk_joules
            + self.board_joules + self.gpu_joules + self.fan_joules
        )

    @property
    def avg_cpu_power_w(self) -> float:
        return self.cpu_joules / self.duration_s if self.duration_s else 0.0

    @property
    def avg_wall_power_w(self) -> float:
        return self.wall_joules / self.duration_s if self.duration_s else 0.0

    def component_joules(self) -> dict[str, float]:
        return {
            "cpu": self.cpu_joules,
            "memory": self.memory_joules,
            "disk": self.disk_joules,
            "board": self.board_joules,
            "gpu": self.gpu_joules,
            "fan": self.fan_joules,
        }

    def __add__(self, other: "RunMeasurement") -> "RunMeasurement":
        return RunMeasurement(
            duration_s=self.duration_s + other.duration_s,
            cpu_joules=self.cpu_joules + other.cpu_joules,
            memory_joules=self.memory_joules + other.memory_joules,
            disk_energy=self.disk_energy + other.disk_energy,
            board_joules=self.board_joules + other.board_joules,
            gpu_joules=self.gpu_joules + other.gpu_joules,
            fan_joules=self.fan_joules + other.fan_joules,
            wall_joules=self.wall_joules + other.wall_joules,
            timeline=self.timeline + other.timeline,
        )


class SystemUnderTest:
    """The simulated server (paper Sec. 3.1 configuration by default)."""

    def __init__(
        self,
        cpu_spec: CpuSpec | None = None,
        memory_spec: MemorySpec | None = None,
        disk_spec: DiskSpec | None = None,
        psu_spec: PsuSpec | None = None,
        motherboard: Motherboard | None = None,
        gpu: Gpu | None = None,
        fan: CpuFan | None = None,
        governor: Governor | None = None,
        voltage_tables: dict[str, EffectiveVoltageTable] | None = None,
        has_gpu: bool = True,
        has_disk: bool = True,
        mem_activity_coupling: float = 0.5,
    ):
        self.cpu_spec = cpu_spec if cpu_spec is not None else e8500_like_spec()
        self.memory_spec = memory_spec if memory_spec is not None else MemorySpec()
        self.disk = Disk(disk_spec)
        self.psu = Psu(psu_spec)
        self.motherboard = motherboard if motherboard is not None else Motherboard()
        self.gpu = gpu if gpu is not None else Gpu()
        self.fan = fan if fan is not None else CpuFan()
        self.governor = governor if governor is not None else UtilizationGovernor()
        self.voltage_tables = voltage_tables or {}
        self.has_gpu = has_gpu
        self.has_disk = has_disk
        self.mem_activity_coupling = mem_activity_coupling
        self.setting: PvcSetting = STOCK_SETTING

    # -- configuration -------------------------------------------------

    def apply_setting(self, setting: PvcSetting) -> None:
        """Install a PVC operating point (underclock + voltage downgrade)."""
        self.setting = setting

    def cpu_for(self, workload_class: str = CPU_BOUND) -> Cpu:
        """CPU view under the current setting and workload class."""
        table = self.voltage_tables.get(workload_class)
        return Cpu(self.cpu_spec, self.setting, table)

    def memory_for(self) -> Memory:
        fsb = self.cpu_spec.fsb_hz * self.setting.fsb_scale
        return Memory(self.memory_spec, fsb)

    # -- fixed draws ----------------------------------------------------

    def _board_w(self) -> float:
        return self.motherboard.on_w + self.motherboard.cpu_support_w

    def _gpu_w(self) -> float:
        return self.gpu.idle_w if self.has_gpu else 0.0

    # -- trace playback ---------------------------------------------------

    def run(
        self,
        trace: Trace,
        workload_class: str = CPU_BOUND,
    ) -> RunMeasurement:
        """Play ``trace`` under the current PVC setting."""
        cpu = self.cpu_for(workload_class)
        memory = self.memory_for()
        intervals: list[PowerInterval] = []
        disk_energy = ZERO_DISK_ENERGY

        for seg in trace:
            if isinstance(seg, (CpuWork, ClientWork)):
                intervals.append(self._play_cpu(cpu, memory, seg))
            elif isinstance(seg, DiskAccess):
                interval, rail = self._play_disk(cpu, memory, seg)
                intervals.append(interval)
                disk_energy = disk_energy + rail
            elif isinstance(seg, Idle):
                intervals.append(self._play_idle(cpu, memory, seg))
            else:  # pragma: no cover - exhaustive over Segment
                raise TypeError(f"unknown segment type: {type(seg)!r}")

        return self._integrate(intervals, disk_energy)

    def run_compiled(
        self,
        compiled: CompiledTrace | Trace,
        workload_class: str = CPU_BOUND,
        with_timeline: bool = False,
    ) -> RunMeasurement:
        """Vectorized playback of a compiled trace (execute-once / replay-many).

        Produces the same time and energy as :meth:`run` (to floating-point
        array-summation order) but computes per-segment wall time and power
        with numpy array operations, grouping segments by (kind,
        utilization): within a group the governor's p-state and therefore
        every power draw is constant, so only the per-segment work
        quantities need array math.  The power *timeline* is only
        materialized when ``with_timeline`` is set (sensor sampling needs
        it; sweeps do not).
        """
        if isinstance(compiled, Trace):
            compiled = compiled.compiled()
        (wall, cpu_w, mem_w, disk_5v, disk_12v, board, gpu_w, fan,
         wall_power) = self._playback_arrays(compiled, workload_class)

        timeline: list[PowerInterval] = []
        if with_timeline:
            timeline = [
                PowerInterval(
                    duration_s=float(wall[i]),
                    cpu_w=float(cpu_w[i]),
                    memory_w=float(mem_w[i]),
                    disk_5v_w=float(disk_5v[i]),
                    disk_12v_w=float(disk_12v[i]),
                    board_w=float(board[i]),
                    gpu_w=float(gpu_w[i]),
                    fan_w=float(fan[i]),
                    label=compiled.labels[i],
                )
                for i in range(len(compiled))
            ]
        return RunMeasurement(
            duration_s=float(np.sum(wall)),
            cpu_joules=float(np.sum(cpu_w * wall)),
            memory_joules=float(np.sum(mem_w * wall)),
            disk_energy=DiskEnergy(
                float(np.sum(disk_5v * wall)),
                float(np.sum(disk_12v * wall)),
            ),
            board_joules=float(np.sum(board * wall)),
            gpu_joules=float(np.sum(gpu_w * wall)),
            fan_joules=float(np.sum(fan * wall)),
            wall_joules=float(np.sum(wall_power * wall)),
            timeline=timeline,
        )

    def run_compiled_batch(
        self,
        traces: list[CompiledTrace],
        workload_class: str = CPU_BOUND,
    ) -> list[RunMeasurement]:
        """Play many compiled traces as *one* stacked array operation.

        The traces are concatenated into a single structure-of-arrays
        playback pass (the per-segment math runs once over the whole
        stack), then the per-trace sums are sliced back out.  This is the
        fleet-scale hot path: a cluster of nodes sharing a PVC setting
        plays every node's whole timeline with one call instead of one
        :meth:`run_compiled` call per query.  Per-trace totals match
        :meth:`run_compiled` on each input to float-summation order
        (<= ~1e-12 relative), never materializing timelines.
        """
        if not traces:
            return []
        stacked = CompiledTrace.concat(traces)
        (wall, cpu_w, mem_w, disk_5v, disk_12v, board, gpu_w, fan,
         wall_power) = self._playback_arrays(stacked, workload_class)

        lengths = [len(t) for t in traces]
        edges = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=edges[1:])

        def slice_sums(values: np.ndarray) -> np.ndarray:
            run = np.zeros(len(values) + 1)
            np.cumsum(values, out=run[1:])
            return run[edges[1:]] - run[edges[:-1]]

        dur = slice_sums(wall)
        cpu_j = slice_sums(cpu_w * wall)
        mem_j = slice_sums(mem_w * wall)
        d5_j = slice_sums(disk_5v * wall)
        d12_j = slice_sums(disk_12v * wall)
        board_j = slice_sums(board * wall)
        gpu_j = slice_sums(gpu_w * wall)
        fan_j = slice_sums(fan * wall)
        wall_j = slice_sums(wall_power * wall)
        return [
            RunMeasurement(
                duration_s=float(dur[i]),
                cpu_joules=float(cpu_j[i]),
                memory_joules=float(mem_j[i]),
                disk_energy=DiskEnergy(float(d5_j[i]), float(d12_j[i])),
                board_joules=float(board_j[i]),
                gpu_joules=float(gpu_j[i]),
                fan_joules=float(fan_j[i]),
                wall_joules=float(wall_j[i]),
            )
            for i in range(len(traces))
        ]

    def _playback_arrays(
        self,
        compiled: CompiledTrace,
        workload_class: str,
    ) -> tuple[np.ndarray, ...]:
        """Per-segment wall times and power draws for vectorized playback.

        Returns ``(wall, cpu_w, mem_w, disk_5v, disk_12v, board, gpu_w,
        fan, wall_power)`` arrays, one entry per segment.
        """
        cpu = self.cpu_for(workload_class)
        memory = self.memory_for()
        n = len(compiled)
        kinds = compiled.kinds
        wall = np.zeros(n)
        cpu_w = np.zeros(n)
        mem_w = np.zeros(n)
        disk_frac = np.zeros(n)

        compute = (kinds == KIND_CPU) | (kinds == KIND_CLIENT)
        if compute.any():
            stock_top = self.cpu_spec.stock_frequency_hz
            utils = compiled.utilization[compute]
            cyc = compiled.cycles[compute]
            seg_wall = np.zeros(len(cyc))
            seg_cpu_w = np.zeros(len(cyc))
            seg_mem_w = np.zeros(len(cyc))
            for u in np.unique(utils):
                sel = utils == u
                pstate = self.governor.select_pstate(cpu, float(u))
                freq = cpu.frequency_hz(pstate)
                busy_per_cycle = 1.0 / freq
                gap_per_cycle = (1.0 - u) / (u * stock_top)
                seg_wall[sel] = cyc[sel] * (busy_per_cycle + gap_per_cycle)
                busy_frac = busy_per_cycle / (busy_per_cycle + gap_per_cycle)
                seg_cpu_w[sel] = (
                    busy_frac * cpu.busy_power_w(pstate)
                    + (1.0 - busy_frac) * cpu.idle_power_w()
                )
                seg_mem_w[sel] = memory.power_w(
                    min(1.0, busy_frac * self.mem_activity_coupling)
                )
            zero = seg_wall <= 0.0
            seg_cpu_w[zero] = 0.0
            seg_mem_w[zero] = 0.0
            wall[compute] = seg_wall
            cpu_w[compute] = seg_cpu_w
            mem_w[compute] = seg_mem_w

        disk = kinds == KIND_DISK
        if disk.any():
            if not self.has_disk:
                raise ValueError("trace touches the disk but the SUT has none")
            dwall = self.disk.access_times_s(
                compiled.num_ops[disk], compiled.bytes_total[disk],
                compiled.sequential[disk], compiled.write[disk],
            )
            utils = compiled.utilization[disk]
            seg_cpu_w = np.zeros(len(dwall))
            for u in np.unique(utils):
                pstate = self.governor.select_pstate(cpu, float(u))
                seg_cpu_w[utils == u] = (
                    u * cpu.busy_power_w(pstate)
                    + (1.0 - u) * cpu.idle_power_w()
                )
            seg_mem_w = np.full(len(dwall), memory.power_w(min(1.0, 0.2)))
            zero = dwall <= 0.0
            seg_cpu_w[zero] = 0.0
            seg_mem_w[zero] = 0.0
            wall[disk] = dwall
            cpu_w[disk] = seg_cpu_w
            mem_w[disk] = seg_mem_w
            disk_frac[disk] = np.where(zero, 0.0, 1.0)

        idle = kinds == KIND_IDLE
        if idle.any():
            wall[idle] = compiled.seconds[idle]
            cpu_w[idle] = cpu.idle_power_w()
            mem_w[idle] = memory.idle_power_w()

        # Segments that produced an empty interval in the loop path carry
        # zero fixed draws too (idle segments always carry full draws).
        live = (wall > 0.0) | idle
        board = np.where(live, self._board_w(), 0.0)
        gpu_w = np.where(live, self._gpu_w(), 0.0)
        fan = np.where(live, self.fan.w, 0.0)
        if self.has_disk:
            spec = self.disk.spec
            disk_5v = np.where(
                live,
                disk_frac * spec.active_5v_w
                + (1.0 - disk_frac) * spec.idle_5v_w,
                0.0,
            )
            disk_12v = np.where(
                live,
                disk_frac * spec.active_12v_w
                + (1.0 - disk_frac) * spec.idle_12v_w,
                0.0,
            )
        else:
            disk_5v = np.zeros(n)
            disk_12v = np.zeros(n)

        dc_total = cpu_w + mem_w + disk_5v + disk_12v + board + gpu_w + fan
        wall_power = self.psu.wall_power_w_array(dc_total)
        return (wall, cpu_w, mem_w, disk_5v, disk_12v, board, gpu_w, fan,
                wall_power)

    def _play_cpu(
        self, cpu: Cpu, memory: Memory, seg: CpuWork | ClientWork
    ) -> PowerInterval:
        pstate = self.governor.select_pstate(cpu, seg.utilization)
        freq = cpu.frequency_hz(pstate)
        busy_s = seg.cycles / freq
        # Idle gaps arise from external latency, sized at stock top speed.
        stock_top = self.cpu_spec.stock_frequency_hz
        gap_s = (seg.cycles / stock_top) * (1.0 - seg.utilization) / seg.utilization
        wall_s = busy_s + gap_s
        if wall_s <= 0.0:
            return PowerInterval(0, 0, 0, 0, 0, 0, 0, 0, seg.label)
        busy_frac = busy_s / wall_s
        cpu_w = (
            busy_frac * cpu.busy_power_w(pstate)
            + (1.0 - busy_frac) * cpu.idle_power_w()
        )
        mem_w = memory.power_w(
            min(1.0, busy_frac * self.mem_activity_coupling)
        )
        return self._interval(seg.label, wall_s, cpu_w, mem_w,
                              disk_active_frac=0.0)

    def _play_disk(
        self, cpu: Cpu, memory: Memory, seg: DiskAccess
    ) -> tuple[PowerInterval, DiskEnergy]:
        if not self.has_disk:
            raise ValueError("trace touches the disk but the SUT has none")
        wall_s = self.disk.access_time_s(seg)
        if wall_s <= 0.0:
            return (
                PowerInterval(0, 0, 0, 0, 0, 0, 0, 0, seg.label),
                ZERO_DISK_ENERGY,
            )
        util = seg.cpu_overlap_utilization
        pstate = self.governor.select_pstate(cpu, util)
        cpu_w = (
            util * cpu.busy_power_w(pstate)
            + (1.0 - util) * cpu.idle_power_w()
        )
        mem_w = memory.power_w(min(1.0, 0.2))
        interval = self._interval(seg.label, wall_s, cpu_w, mem_w,
                                  disk_active_frac=1.0)
        rail = self.disk.active_energy(wall_s)
        return interval, rail

    def _play_idle(
        self, cpu: Cpu, memory: Memory, seg: Idle
    ) -> PowerInterval:
        return self._interval(
            seg.label, seg.seconds, cpu.idle_power_w(),
            memory.idle_power_w(), disk_active_frac=0.0,
        )

    def _interval(
        self,
        label: str,
        wall_s: float,
        cpu_w: float,
        mem_w: float,
        disk_active_frac: float,
    ) -> PowerInterval:
        if self.has_disk:
            disk_5v = (
                disk_active_frac * self.disk.spec.active_5v_w
                + (1 - disk_active_frac) * self.disk.spec.idle_5v_w
            )
            disk_12v = (
                disk_active_frac * self.disk.spec.active_12v_w
                + (1 - disk_active_frac) * self.disk.spec.idle_12v_w
            )
        else:
            disk_5v = disk_12v = 0.0
        return PowerInterval(
            duration_s=wall_s,
            cpu_w=cpu_w,
            memory_w=mem_w,
            disk_5v_w=disk_5v,
            disk_12v_w=disk_12v,
            board_w=self._board_w(),
            gpu_w=self._gpu_w(),
            fan_w=self.fan.w,
            label=label,
        )

    def _integrate(
        self, intervals: list[PowerInterval], disk_rail: DiskEnergy
    ) -> RunMeasurement:
        duration = sum(iv.duration_s for iv in intervals)
        cpu_j = sum(iv.cpu_w * iv.duration_s for iv in intervals)
        mem_j = sum(iv.memory_w * iv.duration_s for iv in intervals)
        board_j = sum(iv.board_w * iv.duration_s for iv in intervals)
        gpu_j = sum(iv.gpu_w * iv.duration_s for iv in intervals)
        fan_j = sum(iv.fan_w * iv.duration_s for iv in intervals)
        disk_5v = sum(iv.disk_5v_w * iv.duration_s for iv in intervals)
        disk_12v = sum(iv.disk_12v_w * iv.duration_s for iv in intervals)
        wall_j = sum(
            self.psu.wall_power_w(iv.dc_total_w) * iv.duration_s
            for iv in intervals
        )
        return RunMeasurement(
            duration_s=duration,
            cpu_joules=cpu_j,
            memory_joules=mem_j,
            disk_energy=DiskEnergy(disk_5v, disk_12v),
            board_joules=board_j,
            gpu_joules=gpu_j,
            fan_joules=fan_j,
            wall_joules=wall_j,
            timeline=intervals,
        )

    # -- idle / buildup views (Table 1) ---------------------------------

    def idle_dc_power_w(
        self,
        with_cpu: bool = True,
        dimm_count: int | None = None,
        with_gpu: bool = True,
        with_disk: bool | None = None,
    ) -> float:
        """DC draw of the idle system with a subset of components installed.

        Supports the Table 1 buildup experiment: the machine is assembled
        piece by piece and the (wall) power is read at each step.
        """
        total = self.motherboard.on_w
        if with_cpu:
            cpu = Cpu(self.cpu_spec, STOCK_SETTING)
            total += self.motherboard.cpu_support_w
            total += cpu.idle_power_w()
            total += self.fan.w
        count = self.memory_spec.dimm_count if dimm_count is None else dimm_count
        if count > 0:
            spec = MemorySpec(
                dimm_count=count,
                dimm_gb=self.memory_spec.dimm_gb,
                channel_overhead_w=self.memory_spec.channel_overhead_w,
                background_w_per_dimm=self.memory_spec.background_w_per_dimm,
                active_w_per_dimm=self.memory_spec.active_w_per_dimm,
                fsb_multiplier=self.memory_spec.fsb_multiplier,
                stock_fsb_hz=self.memory_spec.stock_fsb_hz,
            )
            total += Memory(spec).idle_power_w()
        if with_gpu and self.has_gpu:
            total += self.gpu.idle_w
        disk = self.has_disk if with_disk is None else with_disk
        if disk:
            total += self.disk.spec.idle_power_w
        return total

    def idle_wall_power_w(self, **kwargs) -> float:
        """Wall draw of the idle system (PSU losses included)."""
        return self.psu.wall_power_w(self.idle_dc_power_w(**kwargs))

    def soft_off_wall_power_w(self) -> float:
        """Wall draw with the system plugged in but soft-off (Table 1 row 1)."""
        return self.psu.spec.standby_w + self.motherboard.standby_w
