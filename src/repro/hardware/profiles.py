"""Calibrated system profile reproducing the paper's test machine.

:func:`paper_sut` assembles a :class:`SystemUnderTest` whose component
constants reproduce the paper's measured magnitudes (Table 1 buildup,
Sec. 3.2/3.5 CPU and disk Joule figures), and whose per-setting
*effective voltage* tables are derived analytically from the paper's
reported EDP/energy ratios (Figs. 1-4).

Why effective voltages?  The paper reads CPU power from the board's EPU
sensor by sampling a GUI, and validates (Fig. 4) that the observed EDP
tracks ``V^2/F`` using *measured average* voltage and frequency.  We
therefore invert the published energy ratios through the simulator's own
trace algebra to obtain, per PVC setting, the effective top-p-state
voltage that makes the simulated pipeline land on the published curves.
The inversion is exact for the two workload shapes the paper measures:

* ``cpu_bound`` (MySQL memory engine): the trace is pure full-duty CPU
  work, so per stock-second of work
  ``E(u, V) = P_static/(1-u) + c_eff * V^2 * F0``.
* ``io_mixed`` (commercial DBMS): a fraction ``alpha`` of stock wall time
  is full-duty CPU work and the rest is disk-bound with light CPU
  overlap at the lowest p-state.

Each inversion solves the linear-in-``V^2`` equation for the target
energy ratio.  The resulting voltages are *effective* values: they
absorb the sensor's idiosyncrasies and are lower than plausible VID
levels for the commercial workload -- which is exactly the gap between
the paper's measured -49% CPU energy at a 5% underclock and what pure
``C.V^2.F`` physics would allow.  See DESIGN.md Sec. 5.
"""

from __future__ import annotations

from repro.calibration import targets
from repro.hardware.cpu import (
    CpuSpec,
    EffectiveVoltageTable,
    PvcSetting,
    VoltageDowngrade,
    e8500_like_spec,
)
from repro.hardware.components import CpuFan, Gpu, Motherboard
from repro.hardware.disk import DiskSpec
from repro.hardware.memory import MemorySpec
from repro.hardware.psu import PsuSpec
from repro.hardware.system import CPU_BOUND, IO_MIXED, SystemUnderTest

#: The PVC sweep the paper evaluates: 5/10/15% underclock x small/medium.
UNDERCLOCK_LEVELS = [5, 10, 15]
DOWNGRADES = [VoltageDowngrade.SMALL, VoltageDowngrade.MEDIUM]

#: CPU duty cycle overlapping disk windows in the io_mixed model.
DISK_OVERLAP_UTILIZATION = 0.10

#: Effective CPU duty cycle over the *whole* non-scalable window of the
#: commercial workload (disk overlap at ~0.17 duty for ~10% of wall,
#: stalls at idle duty ~0.08 for ~29%, a sliver of client work), used by
#: the io_mixed voltage inversion.  Derived from the simulated Q5
#: composition; see DESIGN.md Sec. 5.
IO_MIXED_NONBUSY_DUTY = 0.126


def pvc_settings_grid(include_stock: bool = True) -> list[PvcSetting]:
    """The paper's 7 operating points (stock + 3 underclocks x 2 downgrades)."""
    grid: list[PvcSetting] = []
    if include_stock:
        grid.append(PvcSetting())
    for downgrade in DOWNGRADES:
        for pct in UNDERCLOCK_LEVELS:
            grid.append(PvcSetting(pct, downgrade))
    return grid


def _profile_name(workload_class: str) -> str:
    return "mysql" if workload_class == CPU_BOUND else "commercial"


def _downgrade_name(downgrade: VoltageDowngrade) -> str:
    return downgrade.value


def _solve_cpu_bound_voltage(spec: CpuSpec, underclock_pct: float,
                             energy_ratio: float) -> float:
    """Invert the pure-CPU trace algebra for the effective top voltage."""
    scale = 1.0 - underclock_pct / 100.0
    f0 = spec.stock_frequency_hz
    v0 = spec.top_pstate.vid_volts
    ps = spec.static_power_w
    # Per stock-second of work: E = Ps/(1-u) + c*V^2*F0 ; E0 at stock.
    e0 = ps + spec.c_eff * v0 * v0 * f0
    v_sq = (energy_ratio * e0 - ps / scale) / (spec.c_eff * f0)
    if v_sq <= 0:
        raise ValueError(
            "target energy ratio is unreachable for this CPU spec"
        )
    return v_sq ** 0.5


def _solve_io_mixed_voltage(spec: CpuSpec, underclock_pct: float,
                            energy_ratio: float,
                            busy_fraction: float,
                            nonbusy_duty: float) -> float:
    """Invert the mixed CPU/disk trace algebra for the effective voltage."""
    scale = 1.0 - underclock_pct / 100.0
    f0 = spec.stock_frequency_hz
    v0 = spec.top_pstate.vid_volts
    ps = spec.static_power_w
    alpha = busy_fraction
    low = spec.lowest_pstate
    top = spec.top_pstate
    # Lowest-p-state dynamic coefficient relative to c_eff * V^2 * F0:
    # voltage scales by the VID ratio, frequency by the multiplier ratio,
    # and the non-scalable window runs at ``nonbusy_duty``.
    vid_ratio_sq = (low.vid_volts / top.vid_volts) ** 2
    mult_ratio = low.multiplier / top.multiplier
    kappa = vid_ratio_sq * mult_ratio * nonbusy_duty
    # Per stock-second: E = alpha*Ps/(1-u) + (1-alpha)*Ps
    #                      + c*F0*V^2*(alpha + (1-alpha)*kappa*(1-u))
    e0 = (
        ps
        + spec.c_eff * f0 * v0 * v0
        * (alpha + (1.0 - alpha) * kappa)
    )
    fixed = alpha * ps / scale + (1.0 - alpha) * ps
    coeff = spec.c_eff * f0 * (alpha + (1.0 - alpha) * kappa * scale)
    v_sq = (energy_ratio * e0 - fixed) / coeff
    if v_sq <= 0:
        raise ValueError(
            "target energy ratio is unreachable for this CPU spec"
        )
    return v_sq ** 0.5


def build_voltage_table(
    workload_class: str,
    spec: CpuSpec | None = None,
    busy_fraction: float = targets.COMMERCIAL_BUSY_FRACTION,
    nonbusy_duty: float = IO_MIXED_NONBUSY_DUTY,
) -> EffectiveVoltageTable:
    """Derive the calibrated effective-voltage table for a workload class."""
    spec = spec if spec is not None else e8500_like_spec()
    profile = _profile_name(workload_class)
    entries: dict[tuple[float, VoltageDowngrade], float] = {}
    v0 = spec.top_pstate.vid_volts
    entries[(0.0, VoltageDowngrade.NONE)] = v0
    for downgrade in DOWNGRADES:
        for pct in UNDERCLOCK_LEVELS:
            ratio = targets.energy_ratio_target(
                profile, _downgrade_name(downgrade), pct
            )
            if workload_class == CPU_BOUND:
                volts = _solve_cpu_bound_voltage(spec, pct, ratio)
            else:
                volts = _solve_io_mixed_voltage(
                    spec, pct, ratio, busy_fraction, nonbusy_duty
                )
            entries[(float(pct), downgrade)] = volts
    return EffectiveVoltageTable(entries)


def paper_memory_spec() -> MemorySpec:
    """2 x 1 GB DDR3; idle draws reproduce Table 1 rows 4-5."""
    return MemorySpec(
        dimm_count=2,
        dimm_gb=1.0,
        channel_overhead_w=2.55,
        background_w_per_dimm=1.45,
        active_w_per_dimm=1.3,
    )


def paper_disk_spec() -> DiskSpec:
    """WD Caviar SE16-like drive; calibrated for Sec. 3.5 and Fig. 5."""
    return DiskSpec()


def paper_sut(has_gpu: bool = True, has_disk: bool = True) -> SystemUnderTest:
    """The calibrated system under test (paper Sec. 3.1 machine)."""
    cpu_spec = e8500_like_spec()
    tables = {
        CPU_BOUND: build_voltage_table(CPU_BOUND, cpu_spec),
        IO_MIXED: build_voltage_table(IO_MIXED, cpu_spec),
    }
    return SystemUnderTest(
        cpu_spec=cpu_spec,
        memory_spec=paper_memory_spec(),
        disk_spec=paper_disk_spec(),
        psu_spec=PsuSpec(),
        motherboard=Motherboard(standby_w=4.7, on_w=13.5, cpu_support_w=18.6),
        gpu=Gpu(idle_w=11.6),
        fan=CpuFan(w=1.8),
        voltage_tables=tables,
        has_gpu=has_gpu,
        has_disk=has_disk,
    )


def default_system() -> SystemUnderTest:
    """Alias used by the public API: the calibrated paper machine."""
    return paper_sut()
