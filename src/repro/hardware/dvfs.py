"""DVFS governors: SpeedStep-like p-state selection and multiplier capping.

The paper lets Intel SpeedStep act freely during every run; the CPU
therefore drops to lower p-states during low-utilization phases (client
result handling, disk waits).  :class:`UtilizationGovernor` reproduces
that behaviour deterministically: given a work segment's duty-cycle
utilization it picks the lowest p-state that still leaves headroom,
exactly like an "ondemand"-style governor in steady state.

:class:`CappedGovernor` implements the *alternative* power-management
mechanism the paper contrasts with underclocking (Sec. 3): capping the
maximum multiplier.  Capping removes the top p-states entirely, which is
a coarser knob -- the ablation benchmark shows the resulting frequency
granularity difference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import Cpu, PState


class Governor:
    """Base class: maps a utilization level to a p-state."""

    def select_pstate(self, cpu: Cpu, utilization: float) -> PState:
        raise NotImplementedError

    def available_pstates(self, cpu: Cpu) -> list[PState]:
        return cpu.available_pstates


@dataclass
class UtilizationGovernor(Governor):
    """SpeedStep-like governor.

    A segment running at duty-cycle ``u`` at the *top* frequency could run
    at a frequency ``u * f_top`` and still keep up.  The governor picks the
    slowest available p-state whose frequency is at least
    ``u * f_top / headroom`` so the CPU stays slightly under-committed,
    then the system simulator recomputes the actual busy fraction at the
    chosen frequency.

    ``headroom`` < 1 makes the governor conservative (it keeps a margin
    before downclocking), matching SpeedStep's bias toward responsiveness.
    """

    headroom: float = 0.90

    def __post_init__(self) -> None:
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")

    def select_pstate(self, cpu: Cpu, utilization: float) -> PState:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        pstates = self.available_pstates(cpu)
        top_freq = pstates[-1].multiplier * cpu.fsb_hz
        required = utilization * top_freq / self.headroom
        for pstate in pstates:  # ascending multiplier order
            if pstate.multiplier * cpu.fsb_hz >= required:
                return pstate
        return pstates[-1]


@dataclass
class CappedGovernor(Governor):
    """Multiplier-capped power management (the paper's contrast case).

    Removes every p-state whose multiplier exceeds ``max_multiplier``;
    within the remaining states it behaves like the utilization governor.
    With the paper's example (FSB 333 MHz, multipliers 6..9), a cap of 7
    limits the CPU to 2.33 GHz and leaves only two transition states.
    """

    max_multiplier: float
    headroom: float = 0.90

    def __post_init__(self) -> None:
        if self.max_multiplier <= 0:
            raise ValueError("max_multiplier must be positive")

    def available_pstates(self, cpu: Cpu) -> list[PState]:
        allowed = [
            p for p in cpu.available_pstates
            if p.multiplier <= self.max_multiplier
        ]
        if not allowed:
            # The cap is below the lowest multiplier: clamp to the lowest.
            allowed = [cpu.available_pstates[0]]
        return allowed

    def select_pstate(self, cpu: Cpu, utilization: float) -> PState:
        inner = UtilizationGovernor(headroom=self.headroom)
        pstates = self.available_pstates(cpu)
        top_freq = pstates[-1].multiplier * cpu.fsb_hz
        required = utilization * top_freq / inner.headroom
        for pstate in pstates:
            if pstate.multiplier * cpu.fsb_hz >= required:
                return pstate
        return pstates[-1]


def frequency_steps_hz(cpu: Cpu, governor: Governor) -> list[float]:
    """The distinct CPU frequencies reachable under ``governor``.

    Used by the capping-vs-underclocking ablation to show that capping
    shrinks the set of transition states while underclocking keeps all of
    them (at globally scaled frequencies).
    """
    return sorted(
        pstate.multiplier * cpu.fsb_hz
        for pstate in governor.available_pstates(cpu)
    )
