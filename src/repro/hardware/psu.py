"""Power-supply-unit model: efficiency versus load.

The paper measures wall power with a Yokogawa meter and estimates the
Corsair VX450W's efficiency at ~83% near the system's ~20% load point
(Sec. 3.2), noting that Table 1 therefore contains significant PSU
losses.  We model an 80plus-style efficiency curve: poor at very light
load, peaking in the middle of the rating, slightly lower at full load.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


def _default_curve() -> list[tuple[float, float]]:
    # (load fraction of rating, efficiency) anchor points; VX450W-like.
    return [
        (0.00, 0.60),
        (0.05, 0.72),
        (0.10, 0.79),
        (0.20, 0.83),
        (0.50, 0.86),
        (0.80, 0.85),
        (1.00, 0.83),
    ]


@dataclass
class PsuSpec:
    """Static description of the PSU.

    ``standby_w`` is the wall draw with the system soft-off (the 9.2 W
    first row of Table 1 minus the motherboard's standby share).
    """

    rating_w: float = 450.0
    standby_w: float = 4.5
    curve: list[tuple[float, float]] = field(default_factory=_default_curve)

    def __post_init__(self) -> None:
        if self.rating_w <= 0:
            raise ValueError("rating_w must be positive")
        if self.standby_w < 0:
            raise ValueError("standby_w must be non-negative")
        self.curve = sorted(self.curve)
        if len(self.curve) < 2:
            raise ValueError("efficiency curve needs at least two points")
        for _, eff in self.curve:
            if not 0.0 < eff <= 1.0:
                raise ValueError("efficiency must be in (0, 1]")


class Psu:
    """Converts DC load into wall draw through the efficiency curve."""

    def __init__(self, spec: PsuSpec | None = None):
        self.spec = spec if spec is not None else PsuSpec()

    def efficiency(self, dc_load_w: float) -> float:
        """Piecewise-linear interpolated efficiency at ``dc_load_w``."""
        if dc_load_w < 0:
            raise ValueError("dc_load_w must be non-negative")
        frac = min(1.0, dc_load_w / self.spec.rating_w)
        points = self.spec.curve
        keys = [p[0] for p in points]
        idx = bisect.bisect_right(keys, frac)
        if idx == 0:
            return points[0][1]
        if idx == len(points):
            return points[-1][1]
        (x0, y0), (x1, y1) = points[idx - 1], points[idx]
        if x1 == x0:
            return y1
        t = (frac - x0) / (x1 - x0)
        return y0 + t * (y1 - y0)

    def wall_power_w(self, dc_load_w: float) -> float:
        """Wall draw for a DC load, including conversion losses."""
        if dc_load_w == 0:  # repro: noqa[FLOAT-EQ]: exact zero DC load selects standby draw
            return self.spec.standby_w
        return dc_load_w / self.efficiency(dc_load_w)

    def loss_w(self, dc_load_w: float) -> float:
        return self.wall_power_w(dc_load_w) - dc_load_w

    def wall_power_w_array(self, dc_load_w):
        """Vectorized :meth:`wall_power_w` over a numpy array.

        A played trace has few distinct per-interval DC loads (one per
        segment kind x utilization level), so the scalar curve lookup
        runs once per unique load and broadcasts back.
        """
        import numpy as np

        dc = np.asarray(dc_load_w, dtype=np.float64)
        uniques, inverse = np.unique(dc, return_inverse=True)
        walls = np.array(
            [self.wall_power_w(float(v)) for v in uniques],
            dtype=np.float64,
        )
        return walls[inverse].reshape(dc.shape)
