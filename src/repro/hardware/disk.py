"""Hard disk drive model: timing and split 5V/12V power rails.

Reproduces the behaviour behind the paper's Section 3.5 and Figure 5:

* Sequential reads run at a constant transfer rate, so throughput and
  energy-per-KB are flat in the read block size.
* Random reads pay a per-operation overhead (seek + rotational latency)
  plus a per-KB random-mode transfer cost, so throughput rises with block
  size but *sub-proportionally* -- the paper measures ~1.88x / ~3.5x /
  ~6x for 8/16/32 KB blocks over 4 KB, not the ideal 2x / 4x / 8x.
* Power is drawn on two lines, 5 V (electronics) and 12 V (spindle and
  actuator), which the paper measures with current probes; energy per KB
  tracks 1/throughput because active power is roughly constant.

Defaults are calibrated so the Sec. 3.5 Joule figures land: ~4.4 W
average with light warm-run activity and ~7.3 W averaged over a cold run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.trace import DiskAccess


@dataclass
class DiskSpec:
    """Static description of the drive (WD Caviar SE16-like defaults).

    Timing: ``seq_rate_bps`` is the sustained sequential rate;
    ``random_overhead_s`` is average seek + rotational latency per random
    operation; ``random_per_kb_s`` is the calibrated per-KB cost in
    random mode (head settle, cache-bypass transfer), responsible for the
    sub-proportional block-size scaling of Fig. 5.

    Power: idle and active draws per rail.  The 5 V rail powers the
    electronics (roughly constant); the 12 V rail powers the spindle
    (constant) and the actuator (active only while seeking).
    """

    capacity_bytes: float = 320e9
    seq_rate_bps: float = 72e6
    random_overhead_s: float = 12.9e-3
    random_per_kb_s: float = 0.22e-3
    #: the per-KB random settle cost applies only to the head of each
    #: operation; beyond this size the transfer runs at the sequential
    #: rate.  This reproduces Fig. 5's sub-proportional small-block
    #: scaling without making large chunked reads absurdly slow.
    random_per_kb_cap_bytes: float = 64 * 1024
    write_penalty: float = 1.05

    idle_5v_w: float = 1.4
    idle_12v_w: float = 2.6
    active_5v_w: float = 2.6
    active_12v_w: float = 6.0

    def __post_init__(self) -> None:
        if self.seq_rate_bps <= 0:
            raise ValueError("seq_rate_bps must be positive")
        if self.random_overhead_s < 0 or self.random_per_kb_s < 0:
            raise ValueError("random costs must be non-negative")
        for value in (
            self.idle_5v_w, self.idle_12v_w,
            self.active_5v_w, self.active_12v_w,
        ):
            if value < 0:
                raise ValueError("power terms must be non-negative")

    @property
    def idle_power_w(self) -> float:
        return self.idle_5v_w + self.idle_12v_w

    @property
    def active_power_w(self) -> float:
        return self.active_5v_w + self.active_12v_w


@dataclass(frozen=True)
class DiskEnergy:
    """Energy drawn on each rail over some window (paper's probe setup)."""

    joules_5v: float
    joules_12v: float

    @property
    def total_joules(self) -> float:
        return self.joules_5v + self.joules_12v

    def __add__(self, other: "DiskEnergy") -> "DiskEnergy":
        return DiskEnergy(
            self.joules_5v + other.joules_5v,
            self.joules_12v + other.joules_12v,
        )


ZERO_DISK_ENERGY = DiskEnergy(0.0, 0.0)


class Disk:
    """A drive instance: converts access batches to time and rail energy."""

    def __init__(self, spec: DiskSpec | None = None):
        self.spec = spec if spec is not None else DiskSpec()

    # -- timing ------------------------------------------------------

    def sequential_time_s(self, bytes_total: float) -> float:
        """Wall time to stream ``bytes_total`` sequentially."""
        if bytes_total < 0:
            raise ValueError("bytes_total must be non-negative")
        return bytes_total / self.spec.seq_rate_bps

    def random_time_s(self, num_ops: int, bytes_total: float) -> float:
        """Wall time for ``num_ops`` random reads totalling ``bytes_total``.

        Per op: seek + rotational overhead, a settle cost proportional to
        the first ``random_per_kb_cap_bytes`` of the block, then
        sequential-rate transfer for the remainder.
        """
        if num_ops < 0 or bytes_total < 0:
            raise ValueError("ops/bytes must be non-negative")
        if num_ops == 0:
            return 0.0
        avg_block = bytes_total / num_ops
        settled = min(avg_block, self.spec.random_per_kb_cap_bytes)
        per_op = (
            self.spec.random_overhead_s
            + self.spec.random_per_kb_s * (settled / 1024.0)
        )
        return num_ops * per_op + bytes_total / self.spec.seq_rate_bps

    def access_time_s(self, access: DiskAccess) -> float:
        """Wall time for one trace segment."""
        if access.sequential:
            time_s = self.sequential_time_s(access.bytes_total)
        else:
            time_s = self.random_time_s(access.num_ops, access.bytes_total)
        if access.write:
            time_s *= self.spec.write_penalty
        return time_s

    def access_times_s(self, num_ops, bytes_total, sequential, write):
        """Vectorized :meth:`access_time_s` over parallel numpy arrays.

        Applies the same sequential/random formulas element-wise; used
        by the compiled-trace playback path.
        """
        import numpy as np

        num_ops = np.asarray(num_ops, dtype=np.float64)
        bytes_total = np.asarray(bytes_total, dtype=np.float64)
        seq_time = bytes_total / self.spec.seq_rate_bps
        with np.errstate(divide="ignore", invalid="ignore"):
            avg_block = np.where(num_ops > 0, bytes_total / np.maximum(num_ops, 1), 0.0)
        settled = np.minimum(avg_block, self.spec.random_per_kb_cap_bytes)
        per_op = (
            self.spec.random_overhead_s
            + self.spec.random_per_kb_s * (settled / 1024.0)
        )
        rand_time = np.where(
            num_ops > 0, num_ops * per_op + seq_time, 0.0
        )
        times = np.where(np.asarray(sequential, dtype=bool),
                         seq_time, rand_time)
        return np.where(np.asarray(write, dtype=bool),
                        times * self.spec.write_penalty, times)

    # -- power/energy ------------------------------------------------

    def active_energy(self, busy_s: float) -> DiskEnergy:
        """Rail energy while the drive is actively reading/writing."""
        if busy_s < 0:
            raise ValueError("busy_s must be non-negative")
        return DiskEnergy(
            self.spec.active_5v_w * busy_s,
            self.spec.active_12v_w * busy_s,
        )

    def idle_energy(self, idle_s: float) -> DiskEnergy:
        """Rail energy while spinning idle."""
        if idle_s < 0:
            raise ValueError("idle_s must be non-negative")
        return DiskEnergy(
            self.spec.idle_5v_w * idle_s,
            self.spec.idle_12v_w * idle_s,
        )

    # -- Figure 5 primitives ------------------------------------------

    def throughput_bps(self, block_bytes: int, sequential: bool,
                       total_bytes: float = 1.6e9) -> float:
        """Data throughput reading ``total_bytes`` in ``block_bytes`` calls.

        The Fig. 5 microbenchmark: same total volume, varying read size.
        """
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        num_ops = int(total_bytes // block_bytes)
        moved = num_ops * block_bytes
        if sequential:
            time_s = self.sequential_time_s(moved)
        else:
            time_s = self.random_time_s(num_ops, moved)
        return moved / time_s

    def energy_per_kb(self, block_bytes: int, sequential: bool,
                      total_bytes: float = 1.6e9) -> float:
        """Joules per KB retrieved for the Fig. 5(b) series."""
        rate = self.throughput_bps(block_bytes, sequential, total_bytes)
        # Active power is constant while the access pattern runs, so
        # energy per byte is power / throughput.
        return self.spec.active_power_w / rate * 1024.0
