"""Shared columnar trace store: one memory-mapped file per namespace.

The per-entry ``.npz`` cache (:class:`~repro.workloads.runner.TraceCache`)
pays an archive open + decompress + array copy for every ``get``.  At
fleet scale that read path dominates: 100 nodes replaying the same 50
distinct traces re-read the same bytes over and over, and every process
holds its own copy.

:class:`ColumnarTraceStore` instead keeps *one append-only container
file per namespace* holding :data:`~repro.hardware.trace.ROW_DTYPE`
records -- the :class:`~repro.hardware.trace.CompiledTrace` arrays laid
out row-major -- plus a small JSON index mapping each cache key to its
``(offset, count)`` row span and segment labels.  Reads memory-map the
container (``np.memmap``), so a loaded trace is a zero-copy view: every
reader in every process shares one physical copy through the page
cache, and loading is O(index lookup), not O(trace bytes).

Concurrency model (crash-safe by construction):

* Writers serialize on an ``fcntl`` file lock, append rows, ``fsync``
  the data file, then publish the index via temp-file + ``os.replace``
  (atomic on POSIX).  The index is only ever replaced *after* the rows
  it points at are durable, so readers can never resolve a span into
  unwritten bytes.
* Readers take no lock.  They see either the old index or the new one;
  a torn trailing append (a writer died before publishing) is invisible
  because no index entry points at it, and the next writer truncates it
  away.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.hardware.trace import CompiledTrace, ROW_DTYPE

try:  # POSIX writer lock; the store degrades to atomic-index-only
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

INDEX_FORMAT = "repro-trace-store"
INDEX_VERSION = 1


def _digest(namespace: str, key: str) -> str:
    """Stable index key (raw keys embed whole SQL statements)."""
    return hashlib.sha256(
        f"{namespace}\x00{key}".encode("utf-8")
    ).hexdigest()


class ColumnarTraceStore:
    """Append-only (key -> row span) store over one container file."""

    def __init__(self, directory: str | Path,
                 namespace: str = "") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.namespace = namespace
        stem = "store-" + hashlib.sha256(
            namespace.encode("utf-8")
        ).hexdigest()[:16]
        self.rows_path = self.directory / f"{stem}.rows"
        self.index_path = self.directory / f"{stem}.index.json"
        self._lock_path = self.directory / f"{stem}.lock"
        self._index: dict | None = None
        self._index_stamp: tuple[int, int] | None = None
        self._rows: np.ndarray | None = None

    # -- index ----------------------------------------------------------

    def _read_index(self) -> dict:
        try:
            doc = json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(doc, dict)
            or doc.get("format") != INDEX_FORMAT
        ):
            return {}
        entries = doc.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _index_view(self, refresh: bool = False) -> dict:
        """Cached index, reloaded when the file on disk changed."""
        stamp: tuple[int, int] | None
        try:
            st = self.index_path.stat()
            stamp = (st.st_mtime_ns, st.st_size)
        except OSError:
            stamp = None
        index = self._index
        if refresh or index is None or stamp != self._index_stamp:
            index = self._read_index()
            self._index = index
            self._index_stamp = stamp
        return index

    def _publish_index(self, entries: dict) -> None:
        doc = {
            "format": INDEX_FORMAT,
            "version": INDEX_VERSION,
            "namespace": self.namespace,
            "entries": entries,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=self.index_path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(doc, f)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp_name, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._index = entries
        self._index_stamp = None  # force a stat on the next read

    # -- rows -----------------------------------------------------------

    def _rows_view(self, min_rows: int) -> np.ndarray | None:
        """Memory-mapped row array covering at least ``min_rows`` rows."""
        if self._rows is not None and len(self._rows) >= min_rows:
            return self._rows
        try:
            n = os.path.getsize(self.rows_path) // ROW_DTYPE.itemsize
            if n < min_rows:
                return None
            self._rows = np.memmap(
                self.rows_path, dtype=ROW_DTYPE, mode="r", shape=(n,)
            )
        except (OSError, ValueError):
            return None
        return self._rows

    def __len__(self) -> int:
        return len(self._index_view())

    def __contains__(self, key: str) -> bool:
        return _digest(self.namespace, key) in self._index_view()

    def keys_digests(self) -> list[str]:
        return sorted(self._index_view())

    # -- store API ------------------------------------------------------

    def get(self, key: str) -> CompiledTrace | None:
        """Zero-copy lookup; ``None`` on any miss or unreadable span."""
        digest = _digest(self.namespace, key)
        entry = self._index_view().get(digest)
        if entry is None:
            # Another process may have published since our last stat.
            entry = self._index_view(refresh=True).get(digest)
            if entry is None:
                return None
        try:
            offset = int(entry["offset"])
            count = int(entry["count"])
            labels = tuple(str(s) for s in entry["labels"])
        except (KeyError, TypeError, ValueError):
            return None
        if offset < 0 or count < 0:
            return None
        rows = self._rows_view(offset + count)
        if rows is None:
            return None
        try:
            return CompiledTrace.from_rows(
                rows[offset:offset + count], labels
            )
        except ValueError:
            return None

    def put(self, key: str, compiled: CompiledTrace) -> None:
        """Append ``compiled`` under ``key`` (first writer wins)."""
        digest = _digest(self.namespace, key)
        with self._writer_lock():
            entries = dict(self._index_view(refresh=True))
            if digest in entries:
                return
            rows = compiled.to_rows()
            with open(self.rows_path, "ab") as f:
                end = f.tell()
                if end % ROW_DTYPE.itemsize:
                    # A writer died mid-append before publishing; the
                    # torn tail is unreferenced, so reclaim it.
                    end -= end % ROW_DTYPE.itemsize
                    f.truncate(end)
                    f.seek(end)
                offset = end // ROW_DTYPE.itemsize
                f.write(rows.tobytes())
                f.flush()
                os.fsync(f.fileno())
            entries[digest] = {
                "offset": offset,
                "count": len(rows),
                "labels": list(compiled.labels),
            }
            self._publish_index(entries)

    def _writer_lock(self) -> _FileLock:
        return _FileLock(self._lock_path)


class _FileLock:
    """Exclusive advisory lock serializing writers on one namespace."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._fh: TextIO | None = None

    def __enter__(self) -> _FileLock:
        if fcntl is not None:
            self._fh = open(self.path, "w")
            fcntl.flock(self._fh, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._fh is not None:
            fcntl.flock(self._fh, fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None
        return False
