"""Processor model: p-states, FSB underclocking, voltage downgrades.

Implements the machinery of the paper's Section 3:

* A set of **p-states**, each a (multiplier, VID voltage) pair.  CPU
  frequency is ``multiplier x FSB``; the E8500-like default uses the
  paper's illustrative multipliers 6..9 on a 333 MHz FSB.
* **FSB underclocking** (the PVC mechanism): scaling the FSB down by
  5/10/15% lowers the frequency of *every* p-state while keeping all
  multiplier steps available -- unlike **multiplier capping**, which
  removes the top steps (implemented in :mod:`repro.hardware.dvfs` as
  the ablation baseline).
* **Voltage downgrades** ("small"/"medium" in the ASUS 6-Engine sense):
  a negative offset applied on top of the per-p-state VID.
* The circuit power model ``P = C . V^2 . F + P_static`` from Sec. 3.4.

Calibrated profiles may install an :class:`EffectiveVoltageTable` that
pins the *effective* (sensor-observed) voltage per PVC setting; see
:mod:`repro.hardware.profiles` for how those values are derived from the
paper's reported energy ratios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class VoltageDowngrade(enum.Enum):
    """ASUS 6-Engine style CPU voltage downgrade presets."""

    NONE = "none"
    SMALL = "small"
    MEDIUM = "medium"


#: Generic voltage offsets (volts) for each downgrade preset, used when no
#: calibrated effective-voltage table is installed.
DEFAULT_DOWNGRADE_OFFSETS: dict[VoltageDowngrade, float] = {
    VoltageDowngrade.NONE: 0.0,
    VoltageDowngrade.SMALL: 0.050,
    VoltageDowngrade.MEDIUM: 0.125,
}


@dataclass(frozen=True)
class PvcSetting:
    """One operating point of the PVC mechanism.

    ``underclock_pct`` is the percentage by which the FSB is slowed
    (0 = stock); ``downgrade`` is the CPU voltage downgrade preset.
    The paper sweeps {0, 5, 10, 15}% x {small, medium}.
    """

    underclock_pct: float = 0.0
    downgrade: VoltageDowngrade = VoltageDowngrade.NONE

    def __post_init__(self) -> None:
        if not 0.0 <= self.underclock_pct < 100.0:
            raise ValueError("underclock_pct must be in [0, 100)")

    @property
    def fsb_scale(self) -> float:
        """Multiplier applied to the stock FSB frequency."""
        return 1.0 - self.underclock_pct / 100.0

    @property
    def is_stock(self) -> bool:
        return (
            self.underclock_pct == 0.0
            and self.downgrade is VoltageDowngrade.NONE
        )

    def describe(self) -> str:
        if self.is_stock:
            return "stock"
        return f"{self.underclock_pct:g}% underclock / {self.downgrade.value}"


STOCK_SETTING = PvcSetting()


@dataclass(frozen=True)
class PState:
    """A processor performance state: CPU multiplier and VID voltage."""

    multiplier: float
    vid_volts: float

    def __post_init__(self) -> None:
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self.vid_volts <= 0:
            raise ValueError("vid_volts must be positive")


class EffectiveVoltageTable:
    """Calibrated effective voltage of the *top* p-state per PVC setting.

    The paper validates (Fig. 4) that measured EDP tracks ``V^2/F`` using
    the *measured average* voltage, which drifts slightly upward with
    deeper underclocking.  A table instance pins those effective values;
    lower p-states scale proportionally to their VID ratio.

    Keys are ``(underclock_pct, VoltageDowngrade)``; missing keys fall
    back to the generic VID-minus-offset model.
    """

    def __init__(self, entries: dict[tuple[float, VoltageDowngrade], float]):
        self._entries = dict(entries)

    def lookup(self, setting: PvcSetting) -> float | None:
        return self._entries.get((setting.underclock_pct, setting.downgrade))

    def entries(self) -> dict[tuple[float, VoltageDowngrade], float]:
        return dict(self._entries)


@dataclass
class CpuSpec:
    """Static description of a processor.

    ``c_eff`` is the effective switched capacitance of the ``C.V^2.F``
    model in W / (V^2 Hz); ``static_power_w`` is leakage; ``idle_activity``
    is the residual activity factor when the core is idle at the lowest
    p-state (clock-gated but not power-gated, as on Core2-era parts).
    """

    model: str
    fsb_hz: float
    pstates: list[PState]
    c_eff: float
    static_power_w: float
    idle_activity: float = 0.08
    downgrade_offsets: dict[VoltageDowngrade, float] = field(
        default_factory=lambda: dict(DEFAULT_DOWNGRADE_OFFSETS)
    )

    def __post_init__(self) -> None:
        if not self.pstates:
            raise ValueError("a CPU needs at least one p-state")
        self.pstates = sorted(self.pstates, key=lambda p: p.multiplier)
        if self.fsb_hz <= 0:
            raise ValueError("fsb_hz must be positive")
        if self.c_eff <= 0:
            raise ValueError("c_eff must be positive")
        if self.static_power_w < 0:
            raise ValueError("static_power_w must be non-negative")

    @property
    def top_pstate(self) -> PState:
        return self.pstates[-1]

    @property
    def lowest_pstate(self) -> PState:
        return self.pstates[0]

    @property
    def stock_frequency_hz(self) -> float:
        return self.top_pstate.multiplier * self.fsb_hz


class Cpu:
    """A processor under a given PVC setting.

    All frequencies, voltages, and powers exposed here already reflect
    the installed :class:`PvcSetting`, so callers (the system simulator,
    the governor) never deal with underclock math themselves.
    """

    def __init__(
        self,
        spec: CpuSpec,
        setting: PvcSetting = STOCK_SETTING,
        voltage_table: EffectiveVoltageTable | None = None,
    ):
        self.spec = spec
        self.setting = setting
        self.voltage_table = voltage_table

    # -- frequency ---------------------------------------------------

    @property
    def fsb_hz(self) -> float:
        """FSB frequency after underclocking."""
        return self.spec.fsb_hz * self.setting.fsb_scale

    def frequency_hz(self, pstate: PState) -> float:
        """CPU frequency at ``pstate`` under the current setting."""
        return pstate.multiplier * self.fsb_hz

    @property
    def available_pstates(self) -> list[PState]:
        """All p-states remain available under underclocking (Sec. 3)."""
        return list(self.spec.pstates)

    @property
    def top_frequency_hz(self) -> float:
        return self.frequency_hz(self.spec.top_pstate)

    # -- voltage -----------------------------------------------------

    def voltage(self, pstate: PState) -> float:
        """Effective core voltage at ``pstate`` under the current setting.

        If a calibrated table pins the top p-state voltage for this
        setting, lower p-states scale by their VID ratio; otherwise the
        generic VID-minus-offset model applies.
        """
        if self.voltage_table is not None:
            top_v = self.voltage_table.lookup(self.setting)
            if top_v is not None:
                ratio = pstate.vid_volts / self.spec.top_pstate.vid_volts
                return top_v * ratio
        offset = self.spec.downgrade_offsets[self.setting.downgrade]
        return max(0.1, pstate.vid_volts - offset)

    # -- power -------------------------------------------------------

    def busy_power_w(self, pstate: PState, activity: float = 1.0) -> float:
        """Package power while executing at ``pstate``.

        ``activity`` scales the dynamic component (1.0 = fully active
        pipeline; memory-stalled code has a lower activity factor).
        """
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        volts = self.voltage(pstate)
        freq = self.frequency_hz(pstate)
        dynamic = self.spec.c_eff * volts * volts * freq * activity
        return self.spec.static_power_w + dynamic

    def idle_power_w(self) -> float:
        """Package power when idle (lowest p-state, clock-gated)."""
        return self.busy_power_w(
            self.spec.lowest_pstate, activity=self.spec.idle_activity
        )

    def with_setting(
        self,
        setting: PvcSetting,
        voltage_table: EffectiveVoltageTable | None = None,
    ) -> "Cpu":
        """A copy of this CPU under a different PVC setting."""
        table = voltage_table if voltage_table is not None else self.voltage_table
        return Cpu(self.spec, setting, table)


def e8500_like_spec() -> CpuSpec:
    """The paper's illustrative processor: multipliers 6..9 on 333 MHz FSB.

    VID voltages step linearly from 1.025 V (x6) to 1.250 V (x9), a
    typical Core2 ladder.  ``c_eff`` and ``static_power_w`` are set so
    stock fully-busy power is ~38 W and idle ~4.3 W, consistent with the
    CPU-energy magnitudes reported in the paper (Sec. 3.2/3.5).
    """
    pstates = [
        PState(6.0, 1.025),
        PState(7.0, 1.100),
        PState(8.0, 1.175),
        PState(9.0, 1.250),
    ]
    return CpuSpec(
        model="e8500-like",
        fsb_hz=333e6,
        pstates=pstates,
        c_eff=7.55e-9,
        static_power_w=3.0,
        idle_activity=0.08,
    )
