"""Simulated server hardware: CPU, DVFS, memory, disk, PSU, sensors."""

from repro.hardware.cpu import (
    Cpu,
    CpuSpec,
    EffectiveVoltageTable,
    PState,
    PvcSetting,
    STOCK_SETTING,
    VoltageDowngrade,
    e8500_like_spec,
)
from repro.hardware.disk import Disk, DiskEnergy, DiskSpec
from repro.hardware.dvfs import (
    CappedGovernor,
    Governor,
    UtilizationGovernor,
    frequency_steps_hz,
)
from repro.hardware.memory import Memory, MemorySpec
from repro.hardware.profiles import (
    build_voltage_table,
    default_system,
    paper_sut,
    pvc_settings_grid,
)
from repro.hardware.psu import Psu, PsuSpec
from repro.hardware.sensors import CurrentProbe, EpuSensor, WallMeter
from repro.hardware.system import (
    CPU_BOUND,
    IO_MIXED,
    PowerInterval,
    RunMeasurement,
    SystemUnderTest,
)
from repro.hardware.trace import ClientWork, CpuWork, DiskAccess, Idle, Trace

__all__ = [
    "CPU_BOUND",
    "CappedGovernor",
    "ClientWork",
    "Cpu",
    "CpuSpec",
    "CpuWork",
    "CurrentProbe",
    "Disk",
    "DiskAccess",
    "DiskEnergy",
    "DiskSpec",
    "EffectiveVoltageTable",
    "EpuSensor",
    "Governor",
    "IO_MIXED",
    "Idle",
    "Memory",
    "MemorySpec",
    "PState",
    "PowerInterval",
    "Psu",
    "PsuSpec",
    "PvcSetting",
    "RunMeasurement",
    "STOCK_SETTING",
    "SystemUnderTest",
    "Trace",
    "UtilizationGovernor",
    "VoltageDowngrade",
    "WallMeter",
    "build_voltage_table",
    "default_system",
    "e8500_like_spec",
    "frequency_steps_hz",
    "paper_sut",
    "pvc_settings_grid",
]
