"""DDR3 main-memory model.

Main memory sits on the Northbridge: its clock is a multiple of the FSB,
so PVC underclocking slows memory too and trims its power (Sec. 3 of the
paper).  Power is modelled per DIMM as a background term plus an active
term proportional to the memory clock and to how busy the system is --
Table 1 puts the two 1 GB DIMMs at ~6 W combined when idle-on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MemorySpec:
    """Static description of the installed DIMMs.

    ``background_w_per_dimm`` covers refresh + standby current;
    ``active_w_per_dimm`` is the extra draw at full access rate and the
    stock memory clock.  ``fsb_multiplier`` relates the memory clock to
    the FSB (DDR3-1333 on a 333 MHz FSB uses a 4:1 ratio counted in
    transfers).
    """

    dimm_count: int = 2
    dimm_gb: float = 1.0
    channel_overhead_w: float = 2.55
    background_w_per_dimm: float = 1.45
    active_w_per_dimm: float = 1.3
    fsb_multiplier: float = 4.0
    stock_fsb_hz: float = 333e6

    def __post_init__(self) -> None:
        if self.dimm_count < 0:
            raise ValueError("dimm_count must be non-negative")
        if self.background_w_per_dimm < 0 or self.active_w_per_dimm < 0:
            raise ValueError("power terms must be non-negative")
        if self.channel_overhead_w < 0:
            raise ValueError("channel_overhead_w must be non-negative")


class Memory:
    """Memory subsystem under a given FSB frequency."""

    def __init__(self, spec: MemorySpec, fsb_hz: float | None = None):
        self.spec = spec
        self.fsb_hz = fsb_hz if fsb_hz is not None else spec.stock_fsb_hz
        if self.fsb_hz <= 0:
            raise ValueError("fsb_hz must be positive")

    @property
    def clock_hz(self) -> float:
        """Memory clock, scaled with the (possibly underclocked) FSB."""
        return self.fsb_hz * self.spec.fsb_multiplier

    @property
    def clock_scale(self) -> float:
        return self.fsb_hz / self.spec.stock_fsb_hz

    def power_w(self, activity: float) -> float:
        """Total DIMM power at an access ``activity`` level in [0, 1].

        The active component scales with the memory clock, so FSB
        underclocking reduces it proportionally -- the paper's point that
        underclocking saves memory energy as a side effect.
        """
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        background = self.spec.background_w_per_dimm * self.spec.dimm_count
        if self.spec.dimm_count > 0:
            background += self.spec.channel_overhead_w
        active = (
            self.spec.active_w_per_dimm
            * self.spec.dimm_count
            * activity
            * self.clock_scale
        )
        return background + active

    def idle_power_w(self) -> float:
        return self.power_w(0.0)

    def with_fsb(self, fsb_hz: float) -> "Memory":
        return Memory(self.spec, fsb_hz)
