"""Time the perf pipelines (sweep + cluster) and write BENCH_perf.json.

    PYTHONPATH=src python scripts/perf_report.py [sf] [out.json] \
        [--trace-cache DIR]

Runs two comparisons and records both in one artifact:

* the 7-setting x 5-repeat PVC sweep over the ten-query selection
  workload, naive re-execution vs execute-once/replay-many (cold and
  warm cache) -- wall clocks, speedups, database-execution counts, and
  the curves' maximum relative deviation;
* the cluster scaling scenario (16 nodes x 10k arrivals by default,
  ``REPRO_BENCH_CLUSTER_NODES``/``_ARRIVALS`` override), batched
  fleet playback vs the per-query replay loop, appended under the
  ``cluster_scaling`` key.

``--trace-cache DIR`` persists compiled traces across processes: a
second invocation pointed at the same directory skips the cluster
workload's database executions entirely.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.db.profiles import mysql_profile
from repro.hardware.profiles import paper_sut
from repro.measurement.perf import (
    cluster_scaling_scenario,
    compare_cluster_playback,
    compare_sweep_paths,
)
from repro.workloads.runner import TraceCache
from repro.workloads.selection import SelectionWorkload
from repro.workloads.tpch.generator import tpch_database

DEFAULT_SF = 0.02
#: Same guard as benchmarks/conftest.py: sub-full-size runs must not
#: clobber the committed artifact.
ARTIFACT_MIN_SF = 0.05
COMMITTED_ARTIFACT = Path("BENCH_perf.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sf", nargs="?", type=float, default=DEFAULT_SF)
    parser.add_argument("out", nargs="?", type=Path,
                        default=COMMITTED_ARTIFACT)
    parser.add_argument("--trace-cache", default=None, metavar="DIR",
                        help="persist compiled traces across processes")
    args = parser.parse_args(argv)
    if args.out == COMMITTED_ARTIFACT and args.sf < ARTIFACT_MIN_SF:
        # Mirror the bench suite: smoke numbers never clobber the
        # committed record unless an output path is given explicitly.
        args.out = Path(tempfile.gettempdir()) / "BENCH_perf_smoke.json"
        print(f"SF {args.sf} < {ARTIFACT_MIN_SF}: writing to {args.out} "
              "(pass an explicit output path to override)")

    print(f"building lineitem database at SF {args.sf} ...")
    db = tpch_database(args.sf, mysql_profile(), seed=0,
                       tables=["lineitem"])
    workload = SelectionWorkload(tuple(range(1, 11)))
    comparison = compare_sweep_paths(
        db, paper_sut(), workload.queries, repeats=5,
        scale_factor=args.sf,
    )

    print(f"naive sweep           : {comparison.naive.wall_s:8.3f} s "
          f"({comparison.naive.db_executions} db executions)")
    print(f"pre-refactor sweep    : {comparison.naive_reuse.wall_s:8.3f} s "
          f"({comparison.naive_reuse.db_executions} db executions)")
    print(f"replay sweep (cold)   : {comparison.replay_cold.wall_s:8.3f} s "
          f"({comparison.replay_cold.db_executions} db executions)")
    print(f"replay sweep (warm)   : {comparison.replay_cached.wall_s:8.3f} s "
          f"({comparison.replay_cached.db_executions} db executions)")
    print(f"speedup cold/warm     : {comparison.speedup_cold:.1f}x / "
          f"{comparison.speedup_cached:.1f}x")
    print(f"speedup vs pre-refact : "
          f"{comparison.speedup_vs_prerefactor:.1f}x")
    print(f"max curve deviation   : {comparison.max_rel_diff_cold:.2e} "
          "(relative)")

    trace_cache = (
        TraceCache.for_workload(args.trace_cache, "mysql", args.sf,
                                seed=0, tables=("lineitem",))
        if args.trace_cache else None
    )
    specs, router, stream = cluster_scaling_scenario()
    print(f"\ncluster scaling       : {len(specs)} nodes x "
          f"{len(stream)} arrivals")
    cluster = compare_cluster_playback(
        db, specs, router, stream,
        scale_factor=args.sf, trace_cache=trace_cache,
    )
    print(f"schedule phase        : {cluster.schedule_wall_s:8.3f} s")
    print(f"batched playback      : {cluster.batched_wall_s:8.3f} s")
    print(f"per-query replay loop : {cluster.loop_wall_s:8.3f} s")
    print(f"playback speedup      : {cluster.speedup:.1f}x "
          f"(end-to-end {cluster.end_to_end_speedup:.1f}x)")
    print(f"max energy deviation  : {cluster.max_rel_diff:.2e} (relative)")

    record = (
        json.loads(args.out.read_text()) if args.out.exists() else {}
    )
    record.update(comparison.to_dict())
    record["cluster_scaling"] = cluster.to_dict()
    args.out.write_text(json.dumps(record, indent=2))
    print(f"wrote {args.out}")

    ok = (
        comparison.speedup_cold >= 5.0
        and comparison.max_rel_diff_cold <= 1e-9
        and cluster.speedup >= 5.0
        and cluster.max_rel_diff <= 1e-9
    )
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
