"""Time the perf pipelines (sweep + cluster + diurnal + QED) and write
``BENCH_perf.json``.

    PYTHONPATH=src python scripts/perf_report.py [sf] [out.json] \
        [--trace-cache DIR]
    PYTHONPATH=src python scripts/perf_report.py --check [out.json]

Runs four comparisons and records them in one artifact:

* the 7-setting x 5-repeat PVC sweep over the ten-query selection
  workload, naive re-execution vs execute-once/replay-many (cold and
  warm cache) -- wall clocks, speedups, database-execution counts, and
  the curves' maximum relative deviation;
* the cluster scaling scenario (16 nodes x 10k arrivals by default,
  ``REPRO_BENCH_CLUSTER_NODES``/``_ARRIVALS`` override), batched
  fleet playback vs the per-query replay loop, appended under the
  ``cluster_scaling`` key;
* the scheduler scaling scenario (100 nodes, vectorized event core vs
  the per-arrival loop at ``REPRO_BENCH_SCALING_COMPARE_ARRIVALS``,
  plus the vectorized-only 1M-arrival tier,
  ``REPRO_BENCH_SCALING_NODES``/``_ARRIVALS`` override), merged into
  the same ``cluster_scaling`` record as ``sched_*``/``tier_*`` keys;
* the diurnal ablation (four fleet policies on a heterogeneous fleet
  under the day/night rate schedule), appended under ``diurnal``,
  including the heterogeneous batched-vs-loop playback comparison;
* the QED ablation (master queue vs per-node queues vs no queueing on
  the mixed-template stream), appended under ``qed``, gating
  master <= node <= off on cluster energy at the shared SLA budget;
* the fault-recovery ablation (the canonical fault plan -- mid-batch
  crash, failed wakes, straggler window, transient unavailability --
  under spread vs consolidate-with-recovery), appended under
  ``faults``, gating that consolidation's energy win survives active
  faults at the equal SLA-miss budget with no query silently lost;
* the replication ablation (lineitem hash-partitioned into chained
  replicated shards, a crash killing one replica of every shard a
  node held, re-replication billed on both endpoints), appended under
  ``replication``, gating that quorum-aware consolidation still beats
  always-awake spread while the copies are in flight, every shard is
  restored to its replica target, and no query is silently lost.

Every artifact refresh also appends a ``history`` entry (timestamp +
gated speedups), so the perf trajectory stays machine-readable --
``scripts/check_bench_trend.py`` gates CI on it.

``--check`` re-validates the *recorded* gates of an existing artifact
without measuring anything (used by the CI workflow): every speedup
>= 5x, every playback deviation <= 1e-9, and dynamic re-consolidation
beating static spread at the shared SLA budget.

``--trace-cache DIR`` persists compiled traces across processes: a
second invocation pointed at the same directory skips the cluster
workload's database executions entirely.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from check_bench_trend import append_history

DEFAULT_SF = 0.02
#: Same guard as benchmarks/conftest.py: sub-full-size runs must not
#: clobber the committed artifact.
ARTIFACT_MIN_SF = 0.05
COMMITTED_ARTIFACT = Path("BENCH_perf.json")

#: The recorded gates ``--check`` enforces: (dotted key, kind, bound).
CHECK_GATES = [
    ("speedup_cold", "min", 5.0),
    ("max_rel_diff_cold", "max", 1e-9),
    ("cluster_scaling.speedup", "min", 5.0),
    ("cluster_scaling.max_rel_diff", "max", 1e-9),
    ("cluster_scaling.sched_speedup", "min", 5.0),
    ("cluster_scaling.sched_max_rel_diff", "max", 1e-9),
    ("diurnal.hetero_speedup", "min", 5.0),
    ("diurnal.hetero_max_rel_diff", "max", 1e-9),
    ("diurnal.dynamic_beats_spread", "true", None),
    ("qed.master_beats_node", "true", None),
    ("qed.node_beats_off", "true", None),
    ("faults.consolidate_beats_spread", "true", None),
    ("faults.conserved", "true", None),
    ("faults.faults_active", "true", None),
    ("replication.consolidate_beats_spread", "true", None),
    ("replication.conserved", "true", None),
    ("replication.re_replicated", "true", None),
    ("replication.restored", "true", None),
]


def run_check(path: Path) -> int:
    from check_bench_trend import dig

    if not path.exists():
        print(f"error: artifact {path} not found")
        return 2
    record = json.loads(path.read_text())
    failures = []
    for key, kind, bound in CHECK_GATES:
        value = dig(record, key)
        if value is None:
            failures.append(f"{key}: not recorded")
            continue
        ok = (
            value >= bound if kind == "min"
            else value <= bound if kind == "max"
            else bool(value)
        )
        bound_text = (
            f">= {bound:g}" if kind == "min"
            else f"<= {bound:g}" if kind == "max" else "true"
        )
        print(f"{'ok  ' if ok else 'FAIL'} {key} = {value} ({bound_text})")
        if not ok:
            failures.append(f"{key} = {value} violates {bound_text}")
    if failures:
        print(f"{len(failures)} recorded gate(s) failing")
        return 1
    print("all recorded gates pass")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sf", nargs="?", type=float, default=DEFAULT_SF)
    parser.add_argument("out", nargs="?", type=Path,
                        default=COMMITTED_ARTIFACT)
    parser.add_argument("--trace-cache", default=None, metavar="DIR",
                        help="persist compiled traces across processes")
    parser.add_argument("--check", action="store_true",
                        help="validate the recorded artifact's gates "
                             "and exit (no measurement)")
    args = parser.parse_args(argv)
    if args.check:
        return run_check(args.out)

    from repro.db.profiles import mysql_profile
    from repro.hardware.profiles import paper_sut
    from repro.cluster import RoundRobinRouter
    from repro.measurement.perf import (
        cluster_scaling_scenario,
        compare_cluster_playback,
        compare_cluster_scheduling,
        compare_sweep_paths,
        run_diurnal_ablation,
        run_fault_ablation,
        run_qed_ablation,
        run_replication_ablation,
        scheduler_compare_arrivals,
        scheduler_scaling_scenario,
        time_vectorized_tier,
    )
    from repro.workloads.runner import TraceCache
    from repro.workloads.selection import SelectionWorkload
    from repro.workloads.tpch.generator import tpch_database

    if args.out == COMMITTED_ARTIFACT and args.sf < ARTIFACT_MIN_SF:
        # Mirror the bench suite: smoke numbers never clobber the
        # committed record unless an output path is given explicitly.
        args.out = Path(tempfile.gettempdir()) / "BENCH_perf_smoke.json"
        print(f"SF {args.sf} < {ARTIFACT_MIN_SF}: writing to {args.out} "
              "(pass an explicit output path to override)")

    print(f"building lineitem database at SF {args.sf} ...")
    db = tpch_database(args.sf, mysql_profile(), seed=0,
                       tables=["lineitem"])
    workload = SelectionWorkload(tuple(range(1, 11)))
    comparison = compare_sweep_paths(
        db, paper_sut(), workload.queries, repeats=5,
        scale_factor=args.sf,
    )

    print(f"naive sweep           : {comparison.naive.wall_s:8.3f} s "
          f"({comparison.naive.db_executions} db executions)")
    print(f"pre-refactor sweep    : {comparison.naive_reuse.wall_s:8.3f} s "
          f"({comparison.naive_reuse.db_executions} db executions)")
    print(f"replay sweep (cold)   : {comparison.replay_cold.wall_s:8.3f} s "
          f"({comparison.replay_cold.db_executions} db executions)")
    print(f"replay sweep (warm)   : {comparison.replay_cached.wall_s:8.3f} s "
          f"({comparison.replay_cached.db_executions} db executions)")
    print(f"speedup cold/warm     : {comparison.speedup_cold:.1f}x / "
          f"{comparison.speedup_cached:.1f}x")
    print(f"speedup vs pre-refact : "
          f"{comparison.speedup_vs_prerefactor:.1f}x")
    print(f"max curve deviation   : {comparison.max_rel_diff_cold:.2e} "
          "(relative)")

    trace_cache = (
        TraceCache.for_workload(args.trace_cache, "mysql", args.sf,
                                seed=0, tables=("lineitem",))
        if args.trace_cache else None
    )
    specs, router, stream = cluster_scaling_scenario()
    print(f"\ncluster scaling       : {len(specs)} nodes x "
          f"{len(stream)} arrivals")
    cluster = compare_cluster_playback(
        db, specs, router, stream,
        scale_factor=args.sf, trace_cache=trace_cache,
    )
    print(f"schedule phase        : {cluster.schedule_wall_s:8.3f} s")
    print(f"batched playback      : {cluster.batched_wall_s:8.3f} s")
    print(f"per-query replay loop : {cluster.loop_wall_s:8.3f} s")
    print(f"playback speedup      : {cluster.speedup:.1f}x "
          f"(end-to-end {cluster.end_to_end_speedup:.1f}x)")
    print(f"max energy deviation  : {cluster.max_rel_diff:.2e} (relative)")

    sched_specs, _r, sched_stream = scheduler_scaling_scenario(
        count=scheduler_compare_arrivals()
    )
    print(f"\nevent core            : {len(sched_specs)} nodes x "
          f"{len(sched_stream)} arrivals")
    sched = compare_cluster_scheduling(
        db, sched_specs, RoundRobinRouter, sched_stream,
        scale_factor=args.sf, trace_cache=trace_cache,
    )
    print(f"legacy schedule       : "
          f"{sched.legacy_schedule_wall_s:8.3f} s")
    print(f"vectorized schedule   : "
          f"{sched.vectorized_schedule_wall_s:8.3f} s")
    print(f"scheduler speedup     : {sched.sched_speedup:.1f}x "
          f"(end-to-end {sched.end_to_end_speedup:.1f}x)")
    print(f"max energy deviation  : {sched.max_rel_diff:.2e} (relative)")

    tier_specs, tier_router, tier_stream = scheduler_scaling_scenario()
    tier = time_vectorized_tier(
        db, tier_specs, tier_router, tier_stream,
        scale_factor=args.sf, trace_cache=trace_cache,
    )
    print(f"vectorized tier       : {tier.nodes} nodes x "
          f"{tier.arrivals} arrivals in {tier.total_wall_s:.2f} s "
          f"(schedule {tier.schedule_wall_s:.2f} s, "
          f"playback {tier.playback_wall_s:.2f} s)")

    diurnal = run_diurnal_ablation(
        db, scale_factor=args.sf, trace_cache=trace_cache
    )
    print(f"\ndiurnal ablation      : {diurnal.arrivals} arrivals over "
          f"{diurnal.horizon_s:.0f} s "
          f"(SLA {diurnal.sla_s:g} s, budget {diurnal.sla_budget:.0%})")
    for name, stats in diurnal.policies.items():
        print(f"  {name:12s} {stats['wall_joules']:9.1f} J  "
              f"awake {stats['awake_node_s']:7.1f} n·s  "
              f"re-sleeps {stats['re_sleeps']:3d}  "
              f"SLA misses {stats['sla_misses']:3d}")
    print(f"hetero playback       : {diurnal.hetero_speedup:.1f}x "
          f"(deviation {diurnal.hetero_max_rel_diff:.2e})")
    print(f"dynamic beats spread  : {diurnal.dynamic_beats_spread}")

    qed = run_qed_ablation(db, scale_factor=args.sf,
                           trace_cache=trace_cache)
    print(f"\nqed ablation          : {qed.arrivals} arrivals over "
          f"{qed.nodes} nodes (threshold {qed.threshold}, "
          f"SLA {qed.sla_s:g} s, budget {qed.sla_budget:.0%})")
    for name, stats in qed.modes.items():
        batching = (
            f"  batches {stats['qed_batches']:3d} "
            f"(mean {stats['qed_mean_batch_size']:.1f}, "
            f"fallbacks {stats['qed_fallback_batches']})"
            if "qed_batches" in stats else ""
        )
        print(f"  {name:7s} {stats['wall_joules']:9.1f} J  "
              f"SLA misses {stats['sla_misses']:3d}{batching}")
    print(f"master beats node     : {qed.master_beats_node} "
          f"(saving {qed.master_vs_node_saving:.1%})")
    print(f"node beats off        : {qed.node_beats_off} "
          f"(saving {qed.node_vs_off_saving:.1%})")

    faults = run_fault_ablation(db, scale_factor=args.sf,
                                trace_cache=trace_cache)
    print(f"\nfault ablation        : {faults.arrivals} arrivals over "
          f"{faults.nodes} nodes (retry x{faults.retry_max}, "
          f"SLA {faults.sla_s:g} s, budget {faults.sla_budget:.0%})")
    for name, stats in faults.modes.items():
        f = stats["faults"]
        print(f"  {name:12s} {stats['wall_joules']:9.1f} J  "
              f"SLA misses {stats['sla_misses']:3d}  "
              f"retries {f['retries']:3d}  "
              f"dead-lettered {f['dead_lettered']:2d}  "
              f"wasted {f['wasted_joules']:6.2f} J")
    print(f"consolidate beats spread under faults: "
          f"{faults.consolidate_beats_spread} "
          f"(saving {faults.consolidate_vs_spread_saving:.1%})")
    print(f"conserved / faults active            : "
          f"{faults.conserved} / {faults.faults_active}")

    replication = run_replication_ablation(db, scale_factor=args.sf,
                                           trace_cache=trace_cache)
    print(f"\nreplication ablation  : {replication.arrivals} arrivals "
          f"over {replication.nodes} nodes ({replication.shards} shards "
          f"x {replication.replicas} replicas, quorum "
          f"{replication.quorum})")
    for name, stats in replication.modes.items():
        f = stats["faults"]
        print(f"  {name:12s} {stats['wall_joules']:9.1f} J  "
              f"SLA misses {stats['sla_misses']:3d}  "
              f"copies {f['re_replications']:2d}  "
              f"copy {f['copy_joules']:6.2f} J  "
              f"holders {stats['min_live_holders']}")
    print(f"consolidate beats spread w/ replication: "
          f"{replication.consolidate_beats_spread} "
          f"(saving {replication.consolidate_vs_spread_saving:.1%})")
    print(f"re-replicated / restored / conserved   : "
          f"{replication.re_replicated} / {replication.restored} / "
          f"{replication.conserved}")

    record = (
        json.loads(args.out.read_text()) if args.out.exists() else {}
    )
    record.update(comparison.to_dict())
    record["cluster_scaling"] = cluster.to_dict()
    record["cluster_scaling"].update({
        "sched_speedup": sched.sched_speedup,
        "sched_end_to_end_speedup": sched.end_to_end_speedup,
        "sched_nodes": sched.nodes,
        "sched_arrivals": sched.arrivals,
        "sched_legacy_wall_s": sched.legacy_schedule_wall_s,
        "sched_vectorized_wall_s": sched.vectorized_schedule_wall_s,
        "sched_max_rel_diff": sched.max_rel_diff,
        "sched_run_id": sched.run_id,
        "tier_nodes": tier.nodes,
        "tier_arrivals": tier.arrivals,
        "tier_schedule_wall_s": tier.schedule_wall_s,
        "tier_playback_wall_s": tier.playback_wall_s,
        "tier_total_wall_s": tier.total_wall_s,
        "tier_run_id": tier.run_id,
    })
    record["diurnal"] = diurnal.to_dict()
    record["qed"] = qed.to_dict()
    record["faults"] = faults.to_dict()
    record["replication"] = replication.to_dict()
    args.out.write_text(json.dumps(record, indent=2))
    append_history(args.out, record)
    print(f"wrote {args.out}")

    ok = (
        comparison.speedup_cold >= 5.0
        and comparison.max_rel_diff_cold <= 1e-9
        and cluster.speedup >= 5.0
        and cluster.max_rel_diff <= 1e-9
        and sched.sched_speedup >= 5.0
        and sched.max_rel_diff <= 1e-9
        and sched.dispatch_match
        and diurnal.hetero_speedup >= 5.0
        and diurnal.hetero_max_rel_diff <= 1e-9
        and diurnal.dynamic_beats_spread
        and qed.master_beats_node
        and qed.node_beats_off
        and faults.consolidate_beats_spread
        and faults.conserved
        and faults.faults_active
        and replication.consolidate_beats_spread
        and replication.conserved
        and replication.re_replicated
        and replication.restored
    )
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
