"""Time the sweep pipeline (naive vs replay) and write BENCH_perf.json.

    PYTHONPATH=src python scripts/perf_report.py [scale_factor] [out.json]

Runs the 7-setting x 5-repeat PVC sweep over the ten-query selection
workload on the memory engine, once through the naive re-execute path
and twice through the execute-once/replay-many path (cold and warm
cache), then records wall-clock numbers, speedups, database-execution
counts, and the curves' maximum relative deviation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.db.profiles import mysql_profile
from repro.hardware.profiles import paper_sut
from repro.measurement.perf import compare_sweep_paths
from repro.workloads.selection import SelectionWorkload
from repro.workloads.tpch.generator import tpch_database

DEFAULT_SF = 0.02


def main(argv: list[str]) -> int:
    sf = float(argv[1]) if len(argv) > 1 else DEFAULT_SF
    out = Path(argv[2]) if len(argv) > 2 else Path("BENCH_perf.json")

    print(f"building lineitem database at SF {sf} ...")
    db = tpch_database(sf, mysql_profile(), seed=0, tables=["lineitem"])
    workload = SelectionWorkload(tuple(range(1, 11)))
    comparison = compare_sweep_paths(
        db, paper_sut(), workload.queries, repeats=5, scale_factor=sf,
    )

    out.write_text(json.dumps(comparison.to_dict(), indent=2))
    print(f"naive sweep           : {comparison.naive.wall_s:8.3f} s "
          f"({comparison.naive.db_executions} db executions)")
    print(f"pre-refactor sweep    : {comparison.naive_reuse.wall_s:8.3f} s "
          f"({comparison.naive_reuse.db_executions} db executions)")
    print(f"replay sweep (cold)   : {comparison.replay_cold.wall_s:8.3f} s "
          f"({comparison.replay_cold.db_executions} db executions)")
    print(f"replay sweep (warm)   : {comparison.replay_cached.wall_s:8.3f} s "
          f"({comparison.replay_cached.db_executions} db executions)")
    print(f"speedup cold/warm     : {comparison.speedup_cold:.1f}x / "
          f"{comparison.speedup_cached:.1f}x")
    print(f"speedup vs pre-refact : "
          f"{comparison.speedup_vs_prerefactor:.1f}x")
    print(f"max curve deviation   : {comparison.max_rel_diff_cold:.2e} "
          "(relative)")
    print(f"wrote {out}")

    ok = (
        comparison.speedup_cold >= 5.0
        and comparison.max_rel_diff_cold <= 1e-9
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
