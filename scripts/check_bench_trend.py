"""Gate CI on performance trends recorded in ``BENCH_perf.json``.

    PYTHONPATH=src python scripts/check_bench_trend.py \
        [--fresh SMOKE.json] [--baseline BENCH_perf.json] \
        [--keys speedup_cached cluster_scaling.speedup ...] \
        [--max-regression 0.20] [--record]

Compares freshly measured speedups (the artifact the benchmark suite
just wrote) against the committed ``BENCH_perf.json``:

* when the fresh run's *configuration* (scale factor, fleet size,
  arrival counts) matches the committed record, a key may not regress
  by more than ``--max-regression`` (20% by default) -- the trend gate;
* when configurations differ (the CI smoke runs shrink the scenarios),
  only the absolute floor applies (every gated speedup must stay
  >= 5x; the QED ablation's energy savings must stay positive),
  because a smaller scenario legitimately amortizes less --
  a smoke run failing a full-size trend threshold would be noise,
  not signal.

``--record`` appends the fresh values to the baseline's ``history``
array (timestamp + configuration + gated keys), making the perf
trajectory machine-readable; ``scripts/perf_report.py`` does the same
on every full-size artifact refresh.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

DEFAULT_KEYS = (
    "speedup_cached",
    "cluster_scaling.speedup",
    "cluster_scaling.sched_speedup",
    "diurnal.hetero_speedup",
    "qed.master_vs_node_saving",
    "qed.node_vs_off_saving",
    "faults.consolidate_vs_spread_saving",
    "replication.consolidate_vs_spread_saving",
)
#: Absolute floor every gated speedup must clear regardless of config.
SPEEDUP_FLOOR = 5.0
#: Keys that are not speedups get their own absolute floor (the QED
#: and fault ablations gate energy *savings* -- fractions that must
#: stay positive, not 5x multipliers).
FLOORS = {
    "qed.master_vs_node_saving": 0.0,
    "qed.node_vs_off_saving": 0.0,
    "faults.consolidate_vs_spread_saving": 0.0,
    "replication.consolidate_vs_spread_saving": 0.0,
}


def fmt_value(key: str, value: float) -> str:
    """Savings print as percentages, speedups as multipliers."""
    if key.endswith("_saving"):
        return f"{value:.1%}"
    return f"{value:.1f}x"


def dig(record: dict, dotted: str):
    """Resolve ``a.b.c`` in nested dicts (None when absent)."""
    node = record
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


#: Per-key-family configuration fields that must match for the trend
#: (regression-vs-baseline) rule to be meaningful.
CONFIG_FIELDS = {
    "speedup_cached": ("scale_factor", "num_queries", "repeats"),
    "cluster_scaling.speedup": (
        "cluster_scaling.nodes", "cluster_scaling.arrivals",
        "cluster_scaling.scale_factor",
    ),
    "cluster_scaling.sched_speedup": (
        "cluster_scaling.sched_nodes", "cluster_scaling.sched_arrivals",
        "cluster_scaling.scale_factor",
    ),
    "diurnal.hetero_speedup": (
        "diurnal.arrivals", "diurnal.horizon_s", "diurnal.scale_factor",
    ),
    "qed.master_vs_node_saving": (
        "qed.arrivals", "qed.nodes", "qed.threshold",
        "qed.scale_factor",
    ),
    "qed.node_vs_off_saving": (
        "qed.arrivals", "qed.nodes", "qed.threshold",
        "qed.scale_factor",
    ),
    "faults.consolidate_vs_spread_saving": (
        "faults.arrivals", "faults.nodes", "faults.scale_factor",
    ),
    "replication.consolidate_vs_spread_saving": (
        "replication.arrivals", "replication.nodes",
        "replication.shards", "replication.replicas",
        "replication.scale_factor",
    ),
}


def configs_match(key: str, fresh: dict, baseline: dict) -> bool:
    fields = CONFIG_FIELDS.get(key, ())
    return all(dig(fresh, f) == dig(baseline, f) for f in fields)


def history_entry(record: dict, keys=DEFAULT_KEYS) -> dict:
    """One machine-readable trajectory point from an artifact."""
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale_factor": record.get("scale_factor"),
    }
    # Config fingerprint hash of the gated cluster run, when the
    # artifact carries one -- ties each trajectory point to the exact
    # fleet/policy/stream configuration that produced it.
    run_id = dig(record, "cluster_scaling.run_id")
    if run_id is not None:
        entry["cluster_scaling.run_id"] = run_id
    for key in keys:
        value = dig(record, key)
        if value is not None:
            entry[key] = value
    return entry


def append_history(baseline_path: Path, record: dict,
                   keys=DEFAULT_KEYS) -> None:
    """Append ``record``'s gated values to the baseline's history."""
    baseline = (
        json.loads(baseline_path.read_text())
        if baseline_path.exists() else {}
    )
    baseline.setdefault("history", []).append(
        history_entry(record, keys)
    )
    baseline_path.write_text(json.dumps(baseline, indent=2))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", type=Path,
                        default=Path("/tmp/BENCH_perf_smoke.json"),
                        help="freshly measured artifact")
    parser.add_argument("--baseline", type=Path,
                        default=Path("BENCH_perf.json"))
    parser.add_argument("--keys", nargs="+", default=list(DEFAULT_KEYS))
    parser.add_argument("--max-regression", type=float, default=0.20)
    parser.add_argument("--record", action="store_true",
                        help="append the fresh values to the baseline's "
                             "history array")
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"error: fresh artifact {args.fresh} not found "
              "(run the benchmark suite first)", file=sys.stderr)
        return 2
    fresh = json.loads(args.fresh.read_text())
    baseline = (
        json.loads(args.baseline.read_text())
        if args.baseline.exists() else {}
    )

    failures = []
    for key in args.keys:
        value = dig(fresh, key)
        if value is None:
            failures.append(f"{key}: missing from fresh artifact")
            continue
        floor = FLOORS.get(key, SPEEDUP_FLOOR)
        status = f"{key}: fresh {fmt_value(key, value)}"
        # Savings gate strictly (a 0% saving means the win is gone);
        # speedups only need to reach their floor.
        too_low = value <= floor if key in FLOORS else value < floor
        if too_low:
            failures.append(
                f"{key}: {fmt_value(key, value)} is under the "
                f"{fmt_value(key, floor)} floor"
            )
            continue
        base = dig(baseline, key)
        if base is None:
            status += "  (no baseline; floor gate only)"
        elif not configs_match(key, fresh, baseline):
            status += (f"  (baseline {fmt_value(key, base)} at a "
                       "different config; floor gate only)")
        else:
            threshold = (1.0 - args.max_regression) * base
            status += (f"  vs baseline {fmt_value(key, base)} "
                       f"(needs >= {fmt_value(key, threshold)})")
            if value < threshold:
                failures.append(
                    f"{key}: {fmt_value(key, value)} regressed > "
                    f"{args.max_regression:.0%} from baseline "
                    f"{fmt_value(key, base)}"
                )
        print(status)

    if args.record:
        append_history(args.baseline, fresh, args.keys)
        print(f"recorded history entry in {args.baseline}")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("perf trend OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
