#!/usr/bin/env bash
# CI entry point: tier-1 test suite plus the perf smoke bench.
#
#   scripts/ci.sh
#
# The perf bench runs the 7-setting x 5-repeat sweep comparison at a
# tiny scale factor and enforces the >= 5x replay speedup gate (it also
# refreshes BENCH_perf.json; commit that only from a full-size run).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== perf smoke bench (SF ${REPRO_BENCH_SF:-0.01}) =="
REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
    python -m pytest benchmarks/bench_perf_pipeline.py -x -q

echo "== cluster scaling smoke bench =="
REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
REPRO_BENCH_CLUSTER_NODES="${REPRO_BENCH_CLUSTER_NODES:-16}" \
REPRO_BENCH_CLUSTER_ARRIVALS="${REPRO_BENCH_CLUSTER_ARRIVALS:-2000}" \
    python -m pytest benchmarks/bench_cluster_scaling.py -x -q

echo "CI OK"
