#!/usr/bin/env bash
# CI entry point, tiered so the workflow can fan stages out:
#
#   scripts/ci.sh                  # everything (lint -> tests -> perf -> cluster -> obs)
#   scripts/ci.sh --stage lint     # compile + pyflakes + mypy + repro lint
#   scripts/ci.sh --stage tests    # tier-1 pytest suite
#   scripts/ci.sh --stage perf     # sweep perf smoke bench
#   scripts/ci.sh --stage cluster  # cluster + diurnal + qed smoke benches
#   scripts/ci.sh --stage replication  # placement + re-replication smoke
#   scripts/ci.sh --stage obs      # traced cluster smoke + trace schema
#                                  # + tracing-overhead trend gate
#
# The perf benches run at a tiny scale factor and enforce the >= 5x
# speedup gates (they also refresh the smoke copy of BENCH_perf.json;
# commit the real artifact only from a full-size run).  After the
# benches, scripts/check_bench_trend.py compares the freshly measured
# speedups against the committed BENCH_perf.json and fails on a > 20%
# regression.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGE="all"
while [ $# -gt 0 ]; do
    case "$1" in
        --stage) STAGE="$2"; shift 2 ;;
        *) echo "usage: scripts/ci.sh [--stage lint|tests|perf|cluster|replication|obs|all]" >&2
           exit 2 ;;
    esac
done

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
SMOKE_JSON="${TMPDIR:-/tmp}/BENCH_perf_smoke.json"

run_lint() {
    echo "== lint (compile + pyflakes + mypy + repro analysis) =="
    python -m compileall -q src tests benchmarks scripts examples

    # pyflakes and mypy ride in requirements-ci.txt, so under CI they
    # are mandatory; locally they soft-skip when not installed.
    if python -c "import pyflakes" 2>/dev/null; then
        python -m pyflakes src tests benchmarks scripts examples
    elif [ -n "${CI:-}" ]; then
        echo "pyflakes is required under CI (requirements-ci.txt)" >&2
        exit 1
    else
        echo "pyflakes not installed; skipping (mandatory under CI)"
    fi

    if python -c "import mypy" 2>/dev/null; then
        python -m mypy --config-file mypy.ini
    elif [ -n "${CI:-}" ]; then
        echo "mypy is required under CI (requirements-ci.txt)" >&2
        exit 1
    else
        echo "mypy not installed; skipping (mandatory under CI)"
    fi

    echo "== analysis (repro lint: determinism/obs/lock invariants) =="
    local lint_dir="${REPRO_CI_LINT_DIR:-${TMPDIR:-/tmp}/repro-ci-lint}"
    mkdir -p "$lint_dir"
    python -m repro lint --format json > "$lint_dir/repro-lint.json" \
        || { cat "$lint_dir/repro-lint.json"; exit 1; }
    python -m repro lint
}

run_tests() {
    echo "== tier-1 test suite =="
    python -m pytest -x -q
}

run_perf() {
    echo "== perf smoke bench (SF ${REPRO_BENCH_SF:-0.01}) =="
    REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
        python -m pytest benchmarks/bench_perf_pipeline.py -x -q
    echo "== vectorized event core smoke bench =="
    REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
    REPRO_BENCH_SCALING_NODES="${REPRO_BENCH_SCALING_NODES:-32}" \
    REPRO_BENCH_SCALING_ARRIVALS="${REPRO_BENCH_SCALING_ARRIVALS:-100000}" \
    REPRO_BENCH_SCALING_COMPARE_ARRIVALS="${REPRO_BENCH_SCALING_COMPARE_ARRIVALS:-20000}" \
        python -m pytest benchmarks/bench_cluster_scaling.py -x -q \
            -k "scheduler or million"
    echo "== perf trend gate (sweep + event core) =="
    python scripts/check_bench_trend.py \
        --fresh "$SMOKE_JSON" \
        --keys speedup_cached cluster_scaling.sched_speedup
}

run_cluster() {
    echo "== cluster scaling smoke bench =="
    REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
    REPRO_BENCH_CLUSTER_NODES="${REPRO_BENCH_CLUSTER_NODES:-16}" \
    REPRO_BENCH_CLUSTER_ARRIVALS="${REPRO_BENCH_CLUSTER_ARRIVALS:-2000}" \
    REPRO_BENCH_SCALING_NODES="${REPRO_BENCH_SCALING_NODES:-32}" \
    REPRO_BENCH_SCALING_ARRIVALS="${REPRO_BENCH_SCALING_ARRIVALS:-100000}" \
    REPRO_BENCH_SCALING_COMPARE_ARRIVALS="${REPRO_BENCH_SCALING_COMPARE_ARRIVALS:-20000}" \
        python -m pytest benchmarks/bench_cluster_scaling.py -x -q
    echo "== diurnal ablation smoke bench =="
    REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
    REPRO_BENCH_DIURNAL_HORIZON="${REPRO_BENCH_DIURNAL_HORIZON:-120}" \
        python -m pytest benchmarks/bench_ablation_diurnal.py -x -q
    echo "== qed ablation smoke bench =="
    REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
    REPRO_BENCH_QED_ARRIVALS="${REPRO_BENCH_QED_ARRIVALS:-300}" \
        python -m pytest benchmarks/bench_ablation_qed.py -x -q
    echo "== fault recovery smoke bench =="
    REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
    REPRO_BENCH_FAULT_ARRIVALS="${REPRO_BENCH_FAULT_ARRIVALS:-200}" \
        python -m pytest benchmarks/bench_fault_recovery.py -x -q
    echo "== perf trend gate (cluster) =="
    python scripts/check_bench_trend.py \
        --fresh "$SMOKE_JSON" \
        --keys cluster_scaling.speedup cluster_scaling.sched_speedup \
               diurnal.hetero_speedup \
               qed.master_vs_node_saving qed.node_vs_off_saving \
               faults.consolidate_vs_spread_saving
}

run_replication() {
    echo "== replication smoke bench =="
    REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
    REPRO_BENCH_REPLICATION_ARRIVALS="${REPRO_BENCH_REPLICATION_ARRIVALS:-200}" \
        python -m pytest benchmarks/bench_replication.py -x -q
    echo "== placement-routed cluster smoke run =="
    python -m repro cluster --sf 0.002 --nodes 4 --arrivals 60 \
        --distinct 8 --policy least --shards 4 --replicas 2 \
        --faults examples/fault_plan.json --retry-max 4 \
        --retry-backoff 0.05 --sla 1.0
    echo "== perf trend gate (replication) =="
    python scripts/check_bench_trend.py \
        --fresh "$SMOKE_JSON" \
        --keys replication.consolidate_vs_spread_saving
}

run_obs() {
    local obs_dir trace metrics keep_dir
    # REPRO_CI_OBS_DIR persists the trace/metrics exports (the CI
    # workflow uploads them as artifacts); unset, a scratch dir is
    # used and removed.
    if [ -n "${REPRO_CI_OBS_DIR:-}" ]; then
        obs_dir="$REPRO_CI_OBS_DIR"
        mkdir -p "$obs_dir"
        keep_dir=1
    else
        obs_dir="$(mktemp -d "${TMPDIR:-/tmp}/repro-obs.XXXXXX")"
        keep_dir=0
    fi
    trace="$obs_dir/trace.json"
    metrics="$obs_dir/metrics.json"
    echo "== traced cluster smoke run =="
    python -m repro cluster --sf 0.002 --nodes 4 --arrivals 60 \
        --distinct 8 --policy dynamic --sla 1.0 \
        --faults examples/fault_plan.json \
        --trace "$trace" --metrics "$metrics" --window 1
    echo "== trace schema + energy reconciliation =="
    python -m repro obs report "$trace"
    echo "== metrics export sanity =="
    python - "$metrics" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
assert doc["format"] == "repro-obs-metrics", doc.get("format")
assert doc["samples"], "no metric samples recorded"
assert doc["counters"].get("arrivals") == 60.0, doc["counters"]
ts = [s["t_s"] for s in doc["samples"]]
assert ts == sorted(ts), "samples out of order"
print(f"metrics OK: {len(doc['samples'])} samples, "
      f"counters {sorted(doc['counters'])}")
EOF
    if [ "$keep_dir" = 0 ]; then
        rm -rf "$obs_dir"
    fi
    echo "== tracing-overhead trend gate (cluster_scaling) =="
    if [ ! -f "$SMOKE_JSON" ]; then
        echo "no fresh smoke artifact; running cluster scaling bench"
        REPRO_BENCH_SF="${REPRO_BENCH_SF:-0.01}" \
        REPRO_BENCH_CLUSTER_NODES="${REPRO_BENCH_CLUSTER_NODES:-16}" \
        REPRO_BENCH_CLUSTER_ARRIVALS="${REPRO_BENCH_CLUSTER_ARRIVALS:-2000}" \
        REPRO_BENCH_SCALING_NODES="${REPRO_BENCH_SCALING_NODES:-32}" \
        REPRO_BENCH_SCALING_ARRIVALS="${REPRO_BENCH_SCALING_ARRIVALS:-100000}" \
        REPRO_BENCH_SCALING_COMPARE_ARRIVALS="${REPRO_BENCH_SCALING_COMPARE_ARRIVALS:-20000}" \
            python -m pytest benchmarks/bench_cluster_scaling.py -x -q
    fi
    # The tracing-disabled hooks ride the schedule()/playback() hot
    # path; gate them at <= 5% against the committed baseline speedup.
    python scripts/check_bench_trend.py \
        --fresh "$SMOKE_JSON" --keys cluster_scaling.speedup \
        --max-regression 0.05
}

case "$STAGE" in
    lint)    run_lint ;;
    tests)   run_tests ;;
    perf)    run_perf ;;
    cluster) run_cluster ;;
    replication) run_replication ;;
    obs)     run_obs ;;
    all)     run_lint; run_tests; run_perf; run_cluster;
             run_replication; run_obs ;;
    *) echo "unknown stage: $STAGE" >&2; exit 2 ;;
esac

echo "CI OK ($STAGE)"
