"""CLI commands and the public package surface."""

import pytest

import repro
from repro.cli import build_parser, main


class TestPublicApi:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_surface(self):
        db = repro.tpch_database(0.002, repro.mysql_profile())
        runner = repro.WorkloadRunner(db, repro.default_system())
        curve = repro.PvcSweep(
            runner, [repro.selection_query(1)]
        ).run()
        assert len(curve.all_points) == 7


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["pvc", "--profile", "mysql",
                                  "--sf", "0.01"])
        assert args.profile == "mysql"
        assert args.sf == 0.01

    def test_table1_command(self, capsys):
        status = main(["table1"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Table 1" in out
        assert "69.3" in out

    def test_disk_command(self, capsys):
        status = main(["disk"])
        assert status == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_qed_command_small(self, capsys):
        status = main(["qed", "--sf", "0.05", "--batches", "35", "50"])
        out = capsys.readouterr().out
        assert status == 0
        assert "batch 35" in out and "batch 50" in out

    def test_pvc_command_small(self, capsys):
        status = main(["pvc", "--profile", "mysql", "--sf", "0.01"])
        assert status == 0
        assert "mysql" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])
